//! Debugging helper: run a single Table 1 benchmark (or a SyGuS goal) by
//! name from the command line and print the outcome.
//!
//! Usage: `cargo run --example debug_goal -- "is empty" [timeout-secs]`

use std::time::Duration;
use synquid::lang::benchmarks::table1;
use synquid::lang::runner::{run_goal, Variant};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "is empty".to_string());
    let timeout: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let bench = table1()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let goal = (bench.goal.expect("benchmark not transcribed"))();
    eprintln!("goal: {} :: {}", goal.name, goal.schema.ty);
    let bounds = bench.bounds;
    let config = Variant::Default.config(Duration::from_secs(timeout), bounds);
    let mut synthesizer = synquid::core::Synthesizer::new(config.clone());
    let start = std::time::Instant::now();
    let outcome = synthesizer.synthesize(&goal);
    let elapsed = start.elapsed().as_secs_f64();
    let smt_stats = synthesizer.smt.stats();
    eprintln!(
        "smt: queries={} cache_hits={} sat_calls={} theory_calls={}",
        smt_stats.queries, smt_stats.cache_hits, smt_stats.sat_calls, smt_stats.theory_calls
    );
    eprintln!("stats: {:?}", synthesizer.stats());
    match outcome {
        Ok(s) => println!("solved=true time={elapsed:.2}s program={}", s.program),
        Err(e) => println!("solved=false time={elapsed:.2}s error={e}"),
    }
    let _ = run_goal;
}
