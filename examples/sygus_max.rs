//! Figure 7 workload: synthesize `max_n` (the maximum of `n` integers)
//! for growing `n`, demonstrating condition abduction on nested
//! conditionals without any recursion or datatypes.
//!
//! Run with: `cargo run --release --example sygus_max -- 3`

use std::time::Duration;
use synquid::lang::benchmarks::max_n;
use synquid::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    for k in 2..=n {
        let goal = max_n(k);
        println!("== max{k} :: {}", goal.schema);
        let result = run_goal(
            &goal,
            Variant::Default.config(Duration::from_secs(120), (1, 0)),
        );
        if result.solved {
            println!(
                "synthesized in {:.2}s:\n{}\n",
                result.time_secs,
                result.program.unwrap()
            );
        } else {
            println!("no solution within the budget ({:.2}s)\n", result.time_secs);
        }
    }
}
