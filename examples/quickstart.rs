//! Quickstart: synthesize the paper's Fig. 1 example, `replicate`, from its
//! polymorphic refinement type
//! `n: Nat → x: α → {List α | len ν = n}`.
//!
//! This example drives the *programmatic* benchmark suite. For new
//! specifications prefer the textual path — write a `.sq` file and run it
//! through the `synquid` CLI (`cargo run --release --bin synquid --
//! specs/list.sq`), or see `examples/from_spec.rs` for parsing a spec
//! string inline; the two paths produce identical goals (see
//! `crates/lang/tests/spec_parity.rs`).
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Duration;
use synquid::lang::benchmarks::table1;
use synquid::prelude::*;

fn main() {
    let replicate = table1()
        .into_iter()
        .find(|b| b.name == "replicate")
        .expect("replicate is part of the Table 1 suite");
    let goal = (replicate.goal.expect("replicate is transcribed"))();

    println!("Goal: replicate :: {}", goal.schema);
    println!("Synthesizing (this exercises liquid abduction and termination-aware recursion)...");

    let config = Variant::Default.config(Duration::from_secs(90), replicate.bounds);
    let result = run_goal(&goal, config);
    if result.solved {
        println!(
            "Synthesized in {:.2}s ({} AST nodes):\n",
            result.time_secs,
            result.code_size.unwrap_or(0)
        );
        println!("replicate = {}", result.program.unwrap());
    } else {
        println!(
            "No solution within the time budget ({:.2}s elapsed{}).",
            result.time_secs,
            if result.timed_out { ", timed out" } else { "" }
        );
    }
}
