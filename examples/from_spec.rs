//! The recommended entry point: write the specification *as text* and let
//! the frontend elaborate it — no hand-built ASTs required.
//!
//! The spec below is the `is_empty` benchmark of Table 1 in Synquid's
//! surface syntax: a refined `List` datatype with its `len`/`elems`
//! measures, a few components, and a goal signature followed by
//! `is_empty = ??`.
//!
//! Run with: `cargo run --release --example from_spec`

use std::time::Duration;
use synquid::lang::runner::{run_goal, Variant};

const SPEC: &str = r#"
qualifier [x: Int, y: Int] {x <= y, x != y, x < y}
qualifier [x: a, y: a] {x <= y, x != y, x < y}

termination measure len :: List b -> Int
measure elems :: List b -> Set b

data List b where
  Nil  :: {List b | len _v == 0 && elems _v == []}
  Cons :: x: b -> xs: List b ->
          {List b | len _v == len xs + 1 && elems _v == elems xs + [x]}

true :: {Bool | _v <==> True}
false :: {Bool | _v <==> False}

is_empty :: <a> . xs: List a -> {Bool | _v <==> len xs == 0}
is_empty = ??
"#;

fn main() {
    let spec = match synquid::parser::load_named_str("from_spec.sq", SPEC) {
        Ok(spec) => spec,
        Err(e) => {
            eprint!("{e}");
            std::process::exit(2);
        }
    };
    println!(
        "Parsed {} component(s) and {} goal(s) from the inline spec.",
        spec.components.len(),
        spec.goals.len()
    );

    for goal in &spec.goals {
        println!("\nGoal: {} :: {}", goal.name, goal.schema);
        let config = Variant::Default.config(Duration::from_secs(60), (1, 1));
        let result = run_goal(goal, config);
        match result.program {
            Some(program) => println!(
                "Synthesized in {:.2}s:\n{} = {program}",
                result.time_secs, goal.name
            ),
            None => println!("No solution within the budget."),
        }
    }
}
