//! Building a synthesis problem from scratch against the public API:
//! a custom component library (clamp-style integer operations) and a goal
//! whose solution needs both an application and an abduced branch.
//!
//! Run with: `cargo run --release --example custom_components`

use std::time::Duration;
use synquid::prelude::*;

fn main() {
    // Components: `zero`, `neg` (unary minus), and the comparison `leq`.
    let mut env = Environment::new();
    env.add_qualifiers(Qualifier::standard(Sort::Int));
    let nu = || Term::value_var(Sort::Int);
    env.add_var("zero", RType::refined(BaseType::Int, nu().eq(Term::int(0))));
    env.add_var(
        "neg",
        RType::fun(
            "x",
            RType::int(),
            RType::refined(BaseType::Int, nu().eq(Term::var("x", Sort::Int).neg())),
        ),
    );
    env.add_var(
        "leq",
        RType::fun_n(
            vec![("x".into(), RType::int()), ("y".into(), RType::int())],
            RType::refined(
                BaseType::Bool,
                Term::value_var(Sort::Bool)
                    .iff(Term::var("x", Sort::Int).le(Term::var("y", Sort::Int))),
            ),
        ),
    );

    // Goal: absolute value — abs :: x: Int → {Int | ν ≥ 0 ∧ (ν = x ∨ ν = -x)}
    let x = || Term::var("x", Sort::Int);
    let ret = RType::refined(
        BaseType::Int,
        nu().ge(Term::int(0))
            .and(nu().eq(x()).or(nu().eq(x().neg()))),
    );
    let goal = Goal::new(
        "abs",
        env,
        Schema::monotype(RType::fun("x", RType::int(), ret)),
    );

    println!("Goal: abs :: {}", goal.schema);
    let result = run_goal(
        &goal,
        Variant::Default.config(Duration::from_secs(60), (1, 0)),
    );
    match result.program {
        Some(program) => println!(
            "Synthesized in {:.2}s:\nabs = {}",
            result.time_secs, program
        ),
        None => println!("No solution within the budget ({:.2}s).", result.time_secs),
    }
}
