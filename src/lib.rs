//! # synquid
//!
//! A Rust reproduction of **"Program Synthesis from Polymorphic Refinement
//! Types"** (Polikarpova, Kuraj, Solar-Lezama — PLDI 2016): the Synquid
//! program synthesizer, together with all the substrates it needs
//! (refinement logic, an SMT solver, the liquid greatest-fixpoint Horn
//! solver with MUSFIX, the refinement type system with local liquid type
//! checking, a surface-syntax frontend, and the evaluation benchmark
//! suite).
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! * [`logic`] — sorts, refinement terms, qualifiers;
//! * [`solver`] — the SMT substrate (SAT, LIA, sets, MUS enumeration);
//! * [`horn`] — predicate unknowns and the greatest-fixpoint solver;
//! * [`types`] — refinement types, environments, subtyping, termination;
//! * [`core`] — programs, round-trip checking, and the synthesizer;
//! * [`parser`] — the `.sq` surface language: lexer, parser, and the
//!   desugarer that elaborates textual specs into [`core`] goals;
//! * [`lang`] — component libraries, the benchmark suite, spec-corpus
//!   helpers, and runners;
//! * [`engine`] — the parallel execution layer: multi-goal scheduler,
//!   portfolio search over deepening rungs, and the resident
//!   [`SynthesisSession`](engine::SynthesisSession) owning all
//!   cross-goal caches (validity, enumeration, lemmas) keyed by
//!   component-library fingerprint;
//! * [`trace`] — search forensics over `--trace-out` JSONL streams:
//!   derivation-tree reconstruction, per-goal timeout attribution, and
//!   Chrome trace-event export;
//! * [`oracle`] — the runtime soundness oracle: a measure interpreter
//!   over concrete values, seeded input generation, counterexample
//!   shrinking, and the `synquid fuzz` differential harness.
//!
//! ## Quickstart: synthesize from a textual spec
//!
//! The recommended way to pose a synthesis problem is a Synquid-style
//! `.sq` specification — datatypes with refined constructors, measures,
//! qualifiers, components, and goal signatures:
//!
//! ```
//! use std::time::Duration;
//! use synquid::prelude::*;
//!
//! let spec = synquid::parser::load_str(
//!     r#"
//!     termination measure len :: List b -> Int
//!     data List b where
//!       Nil  :: {List b | len _v == 0}
//!       Cons :: x: b -> xs: List b -> {List b | len _v == len xs + 1}
//!
//!     true :: {Bool | _v <==> True}
//!     false :: {Bool | _v <==> False}
//!
//!     is_empty :: <a> . xs: List a -> {Bool | _v <==> len xs == 0}
//!     is_empty = ??
//!     "#,
//! )
//! .expect("a well-formed spec");
//! let result = run_goal(
//!     &spec.goals[0],
//!     Variant::Default.config(Duration::from_secs(30), (1, 1)),
//! );
//! assert!(result.solved);
//! ```
//!
//! The same pipeline is available from the command line — the `synquid`
//! binary loads `.sq` files, synthesizes every `name = ??` goal with
//! iteratively deepened exploration bounds, and pretty-prints the
//! solutions:
//!
//! ```text
//! cargo run --release --bin synquid -- specs/list.sq
//! ```
//!
//! ## Programmatic goals
//!
//! The benchmark suite of the paper's evaluation is also available as
//! programmatic builders (no parsing involved); the two paths produce
//! structurally identical goals, which `crates/lang/tests/spec_parity.rs`
//! enforces:
//!
//! ```
//! use std::time::Duration;
//! use synquid::prelude::*;
//!
//! // Synthesize max of two integers from its refinement type.
//! let goal = synquid::lang::benchmarks::max_n(2);
//! let result = run_goal(&goal, Variant::Default.config(Duration::from_secs(30), (1, 0)));
//! assert!(result.solved);
//! ```

pub use synquid_core as core;
pub use synquid_engine as engine;
pub use synquid_horn as horn;
pub use synquid_lang as lang;
pub use synquid_logic as logic;
pub use synquid_oracle as oracle;
pub use synquid_parser as parser;
pub use synquid_solver as solver;
pub use synquid_telemetry as telemetry;
pub use synquid_trace as trace;
pub use synquid_types as types;

/// Commonly used items.
pub mod prelude {
    pub use synquid_core::{
        Goal, Program, SolverContext, SynthesisConfig, SynthesisError, Synthesizer,
    };
    pub use synquid_engine::{BatchReport, Engine, EngineConfig, GoalJob, SynthesisSession};
    pub use synquid_lang::runner::{run_goal, RunResult, Variant};
    pub use synquid_logic::{Qualifier, Sort, Term};
    pub use synquid_oracle::{fuzz_goal, fuzz_goal_in, FuzzConfig, GoalFuzzReport};
    pub use synquid_parser::{load_file, load_str, SpecOutput};
    pub use synquid_solver::{SharedValidityCache, Smt};
    pub use synquid_types::{BaseType, Environment, RType, Schema};
}
