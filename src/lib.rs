//! # synquid
//!
//! A Rust reproduction of **"Program Synthesis from Polymorphic Refinement
//! Types"** (Polikarpova, Kuraj, Solar-Lezama — PLDI 2016): the Synquid
//! program synthesizer, together with all the substrates it needs
//! (refinement logic, an SMT solver, the liquid greatest-fixpoint Horn
//! solver with MUSFIX, the refinement type system with local liquid type
//! checking, and the evaluation benchmark suite).
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! * [`logic`] — sorts, refinement terms, qualifiers;
//! * [`solver`] — the SMT substrate (SAT, LIA, sets, MUS enumeration);
//! * [`horn`] — predicate unknowns and the greatest-fixpoint solver;
//! * [`types`] — refinement types, environments, subtyping, termination;
//! * [`core`] — programs, round-trip checking, and the synthesizer;
//! * [`lang`] — component libraries, the benchmark suite, and runners.
//!
//! ## Quickstart
//!
//! ```
//! use synquid::prelude::*;
//! use std::time::Duration;
//!
//! // Synthesize max of two integers from its refinement type.
//! let goal = synquid::lang::benchmarks::max_n(2);
//! let result = run_goal(&goal, Variant::Default.config(Duration::from_secs(30), (1, 0)));
//! assert!(result.solved);
//! ```

pub use synquid_core as core;
pub use synquid_horn as horn;
pub use synquid_lang as lang;
pub use synquid_logic as logic;
pub use synquid_solver as solver;
pub use synquid_types as types;

/// Commonly used items.
pub mod prelude {
    pub use synquid_core::{Goal, Program, SynthesisConfig, SynthesisError, Synthesizer};
    pub use synquid_lang::runner::{run_goal, RunResult, Variant};
    pub use synquid_logic::{Qualifier, Sort, Term};
    pub use synquid_solver::Smt;
    pub use synquid_types::{BaseType, Environment, RType, Schema};
}
