//! The `synquid` command-line interface: load Synquid-style `.sq`
//! specification files, synthesize every goal they declare through the
//! parallel engine, and pretty-print the solutions.
//!
//! ```text
//! Usage: synquid [OPTIONS] <SPEC.sq>...
//!        synquid explain <GOAL> [@] <SPEC.sq> [--timeout <SECS>] [--full]
//!        synquid fuzz [GOAL [@]] [SPEC.sq]... [--cases <N>] [--seed <S>]
//!                     [--size <N>] [--timeout <SECS>] [--differential]
//!                     [--out <PATH>]
//!
//! Options:
//!   --jobs <N>            worker threads for the batch (default: 1)
//!   --timeout <SECS>      per-goal synthesis budget (default: 30)
//!   --app-depth <N>       fix the application depth (default: portfolio)
//!   --match-depth <N>     fix the match depth (default: portfolio)
//!   --goal <NAME>         only synthesize the named goal (repeatable)
//!   --stats               print per-goal statistics, phase timings, and
//!                         cache counters
//!   --trace-out <PATH>    write structured JSONL trace events to PATH
//!                         ("-" for stderr)
//!   --warm-runs <N>       replay the batch N more times against the same
//!                         resident session (prints cold-vs-warm wall time
//!                         and cross-run hit rates)
//!   --save-session <PATH> serialize the session's durable caches on exit
//!   --load-session <PATH> warm-start from a session snapshot (stale or
//!                         corrupt snapshots fall back to a cold start)
//!   --list                list the goals without synthesizing
//!   -h, --help            print this help
//! ```
//!
//! Every entry point — the batch runner, `explain`, and `fuzz` — borrows
//! its solver state (interner, validity cache, enumeration memo, lemma
//! store) from one [`SynthesisSession`] rather than constructing caches
//! of its own; see `synquid_engine::session` for the residency rules.
//!
//! `synquid fuzz` is the runtime soundness oracle: it synthesizes each
//! selected goal through the full pipeline, runs the result on seeded
//! random inputs that satisfy the argument refinements, and checks every
//! output against the goal's postcondition and datatype invariants with
//! the measure interpreter. Violations are shrunk to minimal witnesses
//! and reported together with the winning derivation. `--differential`
//! re-synthesizes under solver ablations (memoization off, incremental
//! SMT off, budget shaping off) and asserts the oracle verdicts agree.
//! With no spec files, the whole `specs/` corpus is fuzzed. The run is
//! bit-reproducible for a given `--seed`.
//!
//! `synquid explain` synthesizes one goal with an in-memory trace sink
//! and replays the captured events into the winning derivation tree:
//! one line per `synthesize_in` frame, annotated with wall time, memo
//! and lemma provenance, and the dominant phases. `--full` renders every
//! node of the winning rung attempt (abandoned subsearches included)
//! instead of just the derivation of the solution.
//!
//! When no explicit bounds are given, each goal becomes a *portfolio*:
//! the iterative-deepening rungs — `(1,0), (1,1), (2,1), (3,1), (3,2)` —
//! compete under one shared per-goal time budget, the lowest rung that
//! solves wins, and deeper siblings are cancelled. With `--jobs 1` the
//! rungs run in ladder order, exactly reproducing the sequential
//! behaviour; with more workers they overlap, and all workers share one
//! validity cache so no subtyping obligation is proven twice. Solutions
//! are worker-count independent except for goals so close to the budget
//! that wall-clock scheduling decides whether their solving rung
//! finishes (see `synquid_engine::Engine::run`).
//!
//! Exit status: 0 if every requested goal synthesized, 1 if any goal
//! failed or timed out, 2 on usage or specification errors.

use std::process::ExitCode;
use std::time::Duration;
use synquid::engine::{
    Engine, EngineConfig, GoalJob, GoalOutcome, SynthesisSession, DEFAULT_RUNGS,
};
use synquid::telemetry;

const USAGE: &str = "\
Usage: synquid [OPTIONS] <SPEC.sq>...
       synquid explain <GOAL> [@] <SPEC.sq> [--timeout <SECS>] [--full]
       synquid fuzz [GOAL [@]] [SPEC.sq]... [--cases <N>] [--seed <S>]
                    [--size <N>] [--timeout <SECS>] [--differential]
                    [--out <PATH>]

Synthesizes every goal declared in the given Synquid-style spec files.
The `explain` subcommand synthesizes one goal and prints the winning
derivation as an annotated tree (wall time, cache provenance, phases).
The `fuzz` subcommand synthesizes goals and property-tests the results
on seeded random inputs against their refinement types (whole corpus
when no spec file is given); exit 1 on any violation or divergence.

Options:
  --jobs <N>            worker threads for the batch (default: 1)
  --timeout <SECS>      per-goal synthesis budget (default: 30)
  --app-depth <N>       fix the application depth (default: portfolio)
  --match-depth <N>     fix the match depth (default: portfolio)
  --goal <NAME>         only synthesize the named goal (repeatable)
  --stats               print per-goal statistics, phase timings, and
                        cache counters
  --trace-out <PATH>    write structured JSONL trace events to PATH
                        (\"-\" for stderr)
  --warm-runs <N>       replay the batch N more times against the same
                        resident session (cold-vs-warm wall time and
                        cross-run hit rates)
  --save-session <PATH> serialize the session's durable caches on exit
  --load-session <PATH> warm-start from a session snapshot (stale or
                        corrupt snapshots fall back to a cold start)
  --list                list the goals without synthesizing
  -h, --help            print this help

Without explicit bounds each goal runs a portfolio over the deepening
ladder (1,0) (1,1) (2,1) (3,1) (3,2) within the shared time budget;
the lowest rung that solves wins.
";

struct Options {
    files: Vec<String>,
    jobs: usize,
    timeout: Duration,
    app_depth: Option<usize>,
    match_depth: Option<usize>,
    only: Vec<String>,
    stats: bool,
    trace_out: Option<String>,
    warm_runs: usize,
    save_session: Option<String>,
    load_session: Option<String>,
    list: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        jobs: 1,
        timeout: Duration::from_secs(30),
        app_depth: None,
        match_depth: None,
        only: Vec::new(),
        stats: false,
        trace_out: None,
        warm_runs: 0,
        save_session: None,
        load_session: None,
        list: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--jobs" => {
                opts.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs a positive integer".to_string())?;
                if opts.jobs == 0 {
                    return Err("--jobs needs a positive integer".to_string());
                }
            }
            "--timeout" => {
                opts.timeout = Duration::from_secs(
                    value("--timeout")?
                        .parse()
                        .map_err(|_| "--timeout needs a number of seconds".to_string())?,
                )
            }
            "--app-depth" => {
                opts.app_depth = Some(
                    value("--app-depth")?
                        .parse()
                        .map_err(|_| "--app-depth needs an integer".to_string())?,
                )
            }
            "--match-depth" => {
                opts.match_depth = Some(
                    value("--match-depth")?
                        .parse()
                        .map_err(|_| "--match-depth needs an integer".to_string())?,
                )
            }
            "--goal" => opts.only.push(value("--goal")?),
            "--stats" => opts.stats = true,
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--warm-runs" => {
                opts.warm_runs = value("--warm-runs")?
                    .parse()
                    .map_err(|_| "--warm-runs needs a non-negative integer".to_string())?
            }
            "--save-session" => opts.save_session = Some(value("--save-session")?),
            "--load-session" => opts.load_session = Some(value("--load-session")?),
            "--list" => opts.list = true,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() {
        return Err("no spec files given".to_string());
    }
    Ok(opts)
}

/// One goal to synthesize, with everything needed to print its report.
struct PlannedGoal {
    file_idx: usize,
    name: String,
    file: String,
    schema: String,
}

fn print_outcome(planned: &PlannedGoal, outcome: &GoalOutcome, opts: &Options) {
    println!("\n{} :: {}", planned.name, planned.schema);
    let result = &outcome.result;
    if result.solved {
        println!(
            "{} = {}   -- solved in {:.2}s, {} AST nodes",
            planned.name,
            result.program.as_deref().unwrap_or("<missing>"),
            result.time_secs,
            result.code_size.unwrap_or(0),
        );
    } else {
        println!(
            "{}: no solution within {:.0}s{}",
            synquid::lang::runner::goal_label(&planned.name, &planned.file),
            opts.timeout.as_secs_f64(),
            if result.timed_out { " (timed out)" } else { "" },
        );
    }
    if opts.stats {
        let rung = match outcome.winning_rung {
            Some((a, m)) => format!("({a},{m})"),
            None => "-".to_string(),
        };
        print!(
            "  stats: rung {rung}, {} rung(s) run, {} cancelled, {} skipped, {} out of budget, {:.2}s budget consumed",
            outcome.rungs_run,
            outcome.rungs_cancelled,
            outcome.rungs_skipped,
            outcome.rungs_out_of_budget,
            outcome.consumed_secs,
        );
        if let Some(stats) = &result.stats {
            print!(
                ", {} enumerated, {} checked, {} pruned early, {} memo hits / {} misses, {} branches, {} matches, {} SMT queries ({} local hits, {} shared hits / {} misses), {} conflicts learned / {} replayed, {} assumptions dropped, {} warm tableau starts ({} pivots saved), {} bounds propagated, {} shared MUS encodings",
                stats.terms_enumerated,
                stats.eterms_checked,
                stats.pruned_early,
                stats.memo_hits,
                stats.memo_misses,
                stats.branches_abduced,
                stats.matches_generated,
                stats.smt_queries,
                stats.smt_cache_hits,
                stats.shared_cache_hits,
                stats.shared_cache_misses,
                stats.smt_conflicts_learned,
                stats.smt_conflicts_reused,
                stats.assumptions_dropped,
                stats.tableau_warm_starts,
                stats.lia_pivots_saved,
                stats.bounds_propagated,
                stats.mus_shared_encodings,
            );
        }
        println!();
        if let Some(stats) = &result.stats {
            if !stats.phases.is_empty() {
                println!("  phases:");
                print!("{}", stats.phases.table("    "));
            }
        }
    }
}

/// `synquid explain <goal> [@] <file.sq>`: synthesize one goal with an
/// in-memory trace sink and print the winning derivation tree.
fn explain_main(args: &[String]) -> ExitCode {
    let mut goal_name: Option<String> = None;
    let mut file: Option<String> = None;
    let mut timeout = Duration::from_secs(30);
    let mut full = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
            "--timeout" => {
                let Some(secs) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("error: --timeout needs a number of seconds");
                    return ExitCode::from(2);
                };
                timeout = Duration::from_secs(secs);
            }
            "--full" => full = true,
            "@" => {}
            other if other.starts_with('-') => {
                eprintln!("error: unknown option `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
            positional if goal_name.is_none() => goal_name = Some(positional.to_string()),
            positional if file.is_none() => file = Some(positional.to_string()),
            extra => {
                eprintln!("error: unexpected argument `{extra}`");
                return ExitCode::from(2);
            }
        }
    }
    let (Some(goal_name), Some(file)) = (goal_name, file) else {
        eprintln!("error: explain needs a goal name and a spec file\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };

    let spec = match synquid::parser::load_file(&file) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let Some(goal) = spec.goals.into_iter().find(|g| g.name == goal_name) else {
        eprintln!("error: {file} declares no goal named {goal_name}");
        return ExitCode::from(2);
    };

    // Capture everything the run emits: phase profiling feeds per-node
    // phase splits into `node_finish`, the buffer sink collects the
    // stream this process is about to replay.
    telemetry::set_profiling(true);
    telemetry::events::init_trace_buffer();
    let engine = Engine::new(EngineConfig {
        jobs: 1,
        timeout,
        ..EngineConfig::default()
    });
    // `explain` borrows a session like every other entry point; one goal
    // means it stays cold, but the ownership seam is uniform.
    let session = SynthesisSession::new();
    let report = engine.run_batch(vec![GoalJob::new(file.clone(), goal)], &session);
    let outcome = &report.outcomes[0];

    let text = telemetry::events::take_trace_buffer().unwrap_or_default();
    let trace = match synquid::trace::parse_trace(&text) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("error: the run produced an unreadable trace: {e}");
            return ExitCode::from(2);
        }
    };
    let forest = synquid::trace::DerivationForest::build(&trace);

    if outcome.result.solved {
        println!(
            "{} = {}   -- solved in {:.2}s\n",
            goal_name,
            outcome.result.program.as_deref().unwrap_or("<missing>"),
            outcome.result.time_secs,
        );
        match forest.winning(&goal_name) {
            Some(attempt) => {
                println!("derivation (wall time, memo hits/misses, lemmas, dominant phases):");
                let rendered = if full {
                    attempt.render()
                } else {
                    attempt.render_winning()
                };
                print!("{rendered}");
            }
            None => eprintln!("warning: no solved rung attempt found in the trace"),
        }
        ExitCode::SUCCESS
    } else {
        println!(
            "{goal_name}: no solution within {:.0}s — forensics:\n",
            timeout.as_secs_f64()
        );
        let report = synquid::trace::analyze(&trace);
        if let Some(forensics) = report.goals.get(&goal_name) {
            print!("{}", forensics.render(10));
        }
        if full {
            for attempt in forest.for_goal(&goal_name) {
                println!();
                print!("{}", attempt.render());
            }
        }
        ExitCode::from(1)
    }
}

/// `synquid fuzz`: the runtime soundness oracle over synthesized
/// programs.
fn fuzz_main(args: &[String]) -> ExitCode {
    use synquid::oracle::{fuzz_goal_in, summary_json, CaseVerdict, FuzzConfig};

    let mut cfg = FuzzConfig::default();
    let mut cfg_cases = 100usize;
    let mut files: Vec<String> = Vec::new();
    let mut goal_names: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed = (|| -> Result<bool, String> {
            match arg.as_str() {
                "-h" | "--help" => Err(String::new()),
                "--cases" => {
                    cfg_cases = value("--cases")?
                        .parse()
                        .map_err(|_| "--cases needs a positive integer".to_string())?;
                    Ok(true)
                }
                "--seed" => {
                    cfg.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed needs an unsigned integer".to_string())?;
                    Ok(true)
                }
                "--size" => {
                    cfg.max_size = value("--size")?
                        .parse()
                        .map_err(|_| "--size needs a positive integer".to_string())?;
                    Ok(true)
                }
                "--timeout" => {
                    cfg.timeout = Duration::from_secs(
                        value("--timeout")?
                            .parse()
                            .map_err(|_| "--timeout needs a number of seconds".to_string())?,
                    );
                    Ok(true)
                }
                "--differential" => {
                    cfg.differential = true;
                    Ok(true)
                }
                "--out" => {
                    out_path = Some(value("--out")?);
                    Ok(true)
                }
                "@" => Ok(true),
                other if other.starts_with('-') => Err(format!("unknown option `{other}`")),
                _ => Ok(false),
            }
        })();
        match parsed {
            Err(msg) => {
                if !msg.is_empty() {
                    eprintln!("error: {msg}\n");
                }
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
            Ok(true) => {}
            Ok(false) => {
                if arg.ends_with(".sq") {
                    files.push(arg.clone());
                } else {
                    goal_names.push(arg.clone());
                }
            }
        }
    }
    cfg.cases = cfg_cases;

    // No spec files → the whole bundled corpus. Each entry is (path to
    // load, label to report): the corpus lives at an absolute path that
    // varies by machine, and machine-specific paths must not leak into
    // the reproducible summary.
    let paths: Vec<(String, String)> = if files.is_empty() {
        let corpus = synquid::lang::spec::corpus_files();
        if corpus.is_empty() {
            eprintln!("error: no spec files given and no specs/ corpus found");
            return ExitCode::from(2);
        }
        corpus
            .into_iter()
            .map(|p| {
                let label = match p.file_name() {
                    Some(name) => format!("specs/{}", name.to_string_lossy()),
                    None => p.display().to_string(),
                };
                (p.display().to_string(), label)
            })
            .collect()
    } else {
        files.into_iter().map(|f| (f.clone(), f)).collect()
    };

    // Capture the trace so violations can print the winning derivation of
    // the faulty solution.
    telemetry::set_profiling(true);
    telemetry::events::init_trace_buffer();

    // One resident session for the whole fuzz run: consecutive goals'
    // baseline syntheses warm each other's caches (ablated re-syntheses
    // inside the harness stay isolated).
    let session = SynthesisSession::new();
    let mut reports = Vec::new();
    let mut matched_goal_filter = false;
    for (file, label) in &paths {
        let spec = match synquid::parser::load_file(file) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        for goal in spec.goals {
            if !goal_names.is_empty() && !goal_names.iter().any(|n| n == &goal.name) {
                continue;
            }
            matched_goal_filter = true;
            let report = fuzz_goal_in(&goal, label, &cfg, &session);
            match &report.skipped {
                Some(reason) => {
                    println!(
                        "{}: skipped ({reason})",
                        synquid::lang::runner::goal_label(&report.goal, label)
                    );
                }
                None => {
                    let pass = report.count(&CaseVerdict::Pass);
                    let gave_up = report.count(&CaseVerdict::GaveUp);
                    let undecidable = report.count(&CaseVerdict::Undecidable);
                    let mut cells = vec![format!("{pass} pass")];
                    if !report.violations.is_empty() {
                        cells.push(format!("{} VIOLATION(S)", report.violations.len()));
                    }
                    if gave_up > 0 {
                        cells.push(format!("{gave_up} gave up"));
                    }
                    if undecidable > 0 {
                        cells.push(format!("{undecidable} undecidable"));
                    }
                    println!(
                        "{}: {} cases — {} (rejected {})",
                        synquid::lang::runner::goal_label(&report.goal, label),
                        report.verdicts.len(),
                        cells.join(", "),
                        report.rejected,
                    );
                    for v in &report.violations {
                        let inputs: Vec<String> = v.inputs.iter().map(|c| c.to_string()).collect();
                        let shrunk: Vec<String> = v.shrunk.iter().map(|c| c.to_string()).collect();
                        println!(
                            "  {} case {}: inputs {} — {}",
                            v.verdict.tag(),
                            v.case,
                            inputs.join(", "),
                            v.detail
                        );
                        println!("    shrunk: {}", shrunk.join(", "));
                    }
                    for d in &report.differential {
                        let status = if !d.solved {
                            "unsolved (timing difference, not checked)".to_string()
                        } else if d.verdicts_match {
                            format!("verdicts match, {} output(s) differ", d.outputs_differ)
                        } else {
                            "VERDICTS DIVERGE".to_string()
                        };
                        println!("  differential {}: {status}", d.ablation);
                    }
                }
            }
            reports.push(report);
        }
    }
    if !goal_names.is_empty() && !matched_goal_filter {
        eprintln!("error: no goal named {} found", goal_names.join(", "));
        return ExitCode::from(2);
    }

    // On violations, print the winning derivations of the offending
    // solutions from the captured trace.
    let any_violation = reports.iter().any(|r| !r.violations.is_empty());
    let any_divergence = reports
        .iter()
        .flat_map(|r| &r.differential)
        .any(|d| !d.verdicts_match);
    let text = telemetry::events::take_trace_buffer().unwrap_or_default();
    if any_violation {
        if let Ok(trace) = synquid::trace::parse_trace(&text) {
            let forest = synquid::trace::DerivationForest::build(&trace);
            for report in reports.iter().filter(|r| !r.violations.is_empty()) {
                if let Some(attempt) = forest.winning(&report.goal) {
                    println!(
                        "\nwinning derivation of the violating solution {}:",
                        report.goal
                    );
                    print!("{}", attempt.render_winning());
                }
            }
        }
    }

    let total_pass: usize = reports.iter().map(|r| r.count(&CaseVerdict::Pass)).sum();
    let fuzzed = reports.iter().filter(|r| r.skipped.is_none()).count();
    let skipped = reports.len() - fuzzed;
    println!(
        "\nfuzz: {} goal(s) fuzzed, {} skipped, {} passing case(s), {} violation(s), {} divergence(s) [seed {}]",
        fuzzed,
        skipped,
        total_pass,
        reports.iter().map(|r| r.violations.len()).sum::<usize>(),
        reports
            .iter()
            .flat_map(|r| &r.differential)
            .filter(|d| !d.verdicts_match)
            .count(),
        cfg.seed,
    );

    if let Some(path) = out_path {
        let json = summary_json(cfg.seed, cfg.cases, &reports);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write summary to {path}: {e}");
            return ExitCode::from(2);
        }
        println!("summary written to {path}");
    }

    if any_violation || any_divergence {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("explain") {
        return explain_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        return fuzz_main(&args[1..]);
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.stats {
        telemetry::set_profiling(true);
    }
    if let Some(path) = &opts.trace_out {
        if let Err(e) = telemetry::events::init_trace_file(path) {
            eprintln!("error: cannot open trace output {path}: {e}");
            return ExitCode::from(2);
        }
    }
    // Parse/desugar run on this thread; snapshot so the batch summary can
    // attribute frontend time alongside the workers' synthesis phases.
    let profile_base = telemetry::profiling_enabled().then(telemetry::snapshot);

    // Load every spec file up front; any malformed file aborts the batch
    // before synthesis starts.
    let mut file_headers: Vec<String> = Vec::new();
    let mut planned: Vec<PlannedGoal> = Vec::new();
    let mut jobs: Vec<GoalJob> = Vec::new();
    for (file_idx, file) in opts.files.iter().enumerate() {
        let spec = match synquid::parser::load_file(file) {
            Ok(spec) => spec,
            Err(e) => {
                let msg = e.to_string();
                eprint!("{msg}");
                if !msg.ends_with('\n') {
                    eprintln!();
                }
                return ExitCode::from(2);
            }
        };
        if spec.goals.is_empty() {
            eprintln!("{file}: no goals declared (add `name = ??` after a signature)");
            return ExitCode::from(2);
        }
        file_headers.push(format!(
            "{file}: {} component(s), {} goal(s)",
            spec.components.len(),
            spec.goals.len()
        ));
        for goal in spec.goals {
            let selected = opts.only.is_empty() || opts.only.iter().any(|n| n == &goal.name);
            if !selected {
                continue;
            }
            planned.push(PlannedGoal {
                file_idx,
                name: goal.name.clone(),
                file: file.clone(),
                schema: goal.schema.to_string(),
            });
            jobs.push(GoalJob::new(file.clone(), goal));
        }
    }

    if opts.list {
        for (file_idx, header) in file_headers.iter().enumerate() {
            println!("{header}");
            for goal in planned.iter().filter(|g| g.file_idx == file_idx) {
                println!("\n{} :: {}", goal.name, goal.schema);
            }
        }
        return ExitCode::SUCCESS;
    }
    if jobs.is_empty() {
        eprintln!("error: --goal filters matched no goals");
        return ExitCode::from(2);
    }

    let explicit = opts.app_depth.is_some() || opts.match_depth.is_some();
    let rungs: Vec<(usize, usize)> = if explicit {
        vec![(opts.app_depth.unwrap_or(2), opts.match_depth.unwrap_or(1))]
    } else {
        DEFAULT_RUNGS.to_vec()
    };
    let engine = Engine::new(EngineConfig {
        jobs: opts.jobs,
        timeout: opts.timeout,
        rungs,
        ..EngineConfig::default()
    });
    // All cross-goal solver state lives in one resident session; the
    // engine (and any warm replays) only borrow it.
    let session = SynthesisSession::new();
    if let Some(path) = &opts.load_session {
        // Best-effort by design: a missing, stale, or corrupt snapshot
        // must degrade to a cold start, never an error.
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let warm = session.warm_start(&text);
                if warm.cold {
                    eprintln!("note: session snapshot {path} is stale or corrupt; starting cold");
                } else if opts.stats {
                    eprintln!(
                        "session warm start from {path}: {} validity entries, {} lemma(s), {} namespace(s)",
                        warm.validity_entries, warm.lemmas, warm.namespaces
                    );
                }
            }
            Err(e) => eprintln!("note: cannot read session snapshot {path} ({e}); starting cold"),
        }
    }
    let report = engine.run_batch(jobs.clone(), &session);
    let warm_reports: Vec<_> = (0..opts.warm_runs)
        .map(|_| engine.run_batch(jobs.clone(), &session))
        .collect();

    // Deterministic aggregation: results print grouped by file, in
    // submission order, however the workers interleaved. Every file
    // prints its header, even when `--goal` filtered out all its goals,
    // so the user can see it was parsed.
    let mut any_failed = false;
    let mut outcomes = planned.iter().zip(&report.outcomes).peekable();
    for (file_idx, header) in file_headers.iter().enumerate() {
        println!("{header}");
        while let Some((planned_goal, outcome)) = outcomes.peek() {
            if planned_goal.file_idx != file_idx {
                break;
            }
            if !outcome.result.solved {
                any_failed = true;
            }
            print_outcome(planned_goal, outcome, &opts);
            outcomes.next();
        }
    }
    if opts.stats {
        let cache = &report.cache;
        println!(
            "\nbatch: {} goal(s), {} worker(s), {:.2}s wall clock",
            report.outcomes.len(),
            report.jobs,
            report.wall_secs
        );
        println!(
            "validity cache: {} hits / {} misses ({:.1}% hit rate), {} negative hits, {} entries, {} interned nodes",
            cache.hits,
            cache.misses,
            100.0 * cache.hit_rate(),
            cache.negative_hits,
            cache.entries,
            cache.interned_nodes,
        );
        let s = &report.session;
        println!(
            "session: {} namespace(s), enumeration {} hits / {} misses ({:.1}% hit rate), {} lemma(s) resident ({} absorbed this run)",
            s.namespaces,
            s.enumeration.hits,
            s.enumeration.misses,
            100.0 * s.enumeration.hit_rate(),
            s.lemmas.resident,
            s.lemmas.absorbed,
        );
        // Aggregate phase split: the main thread's parse/desugar time
        // plus every goal's synthesis-side profile.
        let mut aggregate = profile_base
            .map(|base| telemetry::snapshot().delta_since(&base))
            .unwrap_or_default();
        for outcome in &report.outcomes {
            if let Some(stats) = &outcome.result.stats {
                aggregate.merge(&stats.phases);
            }
        }
        if !aggregate.is_empty() {
            println!("batch phases (self time, summed across threads):");
            print!("{}", aggregate.table("  "));
        }
    }
    // Warm replays against the now-resident session: same outcomes,
    // warmer caches. An outcome change is a residency-soundness bug and
    // fails the run.
    for (i, warm) in warm_reports.iter().enumerate() {
        let ws = &warm.session;
        println!(
            "warm run {}: {:.2}s wall (cold {:.2}s), validity {:.1}% hit rate (cold {:.1}%), enumeration {:.1}% (cold {:.1}%)",
            i + 1,
            warm.wall_secs,
            report.wall_secs,
            100.0 * ws.validity.hit_rate(),
            100.0 * report.session.validity.hit_rate(),
            100.0 * ws.enumeration.hit_rate(),
            100.0 * report.session.enumeration.hit_rate(),
        );
        let mismatch = report.outcomes.len() != warm.outcomes.len()
            || report.outcomes.iter().zip(&warm.outcomes).any(|(c, w)| {
                c.result.solved != w.result.solved || c.result.program != w.result.program
            });
        if mismatch {
            eprintln!(
                "error: warm run {} changed outcomes against the cold run",
                i + 1
            );
            any_failed = true;
        }
    }
    if let Some(path) = &opts.save_session {
        if let Err(e) = std::fs::write(path, session.serialize()) {
            eprintln!("error: cannot write session snapshot to {path}: {e}");
            any_failed = true;
        } else if opts.stats {
            eprintln!("session snapshot written to {path}");
        }
    }
    telemetry::events::flush_trace();

    if any_failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
