//! The `synquid` command-line interface: load Synquid-style `.sq`
//! specification files, synthesize every goal they declare, and
//! pretty-print the solutions.
//!
//! ```text
//! Usage: synquid [OPTIONS] <SPEC.sq>...
//!
//! Options:
//!   --timeout <SECS>      per-goal synthesis budget (default: 30)
//!   --app-depth <N>       fix the application depth (default: iterative)
//!   --match-depth <N>     fix the match depth (default: iterative)
//!   --goal <NAME>         only synthesize the named goal (repeatable)
//!   --list                list the goals without synthesizing
//!   -h, --help            print this help
//! ```
//!
//! When no explicit bounds are given, each goal is attempted with
//! iteratively deepened exploration bounds — `(1,0), (1,1), (2,1),
//! (3,1), (3,2)` — within one shared time budget: shallow searches that
//! exhaust their space fail fast and hand the remaining budget to the
//! next rung, which is how the paper's per-benchmark bounds are
//! approximated without asking the user to tune anything.
//!
//! Exit status: 0 if every requested goal synthesized, 1 if any goal
//! failed or timed out, 2 on usage or specification errors.

use std::process::ExitCode;
use std::time::Duration;
use synquid::lang::runner::{run_goal, Variant};

const USAGE: &str = "\
Usage: synquid [OPTIONS] <SPEC.sq>...

Synthesizes every goal declared in the given Synquid-style spec files.

Options:
  --timeout <SECS>      per-goal synthesis budget (default: 30)
  --app-depth <N>       fix the application depth (default: iterative deepening)
  --match-depth <N>     fix the match depth (default: iterative deepening)
  --goal <NAME>         only synthesize the named goal (repeatable)
  --list                list the goals without synthesizing
  -h, --help            print this help

Without explicit bounds each goal is tried at the deepening ladder
(1,0) (1,1) (2,1) (3,1) (3,2) within the shared time budget.
";

struct Options {
    files: Vec<String>,
    timeout: Duration,
    app_depth: Option<usize>,
    match_depth: Option<usize>,
    only: Vec<String>,
    list: bool,
}

/// The default exploration-bound ladder used when no explicit bounds are
/// given (application depth, match depth), shallowest first.
const BOUNDS_LADDER: &[(usize, usize)] = &[(1, 0), (1, 1), (2, 1), (3, 1), (3, 2)];

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        timeout: Duration::from_secs(30),
        app_depth: None,
        match_depth: None,
        only: Vec::new(),
        list: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--timeout" => {
                opts.timeout = Duration::from_secs(
                    value("--timeout")?
                        .parse()
                        .map_err(|_| "--timeout needs a number of seconds".to_string())?,
                )
            }
            "--app-depth" => {
                opts.app_depth = Some(
                    value("--app-depth")?
                        .parse()
                        .map_err(|_| "--app-depth needs an integer".to_string())?,
                )
            }
            "--match-depth" => {
                opts.match_depth = Some(
                    value("--match-depth")?
                        .parse()
                        .map_err(|_| "--match-depth needs an integer".to_string())?,
                )
            }
            "--goal" => opts.only.push(value("--goal")?),
            "--list" => opts.list = true,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() {
        return Err("no spec files given".to_string());
    }
    Ok(opts)
}

/// Runs one goal, either at the explicitly requested bounds or up the
/// deepening ladder within the shared time budget.
fn synthesize_with_bounds(
    goal: &synquid::core::Goal,
    opts: &Options,
) -> synquid::lang::runner::RunResult {
    let deadline = std::time::Instant::now() + opts.timeout;
    let explicit = opts.app_depth.is_some() || opts.match_depth.is_some();
    let rungs: Vec<(usize, usize)> = if explicit {
        vec![(opts.app_depth.unwrap_or(2), opts.match_depth.unwrap_or(1))]
    } else {
        BOUNDS_LADDER.to_vec()
    };
    let mut last = None;
    for bounds in rungs {
        let budget = deadline.saturating_duration_since(std::time::Instant::now());
        if budget.is_zero() {
            break;
        }
        let result = run_goal(goal, Variant::Default.config(budget, bounds));
        if result.solved {
            return result;
        }
        last = Some(result);
    }
    last.unwrap_or_else(|| synquid::lang::runner::RunResult {
        name: goal.name.clone(),
        solved: false,
        timed_out: true,
        time_secs: opts.timeout.as_secs_f64(),
        program: None,
        code_size: None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut any_failed = false;
    let mut any_ran = false;
    for file in &opts.files {
        let spec = match synquid::parser::load_file(file) {
            Ok(spec) => spec,
            Err(e) => {
                let msg = e.to_string();
                eprint!("{msg}");
                if !msg.ends_with('\n') {
                    eprintln!();
                }
                return ExitCode::from(2);
            }
        };
        if spec.goals.is_empty() {
            eprintln!("{file}: no goals declared (add `name = ??` after a signature)");
            return ExitCode::from(2);
        }
        println!(
            "{file}: {} component(s), {} goal(s)",
            spec.components.len(),
            spec.goals.len()
        );
        for goal in &spec.goals {
            if !opts.only.is_empty() && !opts.only.iter().any(|n| n == &goal.name) {
                continue;
            }
            println!("\n{} :: {}", goal.name, goal.schema);
            if opts.list {
                continue;
            }
            any_ran = true;
            let result = synthesize_with_bounds(goal, &opts);
            if result.solved {
                println!(
                    "{} = {}   -- solved in {:.2}s, {} AST nodes",
                    goal.name,
                    result.program.as_deref().unwrap_or("<missing>"),
                    result.time_secs,
                    result.code_size.unwrap_or(0),
                );
            } else {
                any_failed = true;
                println!(
                    "{}: no solution within {:.0}s{}",
                    goal.name,
                    opts.timeout.as_secs_f64(),
                    if result.timed_out { " (timed out)" } else { "" },
                );
            }
        }
    }
    if opts.list {
        return ExitCode::SUCCESS;
    }
    if !any_ran {
        eprintln!("error: --goal filters matched no goals");
        return ExitCode::from(2);
    }
    if any_failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
