//! The resolver/desugarer: elaborates a parsed [`SpecAst`] into the
//! semantic objects of the rest of the system — `synquid_logic::{Sort,
//! Term, Qualifier}`, `synquid_types::{RType, Schema, Environment,
//! Datatype, Measure}`, and `synquid_core::Goal`.
//!
//! Elaboration is *sort-directed*: every surface term is desugared
//! together with an optional expected sort, which is how overloaded
//! operators (`+` as addition vs. union, `<=` as ordering vs. subset) and
//! the empty set literal `[]` are resolved. Errors (unbound names, sort
//! mismatches, arity errors, unknown measures or datatypes) are collected
//! as source-located [`Diagnostic`]s rather than failing fast, so one run
//! reports every problem in the file.

use crate::ast::*;
use crate::span::{Diagnostic, Span};
use std::collections::BTreeMap;
use synquid_core::Goal;
use synquid_logic::{Qualifier, Sort, Term};
use synquid_types::{BaseType, Constructor, Datatype, Environment, Measure, RType, Schema};

/// The result of elaborating a specification file.
#[derive(Debug, Clone)]
pub struct SpecOutput {
    /// The component environment shared by all goals: every datatype,
    /// qualifier, and component signature in the file.
    pub env: Environment,
    /// The synthesis goals (`name = ??` definitions), in source order.
    /// Each goal carries its own clone of the environment.
    pub goals: Vec<Goal>,
    /// Names of the plain components (signatures without a `= ??`
    /// definition), in declaration order.
    pub components: Vec<String>,
}

/// Elaborates a parsed spec into an environment and goals.
pub fn desugar(spec: &SpecAst) -> Result<SpecOutput, Vec<Diagnostic>> {
    let mut d = Desugarer::default();
    let out = d.run(spec);
    if d.diags.is_empty() {
        Ok(out)
    } else {
        Err(d.diags)
    }
}

/// A measure signature as declared in the surface syntax.
#[derive(Debug, Clone)]
struct MeasureSig {
    datatype: String,
    arg_sort: Sort,
    result_sort: Sort,
    non_negative: bool,
    termination: bool,
    span: Span,
}

#[derive(Default)]
struct Desugarer {
    diags: Vec<Diagnostic>,
    /// Datatype name → type parameters (collected up front so measures may
    /// reference datatypes declared later in the file).
    headers: BTreeMap<String, Vec<String>>,
    /// Measure name → signature.
    measures: BTreeMap<String, MeasureSig>,
    /// Measures not yet attached to their `data` declaration, in
    /// declaration order.
    pending_measures: Vec<String>,
    /// Datatypes already elaborated.
    done_datatypes: Vec<String>,
    /// Counter for unnamed function binders.
    fresh_args: usize,
    /// User-written binder names of the signature currently being
    /// elaborated; fresh names must not collide with these.
    reserved_binders: std::collections::BTreeSet<String>,
}

/// Collects every explicitly written binder name in a surface type.
fn collect_binder_names(t: &TypeAst, out: &mut std::collections::BTreeSet<String>) {
    match t {
        TypeAst::Fun {
            arg_name, arg, ret, ..
        } => {
            if let Some(n) = arg_name {
                out.insert(n.clone());
            }
            collect_binder_names(arg, out);
            collect_binder_names(ret, out);
        }
        TypeAst::Scalar { base, .. } => {
            if let BaseAst::Data(_, args) = base {
                for a in args {
                    collect_binder_names(a, out);
                }
            }
        }
    }
}

impl Desugarer {
    fn error(&mut self, span: Span, message: impl Into<String>) {
        self.diags.push(Diagnostic::error(span, message));
    }

    fn run(&mut self, spec: &SpecAst) -> SpecOutput {
        // Pass 1: datatype headers and the set of goal names.
        let mut goal_names: Vec<String> = Vec::new();
        for decl in &spec.decls {
            match decl {
                DeclAst::Data(data)
                    if self
                        .headers
                        .insert(data.name.clone(), data.params.clone())
                        .is_some() =>
                {
                    self.error(data.span, format!("duplicate datatype `{}`", data.name));
                }
                DeclAst::Impl(i) => goal_names.push(i.name.clone()),
                _ => {}
            }
        }

        // Pass 2: elaborate declarations in order.
        let mut env = Environment::new();
        let mut components = Vec::new();
        let mut sigs: BTreeMap<String, (Schema, Span)> = BTreeMap::new();
        let mut goals: Vec<(String, Schema)> = Vec::new();
        for decl in &spec.decls {
            match decl {
                DeclAst::Measure(m) => self.measure_decl(m),
                DeclAst::Data(data) => {
                    if let Some(dt) = self.data_decl(data) {
                        env.add_datatype(dt);
                    }
                }
                DeclAst::Qualifier(q) => {
                    let qs = self.qualifier_decl(q);
                    env.add_qualifiers(qs);
                }
                DeclAst::Sig(sig) => {
                    if sigs.contains_key(&sig.name) {
                        self.error(sig.span, format!("duplicate signature for `{}`", sig.name));
                        continue;
                    }
                    let Some(schema) = self.schema(&sig.schema) else {
                        continue;
                    };
                    if goal_names.iter().any(|g| g == &sig.name) {
                        sigs.insert(sig.name.clone(), (schema, sig.span));
                    } else {
                        sigs.insert(sig.name.clone(), (schema.clone(), sig.span));
                        env.add_var(sig.name.clone(), schema);
                        components.push(sig.name.clone());
                    }
                }
                DeclAst::Impl(i) => {
                    if goals.iter().any(|(n, _)| n == &i.name) {
                        self.error(i.span, format!("duplicate definition of goal `{}`", i.name));
                        continue;
                    }
                    match sigs.get(&i.name) {
                        Some((schema, _)) => goals.push((i.name.clone(), schema.clone())),
                        None => self.error(
                            i.span,
                            format!(
                                "no signature for `{}`: declare `{} :: <type>` first",
                                i.name, i.name
                            ),
                        ),
                    }
                }
            }
        }

        // Measures whose datatype was never declared as `data`.
        for name in &self.pending_measures {
            let sig = &self.measures[name];
            if !self.done_datatypes.contains(&sig.datatype) {
                let (span, message) = (
                    sig.span,
                    format!(
                        "measure `{}` refers to datatype `{}`, which has no `data` declaration",
                        name, sig.datatype
                    ),
                );
                self.diags.push(Diagnostic::error(span, message));
            }
        }

        let goals = goals
            .into_iter()
            .map(|(name, schema)| Goal::new(name, env.clone(), schema))
            .collect();
        SpecOutput {
            env,
            goals,
            components,
        }
    }

    // -----------------------------------------------------------------
    // Declarations
    // -----------------------------------------------------------------

    fn measure_decl(&mut self, m: &MeasureAst) {
        if self.measures.contains_key(&m.name) {
            self.error(m.span, format!("duplicate measure `{}`", m.name));
            return;
        }
        let Some(arg_sort) = self.sort(&m.arg, false, m.span) else {
            return;
        };
        let datatype = match &arg_sort {
            Sort::Data(name, _) => name.clone(),
            other => {
                self.error(
                    m.span,
                    format!("a measure's argument must be a datatype, not `{other}`"),
                );
                return;
            }
        };
        if self.done_datatypes.contains(&datatype) {
            self.error(
                m.span,
                format!(
                    "measure `{}` must be declared before `data {}` (measures are registered with their datatype)",
                    m.name, datatype
                ),
            );
            return;
        }
        let non_negative = m.termination || m.result == SortAst::Nat;
        let Some(result_sort) = self.sort(&m.result, true, m.span) else {
            return;
        };
        self.measures.insert(
            m.name.clone(),
            MeasureSig {
                datatype,
                arg_sort,
                result_sort,
                non_negative,
                termination: m.termination,
                span: m.span,
            },
        );
        self.pending_measures.push(m.name.clone());
    }

    fn data_decl(&mut self, data: &DataAst) -> Option<Datatype> {
        // Collect this datatype's measures, in declaration order.
        let mut measures = Vec::new();
        let mut termination_measure = None;
        for name in &self.pending_measures {
            let sig = &self.measures[name];
            if sig.datatype != data.name {
                continue;
            }
            if sig.termination {
                if termination_measure.is_some() {
                    let span = sig.span;
                    let message = format!(
                        "datatype `{}` declares more than one termination measure",
                        data.name
                    );
                    self.diags.push(Diagnostic::error(span, message));
                } else {
                    termination_measure = Some(name.clone());
                }
            }
            measures.push(Measure {
                name: name.clone(),
                datatype: sig.datatype.clone(),
                result: sig.result_sort.clone(),
                non_negative: sig.non_negative,
            });
        }

        let mut constructors = Vec::new();
        for ctor in &data.ctors {
            let mut scope = Vec::new();
            self.reserved_binders.clear();
            collect_binder_names(&ctor.ty, &mut self.reserved_binders);
            let ty = self.rtype(&ctor.ty, &mut scope)?;
            // The constructor's result must be the datatype itself.
            let (_, ret) = ty.uncurry();
            match ret.base_type() {
                Some(BaseType::Data(name, _)) if name == &data.name => {}
                _ => {
                    self.error(
                        ctor.span,
                        format!(
                            "constructor `{}` must return `{}`, but its result type is `{ret}`",
                            ctor.name, data.name
                        ),
                    );
                    continue;
                }
            }
            constructors.push(Constructor {
                name: ctor.name.clone(),
                schema: Schema::forall(data.params.clone(), ty),
            });
        }

        self.done_datatypes.push(data.name.clone());
        Some(Datatype {
            name: data.name.clone(),
            type_params: data.params.clone(),
            constructors,
            measures,
            termination_measure,
        })
    }

    fn qualifier_decl(&mut self, q: &QualifierAst) -> Vec<Qualifier> {
        let mut scope: Vec<(String, Sort)> = Vec::new();
        for (name, sort_ast) in &q.binders {
            if let Some(sort) = self.sort(sort_ast, false, q.span) {
                scope.push((name.clone(), sort));
            }
        }
        let mut out = Vec::new();
        for atom in &q.atoms {
            let Some(term) = self.term(atom, &scope, None, Some(&Sort::Bool)) else {
                continue;
            };
            if term.sort() != Sort::Bool {
                self.error(atom.span(), "a qualifier must be a boolean formula");
                continue;
            }
            // Abstract the binders into placeholder holes, numbered by
            // first occurrence within this atom (the convention of
            // `Qualifier::standard`).
            let mut order: Vec<(String, Sort)> = Vec::new();
            term.walk(&mut |t| {
                if let Term::Var(name, sort) = t {
                    if scope.iter().any(|(b, _)| b == name) && !order.iter().any(|(n, _)| n == name)
                    {
                        order.push((name.clone(), sort.clone()));
                    }
                }
            });
            let mut subst = synquid_logic::Substitution::new();
            for (i, (name, sort)) in order.iter().enumerate() {
                subst.insert(name.clone(), Qualifier::hole(i, sort.clone()));
            }
            out.push(Qualifier::new(term.substitute(&subst)));
        }
        out
    }

    /// Picks a fresh name for an unnamed binder, avoiding every binder
    /// the user wrote in the signature being elaborated.
    fn fresh_arg_name(&mut self) -> String {
        loop {
            let candidate = format!("arg{}", self.fresh_args);
            self.fresh_args += 1;
            if !self.reserved_binders.contains(&candidate) {
                return candidate;
            }
        }
    }

    fn schema(&mut self, s: &SchemaAst) -> Option<Schema> {
        let mut scope = Vec::new();
        self.reserved_binders.clear();
        collect_binder_names(&s.ty, &mut self.reserved_binders);
        let ty = self.rtype(&s.ty, &mut scope)?;
        Some(match &s.type_vars {
            Some(vars) => Schema::forall(vars.clone(), ty),
            None => Schema::monotype(ty),
        })
    }

    // -----------------------------------------------------------------
    // Types
    // -----------------------------------------------------------------

    fn rtype(&mut self, t: &TypeAst, scope: &mut Vec<(String, Sort)>) -> Option<RType> {
        match t {
            TypeAst::Scalar {
                base,
                refinement,
                span,
            } => {
                match base {
                    BaseAst::Nat | BaseAst::Pos => {
                        if refinement.is_some() {
                            self.error(
                                *span,
                                "`Nat` and `Pos` are abbreviations and cannot carry an extra refinement; use `{Int | …}`",
                            );
                            return None;
                        }
                        return Some(if matches!(base, BaseAst::Nat) {
                            RType::nat()
                        } else {
                            RType::pos()
                        });
                    }
                    _ => {}
                }
                let base = self.base_type(base, *span, scope)?;
                match refinement {
                    None => Some(RType::base(base)),
                    Some(term_ast) => {
                        let value_sort = base.sort();
                        let term =
                            self.term(term_ast, scope, Some(&value_sort), Some(&Sort::Bool))?;
                        if term.sort() != Sort::Bool {
                            self.error(
                                term_ast.span(),
                                format!(
                                    "a refinement must be boolean, but this term has sort `{}`",
                                    term.sort()
                                ),
                            );
                            return None;
                        }
                        Some(RType::refined(base, term))
                    }
                }
            }
            TypeAst::Fun {
                arg_name, arg, ret, ..
            } => {
                let arg_ty = self.rtype(arg, scope)?;
                let name = match arg_name {
                    Some(n) => n.clone(),
                    None => self.fresh_arg_name(),
                };
                let pushed = if arg_ty.is_scalar() {
                    scope.push((name.clone(), arg_ty.sort()));
                    true
                } else {
                    false
                };
                let ret_ty = self.rtype(ret, scope);
                if pushed {
                    scope.pop();
                }
                Some(RType::fun(name, arg_ty, ret_ty?))
            }
        }
    }

    fn base_type(
        &mut self,
        base: &BaseAst,
        span: Span,
        scope: &mut Vec<(String, Sort)>,
    ) -> Option<BaseType> {
        match base {
            BaseAst::Int => Some(BaseType::Int),
            BaseAst::Bool => Some(BaseType::Bool),
            BaseAst::Var(name) => Some(BaseType::TypeVar(name.clone())),
            BaseAst::Data(name, args) => {
                let Some(params) = self.headers.get(name).cloned() else {
                    self.error(span, format!("unknown datatype `{name}`"));
                    return None;
                };
                if params.len() != args.len() {
                    self.error(
                        span,
                        format!(
                            "datatype `{name}` expects {} type argument{}, found {}",
                            params.len(),
                            if params.len() == 1 { "" } else { "s" },
                            args.len()
                        ),
                    );
                    return None;
                }
                let mut targs = Vec::new();
                for a in args {
                    targs.push(self.rtype(a, scope)?);
                }
                Some(BaseType::Data(name.clone(), targs))
            }
            BaseAst::Nat | BaseAst::Pos => {
                // Handled by the caller; reaching here means `Nat` was used
                // where a plain base type is required (e.g. a measure arg).
                self.error(span, "`Nat`/`Pos` cannot be used here");
                None
            }
        }
    }

    fn sort(&mut self, s: &SortAst, allow_nat: bool, span: Span) -> Option<Sort> {
        match s {
            SortAst::Int => Some(Sort::Int),
            SortAst::Bool => Some(Sort::Bool),
            SortAst::Nat => {
                if allow_nat {
                    Some(Sort::Int)
                } else {
                    self.error(span, "`Nat` is only meaningful as a measure result sort");
                    None
                }
            }
            SortAst::Var(v) => Some(Sort::var(v.clone())),
            SortAst::Set(e) => Some(Sort::set(self.sort(e, false, span)?)),
            SortAst::Data(name, args) => {
                if let Some(params) = self.headers.get(name) {
                    if params.len() != args.len() {
                        self.error(
                            span,
                            format!(
                                "datatype `{name}` expects {} sort argument{}, found {}",
                                params.len(),
                                if params.len() == 1 { "" } else { "s" },
                                args.len()
                            ),
                        );
                        return None;
                    }
                } else {
                    self.error(span, format!("unknown datatype `{name}`"));
                    return None;
                }
                let mut sargs = Vec::new();
                for a in args {
                    sargs.push(self.sort(a, false, span)?);
                }
                Some(Sort::Data(name.clone(), sargs))
            }
        }
    }

    // -----------------------------------------------------------------
    // Terms
    // -----------------------------------------------------------------

    /// Desugars a surface term. `scope` holds the scalar binders in scope
    /// (innermost last), `value_sort` the sort of `_v` if available, and
    /// `expected` an optional expected sort used to resolve empty set
    /// literals.
    fn term(
        &mut self,
        t: &TermAst,
        scope: &[(String, Sort)],
        value_sort: Option<&Sort>,
        expected: Option<&Sort>,
    ) -> Option<Term> {
        match t {
            TermAst::Int(n, _) => Some(Term::int(*n)),
            TermAst::Bool(b, _) => Some(Term::BoolLit(*b)),
            TermAst::ValueVar(span) => match value_sort {
                Some(s) => Some(Term::value_var(s.clone())),
                None => {
                    self.error(*span, "the value variable `_v` cannot be used here");
                    None
                }
            },
            TermAst::Var(name, span) => match scope.iter().rev().find(|(n, _)| n == name) {
                Some((_, sort)) => Some(Term::var(name.clone(), sort.clone())),
                None => {
                    let hint = if self.measures.contains_key(name) {
                        format!("; did you mean to apply the measure, e.g. `{name} xs`?")
                    } else {
                        String::new()
                    };
                    self.error(*span, format!("unbound variable `{name}`{hint}"));
                    None
                }
            },
            TermAst::Set(elems, span) => {
                if elems.is_empty() {
                    match expected {
                        Some(Sort::Set(elem)) => Some(Term::empty_set((**elem).clone())),
                        _ => {
                            self.error(
                                *span,
                                "cannot infer the element sort of `[]` here; write it on the other side of the comparison first",
                            );
                            None
                        }
                    }
                } else {
                    let expected_elem = match expected {
                        Some(Sort::Set(e)) => Some((**e).clone()),
                        _ => None,
                    };
                    let first = self.term(&elems[0], scope, value_sort, expected_elem.as_ref())?;
                    let elem_sort = first.sort();
                    let mut out = vec![first];
                    for e in &elems[1..] {
                        out.push(self.term(e, scope, value_sort, Some(&elem_sort))?);
                    }
                    Some(Term::SetLit(elem_sort, out))
                }
            }
            TermAst::App(head, args, span) => {
                let Some(sig) = self.measures.get(head).cloned() else {
                    let hint = if scope.iter().any(|(n, _)| n == head) {
                        "; only measures can be applied inside refinements"
                    } else {
                        ""
                    };
                    self.error(*span, format!("unknown measure `{head}`{hint}"));
                    return None;
                };
                if args.len() != 1 {
                    self.error(
                        *span,
                        format!("measure `{head}` takes 1 argument, found {}", args.len()),
                    );
                    return None;
                }
                let arg = self.term(&args[0], scope, value_sort, None)?;
                let mut map = BTreeMap::new();
                if !match_sorts(&sig.arg_sort, &arg.sort(), &mut map) {
                    self.error(
                        args[0].span(),
                        format!(
                            "measure `{head}` expects an argument of sort `{}`, found `{}`",
                            sig.arg_sort,
                            arg.sort()
                        ),
                    );
                    return None;
                }
                let result = sig.result_sort.substitute(&map);
                Some(Term::app(head.clone(), vec![arg], result))
            }
            TermAst::Unary(op, inner, span) => {
                let inner_t = self.term(inner, scope, value_sort, None)?;
                match op {
                    UnOpAst::Neg => {
                        if !inner_t.sort().compatible(&Sort::Int) {
                            self.error(
                                *span,
                                format!("`-` needs an integer operand, found `{}`", inner_t.sort()),
                            );
                            return None;
                        }
                        Some(inner_t.neg())
                    }
                    UnOpAst::Not => {
                        if inner_t.sort() != Sort::Bool {
                            self.error(
                                *span,
                                format!("`!` needs a boolean operand, found `{}`", inner_t.sort()),
                            );
                            return None;
                        }
                        Some(inner_t.not())
                    }
                }
            }
            TermAst::Binary(op, l, r, span) => {
                self.binary(*op, l, r, *span, scope, value_sort, expected)
            }
            TermAst::Ite(c, then, els, _) => {
                let cond = self.term(c, scope, value_sort, Some(&Sort::Bool))?;
                if cond.sort() != Sort::Bool {
                    self.error(
                        c.span(),
                        format!(
                            "the condition of `if` must be boolean, found `{}`",
                            cond.sort()
                        ),
                    );
                    return None;
                }
                let then_t = self.term(then, scope, value_sort, expected)?;
                let then_sort = then_t.sort();
                let else_t = self.term(els, scope, value_sort, Some(&then_sort))?;
                if !then_sort.compatible(&else_t.sort()) {
                    self.error(
                        els.span(),
                        format!(
                            "the branches of `if` disagree: `{then_sort}` versus `{}`",
                            else_t.sort()
                        ),
                    );
                    return None;
                }
                Some(Term::ite(cond, then_t, else_t))
            }
        }
    }

    /// Desugars the two operands of a binary operator. The side that is an
    /// empty set literal (whose element sort is not inferable on its own)
    /// is elaborated second, with the other side's sort as its expectation.
    fn operand_pair(
        &mut self,
        l: &TermAst,
        r: &TermAst,
        scope: &[(String, Sort)],
        value_sort: Option<&Sort>,
        expected: Option<&Sort>,
    ) -> Option<(Term, Term)> {
        let l_is_empty_set = matches!(l, TermAst::Set(elems, _) if elems.is_empty());
        if l_is_empty_set {
            let rt = self.term(r, scope, value_sort, expected)?;
            let r_sort = rt.sort();
            let lt = self.term(l, scope, value_sort, Some(&r_sort))?;
            Some((lt, rt))
        } else {
            let lt = self.term(l, scope, value_sort, expected)?;
            let l_sort = lt.sort();
            let rt = self.term(r, scope, value_sort, Some(&l_sort))?;
            Some((lt, rt))
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn binary(
        &mut self,
        op: BinOpAst,
        l: &TermAst,
        r: &TermAst,
        span: Span,
        scope: &[(String, Sort)],
        value_sort: Option<&Sort>,
        expected: Option<&Sort>,
    ) -> Option<Term> {
        use BinOpAst::*;
        match op {
            And | Or | Implies | Iff => {
                let lt = self.term(l, scope, value_sort, Some(&Sort::Bool))?;
                let rt = self.term(r, scope, value_sort, Some(&Sort::Bool))?;
                for (t, ast) in [(&lt, l), (&rt, r)] {
                    if t.sort() != Sort::Bool {
                        self.error(
                            ast.span(),
                            format!(
                                "logical connectives need boolean operands, found `{}`",
                                t.sort()
                            ),
                        );
                        return None;
                    }
                }
                Some(match op {
                    And => lt.and(rt),
                    Or => lt.or(rt),
                    Implies => lt.implies(rt),
                    _ => lt.iff(rt),
                })
            }
            In => {
                let set = self.term(r, scope, value_sort, None)?;
                let Some(elem_sort) = set.sort().elem_sort().cloned() else {
                    self.error(
                        r.span(),
                        format!(
                            "the right operand of `in` must be a set, found `{}`",
                            set.sort()
                        ),
                    );
                    return None;
                };
                let elem = self.term(l, scope, value_sort, Some(&elem_sort))?;
                if !elem.sort().compatible(&elem_sort) {
                    self.error(
                        span,
                        format!(
                            "sort mismatch in `in`: element `{}` versus set of `{elem_sort}`",
                            elem.sort()
                        ),
                    );
                    return None;
                }
                Some(elem.member(set))
            }
            Eq | Neq | Le | Lt | Ge | Gt | Plus | Minus | Times => {
                let (lt, rt) = self.operand_pair(l, r, scope, value_sort, expected)?;
                if !lt.sort().compatible(&rt.sort()) {
                    self.error(
                        span,
                        format!("sort mismatch: `{}` versus `{}`", lt.sort(), rt.sort()),
                    );
                    return None;
                }
                let on_sets =
                    matches!(lt.sort(), Sort::Set(_)) || matches!(rt.sort(), Sort::Set(_));
                match op {
                    Eq => Some(lt.eq(rt)),
                    Neq => Some(lt.neq(rt)),
                    Le if on_sets => Some(lt.subset(rt)),
                    Le => Some(lt.le(rt)),
                    Lt | Ge | Gt => {
                        if on_sets {
                            self.error(
                                span,
                                "only `<=` (subset) compares sets; `<`, `>`, `>=` are not defined on sets",
                            );
                            return None;
                        }
                        Some(match op {
                            Lt => lt.lt(rt),
                            Ge => lt.ge(rt),
                            _ => lt.gt(rt),
                        })
                    }
                    Plus if on_sets => Some(lt.union(rt)),
                    Plus => Some(lt.plus(rt)),
                    Minus if on_sets => Some(lt.set_diff(rt)),
                    Minus => Some(lt.minus(rt)),
                    Times if on_sets => Some(lt.intersect(rt)),
                    Times => Some(lt.times(rt)),
                    _ => unreachable!(),
                }
            }
        }
    }
}

/// Matches a measure's declared argument sort against an actual argument
/// sort, binding the declared sort variables. Returns false on a genuine
/// mismatch.
fn match_sorts(declared: &Sort, actual: &Sort, map: &mut BTreeMap<String, Sort>) -> bool {
    match (declared, actual) {
        (Sort::Unknown, _) | (_, Sort::Unknown) => true,
        (Sort::Var(v), _) => match map.get(v) {
            Some(bound) => bound.compatible(actual),
            None => {
                map.insert(v.clone(), actual.clone());
                true
            }
        },
        (Sort::Set(a), Sort::Set(b)) => match_sorts(a, b, map),
        (Sort::Data(n1, a1), Sort::Data(n2, a2)) => {
            n1 == n2
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| match_sorts(x, y, map))
        }
        _ => declared == actual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn elaborate(src: &str) -> SpecOutput {
        match desugar(&parse(src).expect("parses")) {
            Ok(out) => out,
            Err(diags) => panic!("desugar failed: {diags:#?}"),
        }
    }

    fn elaborate_err(src: &str) -> Vec<Diagnostic> {
        desugar(&parse(src).expect("parses")).expect_err("expected diagnostics")
    }

    const LIST_PRELUDE: &str = "\
termination measure len :: List b -> Int
measure elems :: List b -> Set b
data List b where
  Nil :: {List b | len _v == 0 && elems _v == []}
  Cons :: x: b -> xs: List b -> {List b | len _v == len xs + 1 && elems _v == elems xs + [x]}
";

    #[test]
    fn list_datatype_matches_the_programmatic_builder() {
        let out = elaborate(LIST_PRELUDE);
        let built = synquid_types::list_datatype();
        let parsed = out.env.datatype("List").expect("List registered");
        assert_eq!(parsed, &built);
    }

    #[test]
    fn components_without_quantifiers_are_monomorphic() {
        let out = elaborate("zero :: {Int | _v == 0}");
        let schema = out.env.lookup("zero").unwrap();
        assert!(schema.is_monomorphic());
        assert_eq!(
            schema.ty,
            RType::refined(BaseType::Int, Term::value_var(Sort::Int).eq(Term::int(0)))
        );
    }

    #[test]
    fn goals_take_the_declared_quantifier() {
        let src = format!(
            "{LIST_PRELUDE}\nlength :: <a> . xs: List a -> {{Int | _v == len xs}}\nlength = ??\n"
        );
        let out = elaborate(&src);
        assert_eq!(out.goals.len(), 1);
        let goal = &out.goals[0];
        assert_eq!(goal.name, "length");
        assert_eq!(goal.schema.type_vars, vec!["a".to_string()]);
        // The measure result sort is instantiated at the argument's sort.
        let (_, ret) = goal.schema.ty.uncurry();
        assert!(ret.refinement().to_string().contains("len xs"));
    }

    #[test]
    fn qualifier_binders_become_holes_in_occurrence_order() {
        let out = elaborate("qualifier [x: Int, y: Int] {x <= y, x != y, x < y}");
        assert_eq!(out.env.qualifiers(), &Qualifier::standard(Sort::Int)[..]);
    }

    #[test]
    fn nat_abbreviation_desugars_exactly() {
        let out = elaborate("f :: n: Nat -> {Int | _v == n}\n");
        let schema = out.env.lookup("f").unwrap();
        let (args, _) = schema.ty.uncurry();
        assert_eq!(args[0].1, RType::nat());
    }

    #[test]
    fn unbound_variables_are_reported_with_position() {
        let diags = elaborate_err("inc :: x: Int -> {Int | _v == m + 1}");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unbound variable `m`"));
    }

    #[test]
    fn sort_mismatches_are_reported() {
        let diags = elaborate_err(&format!(
            "{LIST_PRELUDE}\nf :: xs: List Int -> {{Int | _v == elems xs}}"
        ));
        assert!(
            diags[0].message.contains("sort mismatch"),
            "unexpected message: {}",
            diags[0].message
        );
    }

    #[test]
    fn measure_arity_errors_are_reported() {
        let diags = elaborate_err(&format!(
            "{LIST_PRELUDE}\nf :: xs: List Int -> {{Int | _v == len xs xs}}"
        ));
        assert!(diags[0].message.contains("takes 1 argument"));
    }

    #[test]
    fn unknown_measures_are_reported() {
        let diags = elaborate_err(&format!(
            "{LIST_PRELUDE}\nf :: xs: List Int -> {{Int | _v == size xs}}"
        ));
        assert!(diags[0].message.contains("unknown measure `size`"));
    }

    #[test]
    fn unknown_datatypes_are_reported() {
        let diags = elaborate_err("f :: t: Tree a -> Int");
        assert!(diags[0].message.contains("unknown datatype `Tree`"));
    }

    #[test]
    fn datatype_arity_is_checked() {
        let diags = elaborate_err(&format!("{LIST_PRELUDE}\nf :: xs: List a b -> Int"));
        assert!(diags[0].message.contains("expects 1 type argument"));
    }

    #[test]
    fn goal_without_signature_is_reported() {
        let diags = elaborate_err("mystery = ??");
        assert!(diags[0].message.contains("no signature for `mystery`"));
    }

    #[test]
    fn empty_set_against_a_measure_infers_its_element_sort() {
        let out = elaborate(&format!(
            "{LIST_PRELUDE}\nf :: <a> . xs: List a -> {{Bool | _v <==> elems xs == []}}"
        ));
        let schema = out.env.lookup("f").unwrap();
        let (_, ret) = schema.ty.uncurry();
        // [] was elaborated at Set a, matching the lhs measure.
        let mut found = false;
        ret.refinement().walk(&mut |t| {
            if let Term::SetLit(elem, elems) = t {
                assert_eq!(elem, &Sort::var("a"));
                assert!(elems.is_empty());
                found = true;
            }
        });
        assert!(found, "expected an empty set literal at Set a");
    }

    #[test]
    fn fresh_binder_names_avoid_user_binders() {
        // The unnamed second argument must not be named `arg0`, which the
        // user already used — otherwise the refinement would silently
        // rebind to the wrong argument.
        let out = elaborate("f :: arg0: Int -> Int -> {Int | _v == arg0}");
        let schema = out.env.lookup("f").unwrap();
        let (args, ret) = schema.ty.uncurry();
        assert_eq!(args[0].0, "arg0");
        assert_ne!(args[1].0, "arg0", "fresh name shadows the user's binder");
        assert_eq!(
            ret.refinement(),
            Term::value_var(Sort::Int).eq(Term::var("arg0", Sort::Int))
        );
    }

    #[test]
    fn duplicate_goal_definitions_are_rejected() {
        let diags = elaborate_err("f :: Int -> Int\nf = ??\nf = ??");
        assert!(
            diags[0]
                .message
                .contains("duplicate definition of goal `f`"),
            "unexpected message: {}",
            diags[0].message
        );
    }

    #[test]
    fn uninferable_empty_set_is_a_diagnostic() {
        let diags = elaborate_err("f :: {Bool | _v <==> [] == []}");
        assert!(diags[0].message.contains("cannot infer the element sort"));
    }
}
