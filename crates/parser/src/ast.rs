//! The surface abstract syntax of `.sq` specification files.
//!
//! The surface AST is deliberately close to the concrete syntax: operators
//! are kept surface-level (`+` is not yet resolved to integer addition
//! versus set union; that requires sorts and happens in
//! [`mod@crate::desugar`]), and every node carries its [`Span`] so the
//! desugarer can report precise diagnostics.

use crate::span::Span;

/// A surface sort (used in `measure` signatures and qualifier binders).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortAst {
    /// `Int`.
    Int,
    /// `Bool`.
    Bool,
    /// `Nat` — `Int` plus the non-negativity promise; only meaningful as a
    /// measure result sort.
    Nat,
    /// A lowercase sort/type variable.
    Var(String),
    /// `Set s`.
    Set(Box<SortAst>),
    /// A datatype sort `D s₁ … sₙ`.
    Data(String, Vec<SortAst>),
}

/// Surface unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOpAst {
    /// Integer negation `-`.
    Neg,
    /// Boolean negation `!` / `¬`.
    Not,
}

/// Surface binary operators. Arithmetic/comparison operators are
/// overloaded on sets (`+` is union, `-` difference, `*` intersection,
/// `<=` subset); the desugarer resolves the overloading from operand
/// sorts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOpAst {
    /// `+` / `∪`.
    Plus,
    /// `-` (set difference on sets).
    Minus,
    /// `*` / `∩`.
    Times,
    /// `==`.
    Eq,
    /// `!=` / `≠`.
    Neq,
    /// `<=` / `≤` (subset on sets).
    Le,
    /// `<`.
    Lt,
    /// `>=` / `≥`.
    Ge,
    /// `>`.
    Gt,
    /// `&&` / `∧`.
    And,
    /// `||` / `∨`.
    Or,
    /// `==>` / `⇒`.
    Implies,
    /// `<==>` / `⇔`.
    Iff,
    /// `in` / `∈`.
    In,
}

/// A surface refinement term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermAst {
    /// Integer literal.
    Int(i64, Span),
    /// `True` / `False`.
    Bool(bool, Span),
    /// The value variable `_v` / `ν`.
    ValueVar(Span),
    /// A program variable.
    Var(String, Span),
    /// A set literal `[e₁, …, eₙ]` (empty = `∅`).
    Set(Vec<TermAst>, Span),
    /// Application of a measure to arguments: `len xs`.
    App(String, Vec<TermAst>, Span),
    /// Unary operator application.
    Unary(UnOpAst, Box<TermAst>, Span),
    /// Binary operator application.
    Binary(BinOpAst, Box<TermAst>, Box<TermAst>, Span),
    /// `if c then t else e`.
    Ite(Box<TermAst>, Box<TermAst>, Box<TermAst>, Span),
}

impl TermAst {
    /// The source span of the term.
    pub fn span(&self) -> Span {
        match self {
            TermAst::Int(_, s)
            | TermAst::Bool(_, s)
            | TermAst::ValueVar(s)
            | TermAst::Var(_, s)
            | TermAst::Set(_, s)
            | TermAst::App(_, _, s)
            | TermAst::Unary(_, _, s)
            | TermAst::Binary(_, _, _, s)
            | TermAst::Ite(_, _, _, s) => *s,
        }
    }
}

/// A surface base type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseAst {
    /// `Int`.
    Int,
    /// `Bool`.
    Bool,
    /// `Nat` — sugar for `{Int | _v >= 0}`.
    Nat,
    /// `Pos` — sugar for `{Int | _v > 0}`.
    Pos,
    /// A lowercase type variable.
    Var(String),
    /// A datatype applied to (possibly refined) type arguments.
    Data(String, Vec<TypeAst>),
}

/// A surface refinement type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeAst {
    /// A scalar type, optionally refined: `Int`, `{Int | _v >= 0}`.
    Scalar {
        /// The base type.
        base: BaseAst,
        /// The refinement, if written.
        refinement: Option<TermAst>,
        /// Source span.
        span: Span,
    },
    /// A (dependent) function type `x: T -> T'`.
    Fun {
        /// The binder name, if written (`T -> T'` leaves it out).
        arg_name: Option<String>,
        /// Argument type.
        arg: Box<TypeAst>,
        /// Result type.
        ret: Box<TypeAst>,
        /// Source span.
        span: Span,
    },
}

impl TypeAst {
    /// The source span of the type.
    pub fn span(&self) -> Span {
        match self {
            TypeAst::Scalar { span, .. } | TypeAst::Fun { span, .. } => *span,
        }
    }
}

/// A surface type schema: an optional explicit quantifier prefix
/// `<a, b> .` followed by a type. Signatures without a prefix elaborate
/// to *monomorphic* schemas whose type variables stay free (the
/// convention the component libraries use); goal signatures normally
/// quantify explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaAst {
    /// The explicitly bound type variables, if a `<…> .` prefix was
    /// written.
    pub type_vars: Option<Vec<String>>,
    /// The body type.
    pub ty: TypeAst,
}

/// One constructor inside a `data … where` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtorAst {
    /// Constructor name.
    pub name: String,
    /// Its (curried, refined) type; the result must be the datatype.
    pub ty: TypeAst,
    /// Source span of the declaration.
    pub span: Span,
}

/// A `data D a₁ … aₙ where …` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataAst {
    /// Datatype name.
    pub name: String,
    /// Type parameter names.
    pub params: Vec<String>,
    /// Constructor declarations, in order.
    pub ctors: Vec<CtorAst>,
    /// Source span of the header.
    pub span: Span,
}

/// A `measure m :: D a → S` declaration (optionally prefixed with
/// `termination`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureAst {
    /// True if declared `termination measure`.
    pub termination: bool,
    /// Measure name.
    pub name: String,
    /// The argument sort (must be a datatype sort).
    pub arg: SortAst,
    /// The result sort (`Nat` marks the measure non-negative).
    pub result: SortAst,
    /// Source span of the declaration.
    pub span: Span,
}

/// A `qualifier [x: S, …] {q₁, …, qₙ}` declaration: each atom becomes a
/// logical qualifier with the binders abstracted into placeholder holes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualifierAst {
    /// The metavariable binders with their sorts.
    pub binders: Vec<(String, SortAst)>,
    /// The qualifier atoms.
    pub atoms: Vec<TermAst>,
    /// Source span of the declaration.
    pub span: Span,
}

/// A component or goal signature `name :: schema`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigAst {
    /// The declared name.
    pub name: String,
    /// Its schema.
    pub schema: SchemaAst,
    /// Source span of the name.
    pub span: Span,
}

/// A goal definition `name = ??`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplAst {
    /// The goal name (must have a preceding signature).
    pub name: String,
    /// Source span.
    pub span: Span,
}

/// One top-level declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeclAst {
    /// `data … where …`.
    Data(DataAst),
    /// `[termination] measure …`.
    Measure(MeasureAst),
    /// `qualifier …`.
    Qualifier(QualifierAst),
    /// `name :: schema`.
    Sig(SigAst),
    /// `name = ??`.
    Impl(ImplAst),
}

/// A parsed specification file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpecAst {
    /// Top-level declarations, in source order.
    pub decls: Vec<DeclAst>,
}
