//! The recursive-descent parser for `.sq` specification files.
//!
//! Grammar (informal):
//!
//! ```text
//! spec      ::= decl*
//! decl      ::= ["termination"] "measure" lid "::" sort "->" sort
//!             | "data" uid lid* "where" (uid "::" type)*
//!             | "qualifier" "[" (lid ":" sort),* "]" "{" term,* "}"
//!             | lid "::" schema            -- component or goal signature
//!             | lid "=" "??"               -- goal definition
//! schema    ::= ["<" lid,* ">" "."] type
//! type      ::= [lid ":"] appty ("->" type)?
//! appty     ::= "{" base "|" term "}" | base
//! base      ::= uid tyatom* | lid | "(" type ")"
//! tyatom    ::= uid | lid | "{" base "|" term "}" | "(" type ")"
//! sort      ::= "Set" sortatom | uid sortatom* | lid | "(" sort ")"
//! term      ::= precedence-climbing over
//!               <==> , ==> , || , && , (== != <= < >= > in) , (+ -) , * ,
//!               prefix (- !), application `lid atom*`
//! atom      ::= int | "True" | "False" | _v | lid | "(" term ")"
//!             | "[" term,* "]" | "if" term "then" term "else" term
//! ```
//!
//! The parser is error-tolerant at declaration granularity: a malformed
//! declaration is reported and skipped, and parsing resumes at the next
//! plausible declaration start, so a single pass can report several
//! errors.

use crate::ast::*;
use crate::lexer::{lex, SpannedTok, Tok};
use crate::span::{Diagnostic, Span};

/// Parses a `.sq` source into a surface AST, or reports all diagnostics.
pub fn parse(src: &str) -> Result<SpecAst, Vec<Diagnostic>> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        diags: Vec::new(),
    };
    let spec = p.spec();
    if p.diags.is_empty() {
        Ok(spec)
    } else {
        Err(p.diags)
    }
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    diags: Vec<Diagnostic>,
}

/// Raised internally to abort the current declaration; the parser then
/// resynchronizes at the next declaration start.
struct Abort;

type PResult<T> = Result<T, Abort>;

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        let idx = (self.pos + n).min(self.toks.len() - 1);
        &self.toks[idx].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, context: &str) -> PResult<Span> {
        if self.peek() == &tok {
            let s = self.span();
            self.bump();
            Ok(s)
        } else {
            self.error_here(format!(
                "expected {} {context}, found {}",
                tok.describe(),
                self.peek().describe()
            ));
            Err(Abort)
        }
    }

    fn error_here(&mut self, message: String) {
        let span = self.span();
        self.diags.push(Diagnostic::error(span, message));
    }

    fn lower_id(&mut self, context: &str) -> PResult<(String, Span)> {
        match self.peek().clone() {
            Tok::LowerId(name) => {
                let s = self.span();
                self.bump();
                Ok((name, s))
            }
            other => {
                self.error_here(format!(
                    "expected an identifier {context}, found {}",
                    other.describe()
                ));
                Err(Abort)
            }
        }
    }

    fn upper_id(&mut self, context: &str) -> PResult<(String, Span)> {
        match self.peek().clone() {
            Tok::UpperId(name) => {
                let s = self.span();
                self.bump();
                Ok((name, s))
            }
            other => {
                self.error_here(format!(
                    "expected a capitalized name {context}, found {}",
                    other.describe()
                ));
                Err(Abort)
            }
        }
    }

    // -----------------------------------------------------------------
    // Declarations
    // -----------------------------------------------------------------

    fn spec(&mut self) -> SpecAst {
        let mut decls = Vec::new();
        while self.peek() != &Tok::Eof {
            match self.decl() {
                Ok(d) => decls.push(d),
                Err(Abort) => self.synchronize(),
            }
        }
        SpecAst { decls }
    }

    /// Skips tokens until the next plausible declaration start.
    fn synchronize(&mut self) {
        // Always make progress.
        if self.peek() != &Tok::Eof {
            self.bump();
        }
        loop {
            match self.peek() {
                Tok::Eof | Tok::Data | Tok::Measure | Tok::Termination | Tok::Qualifier => return,
                Tok::LowerId(_) => {
                    if matches!(self.peek_at(1), Tok::DoubleColon | Tok::Assign) {
                        return;
                    }
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn decl(&mut self) -> PResult<DeclAst> {
        match self.peek().clone() {
            Tok::Termination => {
                let start = self.span();
                self.bump();
                self.expect(Tok::Measure, "after `termination`")?;
                self.measure_decl(true, start).map(DeclAst::Measure)
            }
            Tok::Measure => {
                let start = self.span();
                self.bump();
                self.measure_decl(false, start).map(DeclAst::Measure)
            }
            Tok::Data => self.data_decl().map(DeclAst::Data),
            Tok::Qualifier => self.qualifier_decl().map(DeclAst::Qualifier),
            Tok::LowerId(name) => {
                let span = self.span();
                self.bump();
                match self.peek() {
                    Tok::DoubleColon => {
                        self.bump();
                        let schema = self.schema()?;
                        Ok(DeclAst::Sig(SigAst { name, schema, span }))
                    }
                    Tok::Assign => {
                        self.bump();
                        let hole =
                            self.expect(Tok::Hole, "after `=` (only `??` bodies are supported)")?;
                        Ok(DeclAst::Impl(ImplAst {
                            name,
                            span: span.merge(hole),
                        }))
                    }
                    other => {
                        let msg = format!(
                            "expected `::` or `= ??` after `{name}`, found {}",
                            other.describe()
                        );
                        self.error_here(msg);
                        Err(Abort)
                    }
                }
            }
            other => {
                let msg = format!(
                    "expected a declaration (`data`, `measure`, `qualifier`, or a signature), found {}",
                    other.describe()
                );
                self.error_here(msg);
                Err(Abort)
            }
        }
    }

    fn measure_decl(&mut self, termination: bool, start: Span) -> PResult<MeasureAst> {
        let (name, _) = self.lower_id("as the measure name")?;
        self.expect(Tok::DoubleColon, "in the measure signature")?;
        let arg = self.sort()?;
        self.expect(
            Tok::Arrow,
            "between the measure's argument and result sorts",
        )?;
        let result = self.sort()?;
        Ok(MeasureAst {
            termination,
            name,
            arg,
            result,
            span: start.merge(self.prev_span()),
        })
    }

    fn data_decl(&mut self) -> PResult<DataAst> {
        let start = self.span();
        self.bump(); // `data`
        let (name, _) = self.upper_id("as the datatype name")?;
        let mut params = Vec::new();
        while let Tok::LowerId(p) = self.peek().clone() {
            params.push(p);
            self.bump();
        }
        self.expect(Tok::Where, "before the constructor list")?;
        let mut ctors = Vec::new();
        while let Tok::UpperId(_) = self.peek() {
            if self.peek_at(1) != &Tok::DoubleColon {
                break;
            }
            let (cname, cspan) = self.upper_id("as the constructor name")?;
            self.bump(); // `::`
            let ty = self.ty()?;
            ctors.push(CtorAst {
                name: cname,
                ty,
                span: cspan,
            });
        }
        if ctors.is_empty() {
            self.error_here(format!("datatype `{name}` declares no constructors"));
            return Err(Abort);
        }
        Ok(DataAst {
            name,
            params,
            ctors,
            span: start,
        })
    }

    fn qualifier_decl(&mut self) -> PResult<QualifierAst> {
        let start = self.span();
        self.bump(); // `qualifier`
        self.expect(Tok::LBracket, "to open the qualifier binder list")?;
        let mut binders = Vec::new();
        if self.peek() != &Tok::RBracket {
            loop {
                let (name, _) = self.lower_id("as a qualifier metavariable")?;
                self.expect(Tok::Colon, "after the qualifier metavariable")?;
                let sort = self.sort()?;
                binders.push((name, sort));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RBracket, "to close the qualifier binder list")?;
        self.expect(Tok::LBrace, "to open the qualifier atoms")?;
        let mut atoms = Vec::new();
        if self.peek() != &Tok::RBrace {
            loop {
                atoms.push(self.term()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RBrace, "to close the qualifier atoms")?;
        Ok(QualifierAst {
            binders,
            atoms,
            span: start.merge(self.prev_span()),
        })
    }

    // -----------------------------------------------------------------
    // Schemas, types, sorts
    // -----------------------------------------------------------------

    fn schema(&mut self) -> PResult<SchemaAst> {
        let type_vars = if self.peek() == &Tok::Lt {
            self.bump();
            let mut vars = Vec::new();
            loop {
                let (v, _) = self.lower_id("as a quantified type variable")?;
                vars.push(v);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::Gt, "to close the type-variable quantifier")?;
            self.expect(Tok::Dot, "after the type-variable quantifier")?;
            Some(vars)
        } else {
            None
        };
        let ty = self.ty()?;
        Ok(SchemaAst { type_vars, ty })
    }

    fn ty(&mut self) -> PResult<TypeAst> {
        let start = self.span();
        // Optional binder: `x :` (a single colon; `::` starts the next
        // declaration and is never consumed here).
        let arg_name = if matches!(self.peek(), Tok::LowerId(_)) && self.peek_at(1) == &Tok::Colon {
            let (n, _) = self.lower_id("as a binder")?;
            self.bump(); // `:`
            Some(n)
        } else {
            None
        };
        let arg = self.app_ty()?;
        if self.eat(&Tok::Arrow) {
            let ret = self.ty()?;
            let span = start.merge(ret.span());
            Ok(TypeAst::Fun {
                arg_name,
                arg: Box::new(arg),
                ret: Box::new(ret),
                span,
            })
        } else {
            if let Some(name) = arg_name {
                self.diags.push(Diagnostic::error(
                    start,
                    format!("binder `{name}` must be followed by `->`"),
                ));
                return Err(Abort);
            }
            Ok(arg)
        }
    }

    /// A type without a top-level arrow: either a refined scalar
    /// `{B | ψ}`, a base type (datatype application, type variable), or a
    /// parenthesized type.
    fn app_ty(&mut self) -> PResult<TypeAst> {
        let start = self.span();
        match self.peek().clone() {
            Tok::LBrace => {
                self.bump();
                let base = self.base_ty()?;
                self.expect(Tok::Pipe, "between the base type and its refinement")?;
                let refinement = self.term()?;
                let end = self.expect(Tok::RBrace, "to close the refined type")?;
                Ok(TypeAst::Scalar {
                    base,
                    refinement: Some(refinement),
                    span: start.merge(end),
                })
            }
            Tok::LParen => {
                self.bump();
                let inner = self.ty()?;
                self.expect(Tok::RParen, "to close the parenthesized type")?;
                Ok(inner)
            }
            _ => {
                let base = self.base_ty()?;
                Ok(TypeAst::Scalar {
                    base,
                    refinement: None,
                    span: start.merge(self.prev_span()),
                })
            }
        }
    }

    fn base_ty(&mut self) -> PResult<BaseAst> {
        match self.peek().clone() {
            Tok::UpperId(name) => {
                self.bump();
                match name.as_str() {
                    "Int" => Ok(BaseAst::Int),
                    "Bool" => Ok(BaseAst::Bool),
                    "Nat" => Ok(BaseAst::Nat),
                    "Pos" => Ok(BaseAst::Pos),
                    _ => {
                        let mut args = Vec::new();
                        while matches!(
                            self.peek(),
                            Tok::UpperId(_) | Tok::LowerId(_) | Tok::LBrace | Tok::LParen
                        ) {
                            // A lowercase id followed by `:` is the next
                            // binder, not a type argument.
                            if matches!(self.peek(), Tok::LowerId(_))
                                && self.peek_at(1) == &Tok::Colon
                            {
                                break;
                            }
                            args.push(self.ty_atom()?);
                        }
                        Ok(BaseAst::Data(name, args))
                    }
                }
            }
            Tok::LowerId(name) => {
                self.bump();
                Ok(BaseAst::Var(name))
            }
            other => {
                self.error_here(format!("expected a type, found {}", other.describe()));
                Err(Abort)
            }
        }
    }

    /// A type-argument atom: datatype arguments bind tighter than
    /// application, so `List List a` is ill-formed but `List (List a)`
    /// and `List {a | _v < x}` work.
    fn ty_atom(&mut self) -> PResult<TypeAst> {
        let start = self.span();
        match self.peek().clone() {
            Tok::UpperId(name) => {
                self.bump();
                let base = match name.as_str() {
                    "Int" => BaseAst::Int,
                    "Bool" => BaseAst::Bool,
                    "Nat" => BaseAst::Nat,
                    "Pos" => BaseAst::Pos,
                    _ => BaseAst::Data(name, Vec::new()),
                };
                Ok(TypeAst::Scalar {
                    base,
                    refinement: None,
                    span: start,
                })
            }
            Tok::LowerId(name) => {
                self.bump();
                Ok(TypeAst::Scalar {
                    base: BaseAst::Var(name),
                    refinement: None,
                    span: start,
                })
            }
            Tok::LBrace | Tok::LParen => self.app_ty(),
            other => {
                self.error_here(format!(
                    "expected a type argument, found {}",
                    other.describe()
                ));
                Err(Abort)
            }
        }
    }

    fn sort(&mut self) -> PResult<SortAst> {
        match self.peek().clone() {
            Tok::UpperId(name) => {
                self.bump();
                match name.as_str() {
                    "Int" => Ok(SortAst::Int),
                    "Bool" => Ok(SortAst::Bool),
                    "Nat" => Ok(SortAst::Nat),
                    "Set" => {
                        let elem = self.sort_atom()?;
                        Ok(SortAst::Set(Box::new(elem)))
                    }
                    _ => {
                        let mut args = Vec::new();
                        while matches!(self.peek(), Tok::UpperId(_) | Tok::LowerId(_) | Tok::LParen)
                        {
                            args.push(self.sort_atom()?);
                        }
                        Ok(SortAst::Data(name, args))
                    }
                }
            }
            Tok::LowerId(name) => {
                self.bump();
                Ok(SortAst::Var(name))
            }
            Tok::LParen => {
                self.bump();
                let s = self.sort()?;
                self.expect(Tok::RParen, "to close the parenthesized sort")?;
                Ok(s)
            }
            other => {
                self.error_here(format!("expected a sort, found {}", other.describe()));
                Err(Abort)
            }
        }
    }

    fn sort_atom(&mut self) -> PResult<SortAst> {
        match self.peek().clone() {
            Tok::UpperId(name) => {
                self.bump();
                match name.as_str() {
                    "Int" => Ok(SortAst::Int),
                    "Bool" => Ok(SortAst::Bool),
                    "Nat" => Ok(SortAst::Nat),
                    _ => Ok(SortAst::Data(name, Vec::new())),
                }
            }
            Tok::LowerId(name) => {
                self.bump();
                Ok(SortAst::Var(name))
            }
            Tok::LParen => {
                self.bump();
                let s = self.sort()?;
                self.expect(Tok::RParen, "to close the parenthesized sort")?;
                Ok(s)
            }
            other => {
                self.error_here(format!(
                    "expected a sort argument, found {}",
                    other.describe()
                ));
                Err(Abort)
            }
        }
    }

    // -----------------------------------------------------------------
    // Terms
    // -----------------------------------------------------------------

    fn term(&mut self) -> PResult<TermAst> {
        self.iff_term()
    }

    fn iff_term(&mut self) -> PResult<TermAst> {
        let mut lhs = self.implies_term()?;
        while self.peek() == &Tok::Iff {
            self.bump();
            let rhs = self.implies_term()?;
            let span = lhs.span().merge(rhs.span());
            lhs = TermAst::Binary(BinOpAst::Iff, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn implies_term(&mut self) -> PResult<TermAst> {
        let lhs = self.or_term()?;
        if self.peek() == &Tok::Implies {
            self.bump();
            // Right-associative.
            let rhs = self.implies_term()?;
            let span = lhs.span().merge(rhs.span());
            Ok(TermAst::Binary(
                BinOpAst::Implies,
                Box::new(lhs),
                Box::new(rhs),
                span,
            ))
        } else {
            Ok(lhs)
        }
    }

    fn or_term(&mut self) -> PResult<TermAst> {
        let mut lhs = self.and_term()?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            let rhs = self.and_term()?;
            let span = lhs.span().merge(rhs.span());
            lhs = TermAst::Binary(BinOpAst::Or, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn and_term(&mut self) -> PResult<TermAst> {
        let mut lhs = self.cmp_term()?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            let rhs = self.cmp_term()?;
            let span = lhs.span().merge(rhs.span());
            lhs = TermAst::Binary(BinOpAst::And, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn cmp_term(&mut self) -> PResult<TermAst> {
        let lhs = self.add_term()?;
        let op = match self.peek() {
            Tok::EqEq => Some(BinOpAst::Eq),
            Tok::Neq => Some(BinOpAst::Neq),
            Tok::Le => Some(BinOpAst::Le),
            Tok::Lt => Some(BinOpAst::Lt),
            Tok::Ge => Some(BinOpAst::Ge),
            Tok::Gt => Some(BinOpAst::Gt),
            Tok::In => Some(BinOpAst::In),
            _ => None,
        };
        match op {
            None => Ok(lhs),
            Some(op) => {
                self.bump();
                let rhs = self.add_term()?;
                let span = lhs.span().merge(rhs.span());
                Ok(TermAst::Binary(op, Box::new(lhs), Box::new(rhs), span))
            }
        }
    }

    fn add_term(&mut self) -> PResult<TermAst> {
        let mut lhs = self.mul_term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOpAst::Plus,
                Tok::Minus => BinOpAst::Minus,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_term()?;
            let span = lhs.span().merge(rhs.span());
            lhs = TermAst::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn mul_term(&mut self) -> PResult<TermAst> {
        let mut lhs = self.unary_term()?;
        while self.peek() == &Tok::Star {
            self.bump();
            let rhs = self.unary_term()?;
            let span = lhs.span().merge(rhs.span());
            lhs = TermAst::Binary(BinOpAst::Times, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn unary_term(&mut self) -> PResult<TermAst> {
        let start = self.span();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let inner = self.unary_term()?;
                let span = start.merge(inner.span());
                Ok(TermAst::Unary(UnOpAst::Neg, Box::new(inner), span))
            }
            Tok::Bang => {
                self.bump();
                let inner = self.unary_term()?;
                let span = start.merge(inner.span());
                Ok(TermAst::Unary(UnOpAst::Not, Box::new(inner), span))
            }
            _ => self.app_term(),
        }
    }

    fn app_term(&mut self) -> PResult<TermAst> {
        // Measure application: a lowercase head followed by atoms.
        if let Tok::LowerId(head) = self.peek().clone() {
            // `x :` would be a binder inside a type; terms never contain
            // colons, so no lookahead is needed beyond the atom check.
            let head_span = self.span();
            self.bump();
            let mut args = Vec::new();
            while self.starts_atom() {
                args.push(self.atom_term()?);
            }
            if args.is_empty() {
                return Ok(TermAst::Var(head, head_span));
            }
            let span = head_span.merge(args.last().unwrap().span());
            return Ok(TermAst::App(head, args, span));
        }
        self.atom_term()
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Tok::IntLit(_)
                | Tok::LowerId(_)
                | Tok::ValueVar
                | Tok::LParen
                | Tok::LBracket
                | Tok::EmptySet
        ) || matches!(self.peek(), Tok::UpperId(n) if n == "True" || n == "False")
    }

    fn atom_term(&mut self) -> PResult<TermAst> {
        let start = self.span();
        match self.peek().clone() {
            Tok::IntLit(n) => {
                self.bump();
                Ok(TermAst::Int(n, start))
            }
            Tok::ValueVar => {
                self.bump();
                Ok(TermAst::ValueVar(start))
            }
            Tok::LowerId(name) => {
                self.bump();
                Ok(TermAst::Var(name, start))
            }
            Tok::UpperId(name) if name == "True" => {
                self.bump();
                Ok(TermAst::Bool(true, start))
            }
            Tok::UpperId(name) if name == "False" => {
                self.bump();
                Ok(TermAst::Bool(false, start))
            }
            Tok::UpperId(name) => {
                self.error_here(format!(
                    "constructor `{name}` cannot appear in a refinement (datatype values are only observable through measures)"
                ));
                Err(Abort)
            }
            Tok::LParen => {
                self.bump();
                let inner = self.term()?;
                self.expect(Tok::RParen, "to close the parenthesized term")?;
                Ok(inner)
            }
            Tok::EmptySet => {
                self.bump();
                Ok(TermAst::Set(Vec::new(), start))
            }
            Tok::LBracket => {
                self.bump();
                let mut elems = Vec::new();
                if self.peek() != &Tok::RBracket {
                    loop {
                        elems.push(self.term()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                let end = self.expect(Tok::RBracket, "to close the set literal")?;
                Ok(TermAst::Set(elems, start.merge(end)))
            }
            Tok::If => {
                self.bump();
                let cond = self.term()?;
                self.expect(Tok::Then, "in the conditional term")?;
                let then = self.term()?;
                self.expect(Tok::Else, "in the conditional term")?;
                let els = self.term()?;
                let span = start.merge(els.span());
                Ok(TermAst::Ite(
                    Box::new(cond),
                    Box::new(then),
                    Box::new(els),
                    span,
                ))
            }
            other => {
                self.error_here(format!("expected a term, found {}", other.describe()));
                Err(Abort)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> SpecAst {
        match parse(src) {
            Ok(s) => s,
            Err(diags) => panic!("parse failed: {diags:?}"),
        }
    }

    #[test]
    fn parses_a_component_signature() {
        let spec = parse_ok("inc :: x: Int -> {Int | _v == x + 1}");
        assert_eq!(spec.decls.len(), 1);
        let DeclAst::Sig(sig) = &spec.decls[0] else {
            panic!("expected a signature");
        };
        assert_eq!(sig.name, "inc");
        assert!(sig.schema.type_vars.is_none());
        let TypeAst::Fun { arg_name, .. } = &sig.schema.ty else {
            panic!("expected a function type");
        };
        assert_eq!(arg_name.as_deref(), Some("x"));
    }

    #[test]
    fn parses_an_explicitly_quantified_goal() {
        let spec = parse_ok("id :: <a> . x: a -> {a | _v == x}\nid = ??");
        assert_eq!(spec.decls.len(), 2);
        let DeclAst::Sig(sig) = &spec.decls[0] else {
            panic!("expected a signature");
        };
        assert_eq!(
            sig.schema.type_vars.as_deref(),
            Some(&["a".to_string()][..])
        );
        assert!(matches!(&spec.decls[1], DeclAst::Impl(i) if i.name == "id"));
    }

    #[test]
    fn parses_a_datatype_with_refined_constructors() {
        let spec = parse_ok(
            "data List b where\n  Nil :: {List b | len _v == 0}\n  Cons :: x: b -> xs: List b -> {List b | len _v == len xs + 1}",
        );
        let DeclAst::Data(data) = &spec.decls[0] else {
            panic!("expected a data declaration");
        };
        assert_eq!(data.name, "List");
        assert_eq!(data.params, vec!["b".to_string()]);
        assert_eq!(data.ctors.len(), 2);
        assert_eq!(data.ctors[0].name, "Nil");
        assert_eq!(data.ctors[1].name, "Cons");
    }

    #[test]
    fn parses_measures_and_termination_measures() {
        let spec =
            parse_ok("termination measure len :: List b -> Int\nmeasure elems :: List b -> Set b");
        let DeclAst::Measure(len) = &spec.decls[0] else {
            panic!("expected a measure");
        };
        assert!(len.termination);
        assert_eq!(
            len.arg,
            SortAst::Data("List".into(), vec![SortAst::Var("b".into())])
        );
        let DeclAst::Measure(elems) = &spec.decls[1] else {
            panic!("expected a measure");
        };
        assert!(!elems.termination);
        assert_eq!(
            elems.result,
            SortAst::Set(Box::new(SortAst::Var("b".into())))
        );
    }

    #[test]
    fn parses_qualifiers_with_typed_binders() {
        let spec = parse_ok("qualifier [x: Int, y: Int] {x <= y, x != y, x < y}");
        let DeclAst::Qualifier(q) = &spec.decls[0] else {
            panic!("expected a qualifier declaration");
        };
        assert_eq!(q.binders.len(), 2);
        assert_eq!(q.atoms.len(), 3);
    }

    #[test]
    fn operator_precedence_groups_comparisons_under_connectives() {
        let spec = parse_ok("q :: {Bool | _v <==> x <= y && y != z}");
        let DeclAst::Sig(sig) = &spec.decls[0] else {
            panic!()
        };
        let TypeAst::Scalar {
            refinement: Some(r),
            ..
        } = &sig.schema.ty
        else {
            panic!("expected a refined scalar")
        };
        // iff(_v, and(le(x,y), neq(y,z)))
        let TermAst::Binary(BinOpAst::Iff, _, rhs, _) = r else {
            panic!("expected <==> at the top, got {r:?}")
        };
        assert!(matches!(**rhs, TermAst::Binary(BinOpAst::And, _, _, _)));
    }

    #[test]
    fn refined_datatype_arguments_parse() {
        let spec = parse_ok("x :: t: BST {a | _v < y} -> Int");
        let DeclAst::Sig(sig) = &spec.decls[0] else {
            panic!()
        };
        let TypeAst::Fun { arg, .. } = &sig.schema.ty else {
            panic!()
        };
        let TypeAst::Scalar {
            base: BaseAst::Data(name, args),
            ..
        } = &**arg
        else {
            panic!("expected a datatype argument")
        };
        assert_eq!(name, "BST");
        assert!(matches!(
            &args[0],
            TypeAst::Scalar {
                refinement: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn reports_multiple_errors_with_recovery() {
        let err = parse("foo ?? bar\nbaz :: Int\nqux = 5").unwrap_err();
        assert!(err.len() >= 2, "expected at least two diagnostics: {err:?}");
    }

    #[test]
    fn bodies_other_than_holes_are_rejected() {
        let err = parse("f :: Int\nf = 5").unwrap_err();
        assert!(err[0].message.contains("??"));
    }
}
