//! The hand-written lexer for the `.sq` surface language.
//!
//! Tokens cover the Synquid-style declaration syntax (`data`, `measure`,
//! `termination`, `qualifier`, `where`), refinement-term operators in both
//! their ASCII and Unicode spellings (`<=`/`≤`, `!=`/`≠`, `in`/`∈`,
//! `+`/`∪`, `&&`/`∧`, `==>`/`⇒`, `<==>`/`⇔`), the value variable
//! `_v`/`ν`, and the synthesis hole `??`.

use crate::span::{Diagnostic, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Lowercase identifier (variables, type variables, measure names).
    LowerId(String),
    /// Uppercase identifier (datatype names, constructors, `Int`, …).
    UpperId(String),
    /// Integer literal.
    IntLit(i64),
    /// The value variable `_v` / `ν`.
    ValueVar,
    /// `data` keyword.
    Data,
    /// `where` keyword.
    Where,
    /// `measure` keyword.
    Measure,
    /// `termination` keyword.
    Termination,
    /// `qualifier` keyword.
    Qualifier,
    /// `if` keyword.
    If,
    /// `then` keyword.
    Then,
    /// `else` keyword.
    Else,
    /// `in` keyword / set-membership operator (`∈`).
    In,
    /// `::`
    DoubleColon,
    /// `:`
    Colon,
    /// `->` / `→`
    Arrow,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `|`
    Pipe,
    /// `=` (definition)
    Assign,
    /// `==`
    EqEq,
    /// `!=` / `≠`
    Neq,
    /// `<=` / `≤` (less-or-equal; also subset on set operands)
    Le,
    /// `<`
    Lt,
    /// `>=` / `≥`
    Ge,
    /// `>`
    Gt,
    /// `+` / `∪` (addition; union on set operands)
    Plus,
    /// `-` (subtraction; difference on set operands)
    Minus,
    /// `*` / `∩` (multiplication; intersection on set operands)
    Star,
    /// `&&` / `∧`
    AndAnd,
    /// `||` / `∨`
    OrOr,
    /// `==>` / `⇒`
    Implies,
    /// `<==>` / `⇔`
    Iff,
    /// `!` / `¬`
    Bang,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `∅` — the empty-set literal (sugar for `[]`).
    EmptySet,
    /// `??` — the synthesis hole.
    Hole,
    /// End of input.
    Eof,
}

impl Tok {
    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            Tok::LowerId(s) | Tok::UpperId(s) => format!("`{s}`"),
            Tok::IntLit(n) => format!("`{n}`"),
            Tok::ValueVar => "`_v`".into(),
            Tok::Data => "`data`".into(),
            Tok::Where => "`where`".into(),
            Tok::Measure => "`measure`".into(),
            Tok::Termination => "`termination`".into(),
            Tok::Qualifier => "`qualifier`".into(),
            Tok::If => "`if`".into(),
            Tok::Then => "`then`".into(),
            Tok::Else => "`else`".into(),
            Tok::In => "`in`".into(),
            Tok::DoubleColon => "`::`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Arrow => "`->`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Pipe => "`|`".into(),
            Tok::Assign => "`=`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::Neq => "`!=`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Star => "`*`".into(),
            Tok::AndAnd => "`&&`".into(),
            Tok::OrOr => "`||`".into(),
            Tok::Implies => "`==>`".into(),
            Tok::Iff => "`<==>`".into(),
            Tok::Bang => "`!`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::EmptySet => "`[]`".into(),
            Tok::Hole => "`??`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Its source location.
    pub span: Span,
}

/// Lexes a full `.sq` source into tokens (always ending with [`Tok::Eof`]).
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, Vec<Diagnostic>> {
    let mut out = Vec::new();
    let mut diags = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;

    let push = |tok: Tok, start: usize, end: usize, out: &mut Vec<SpannedTok>| {
        out.push(SpannedTok {
            tok,
            span: Span::new(start, end),
        });
    };

    while i < src.len() {
        let rest = &src[i..];
        let c = rest.chars().next().unwrap();
        let cl = c.len_utf8();

        // Whitespace.
        if c.is_whitespace() {
            i += cl;
            continue;
        }
        // Line comments: `--` to end of line.
        if rest.starts_with("--") {
            i += rest.find('\n').unwrap_or(rest.len());
            continue;
        }
        // Block comments: `{-` … `-}` (non-nesting). `{-` opens a comment
        // only when followed by whitespace, another `-`, or end of input,
        // so `{-x <= 0}` still lexes as `{`, `-`, `x`, … (a refined type
        // or qualifier set whose first term starts with unary minus).
        if rest.starts_with("{-")
            && rest[2..]
                .chars()
                .next()
                .is_none_or(|c| c.is_whitespace() || c == '-')
        {
            match rest.find("-}") {
                Some(end) => {
                    i += end + 2;
                    continue;
                }
                None => {
                    diags.push(Diagnostic::error(
                        Span::new(i, src.len()),
                        "unterminated block comment (expected a closing `-}`)",
                    ));
                    break;
                }
            }
        }

        // Multi-character operators, longest first.
        const MULTI: &[(&str, Tok)] = &[
            ("<==>", Tok::Iff),
            ("==>", Tok::Implies),
            ("::", Tok::DoubleColon),
            ("->", Tok::Arrow),
            ("==", Tok::EqEq),
            ("!=", Tok::Neq),
            ("<=", Tok::Le),
            (">=", Tok::Ge),
            ("&&", Tok::AndAnd),
            ("||", Tok::OrOr),
            ("??", Tok::Hole),
        ];
        if let Some((text, tok)) = MULTI.iter().find(|(text, _)| rest.starts_with(text)) {
            push(tok.clone(), i, i + text.len(), &mut out);
            i += text.len();
            continue;
        }

        // Unicode aliases.
        let unicode = match c {
            '→' => Some(Tok::Arrow),
            'ν' => Some(Tok::ValueVar),
            '∧' => Some(Tok::AndAnd),
            '∨' => Some(Tok::OrOr),
            '¬' => Some(Tok::Bang),
            '≤' => Some(Tok::Le),
            '≥' => Some(Tok::Ge),
            '≠' => Some(Tok::Neq),
            '∈' => Some(Tok::In),
            '∪' => Some(Tok::Plus),
            '∩' => Some(Tok::Star),
            '⇒' | '⟹' => Some(Tok::Implies),
            '⇔' | '⟺' => Some(Tok::Iff),
            '∅' => Some(Tok::EmptySet),
            _ => None,
        };
        if let Some(tok) = unicode {
            push(tok, i, i + cl, &mut out);
            i += cl;
            continue;
        }

        // Single-character punctuation.
        let single = match c {
            ':' => Some(Tok::Colon),
            '.' => Some(Tok::Dot),
            ',' => Some(Tok::Comma),
            '|' => Some(Tok::Pipe),
            '=' => Some(Tok::Assign),
            '<' => Some(Tok::Lt),
            '>' => Some(Tok::Gt),
            '+' => Some(Tok::Plus),
            '-' => Some(Tok::Minus),
            '*' => Some(Tok::Star),
            '!' => Some(Tok::Bang),
            '(' => Some(Tok::LParen),
            ')' => Some(Tok::RParen),
            '{' => Some(Tok::LBrace),
            '}' => Some(Tok::RBrace),
            '[' => Some(Tok::LBracket),
            ']' => Some(Tok::RBracket),
            _ => None,
        };
        if let Some(tok) = single {
            push(tok, i, i + 1, &mut out);
            i += 1;
            continue;
        }

        // Integer literals.
        if c.is_ascii_digit() {
            let mut j = i;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            match src[i..j].parse::<i64>() {
                Ok(n) => push(Tok::IntLit(n), i, j, &mut out),
                Err(_) => diags.push(Diagnostic::error(
                    Span::new(i, j),
                    format!("integer literal `{}` is out of range", &src[i..j]),
                )),
            }
            i = j;
            continue;
        }

        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let mut j = i;
            for ch in rest.chars() {
                if ch.is_alphanumeric() || ch == '_' || ch == '\'' {
                    j += ch.len_utf8();
                } else {
                    break;
                }
            }
            let word = &src[i..j];
            let tok = match word {
                "_v" => Tok::ValueVar,
                "data" => Tok::Data,
                "where" => Tok::Where,
                "measure" => Tok::Measure,
                "termination" => Tok::Termination,
                "qualifier" => Tok::Qualifier,
                "if" => Tok::If,
                "then" => Tok::Then,
                "else" => Tok::Else,
                "in" => Tok::In,
                _ => {
                    if word.chars().next().unwrap().is_uppercase() {
                        Tok::UpperId(word.to_string())
                    } else {
                        Tok::LowerId(word.to_string())
                    }
                }
            };
            push(tok, i, j, &mut out);
            i = j;
            continue;
        }

        diags.push(Diagnostic::error(
            Span::new(i, i + cl),
            format!("unexpected character `{c}`"),
        ));
        i += cl;
    }

    out.push(SpannedTok {
        tok: Tok::Eof,
        span: Span::point(src.len()),
    });
    if diags.is_empty() {
        Ok(out)
    } else {
        Err(diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn comparison_operators_ascii_and_unicode() {
        assert_eq!(
            toks("<= ≤ != ≠ >= ≥ < >"),
            vec![
                Tok::Le,
                Tok::Le,
                Tok::Neq,
                Tok::Neq,
                Tok::Ge,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn membership_and_union_operators() {
        // `in` and `∈` lex identically, as do `+` and `∪`.
        assert_eq!(toks("x in s"), toks("x ∈ s"));
        assert_eq!(toks("a + b"), toks("a ∪ b"));
        assert_eq!(toks("a * b"), toks("a ∩ b"));
        assert_eq!(
            toks("x in s + t"),
            vec![
                Tok::LowerId("x".into()),
                Tok::In,
                Tok::LowerId("s".into()),
                Tok::Plus,
                Tok::LowerId("t".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn longest_match_for_arrows_and_connectives() {
        assert_eq!(
            toks("<==> ==> == = -> - :: :"),
            vec![
                Tok::Iff,
                Tok::Implies,
                Tok::EqEq,
                Tok::Assign,
                Tok::Arrow,
                Tok::Minus,
                Tok::DoubleColon,
                Tok::Colon,
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("&& ∧ || ∨"),
            vec![Tok::AndAnd, Tok::AndAnd, Tok::OrOr, Tok::OrOr, Tok::Eof]
        );
    }

    #[test]
    fn value_variable_spellings() {
        assert_eq!(toks("_v"), vec![Tok::ValueVar, Tok::Eof]);
        assert_eq!(toks("ν"), vec![Tok::ValueVar, Tok::Eof]);
        // `_value` is an ordinary identifier, not the value variable.
        assert_eq!(
            toks("_value"),
            vec![Tok::LowerId("_value".into()), Tok::Eof]
        );
    }

    #[test]
    fn keywords_versus_identifiers() {
        assert_eq!(
            toks("data where measure termination qualifier in datax"),
            vec![
                Tok::Data,
                Tok::Where,
                Tok::Measure,
                Tok::Termination,
                Tok::Qualifier,
                Tok::In,
                Tok::LowerId("datax".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn holes_and_comments() {
        assert_eq!(
            toks("f = ?? -- trailing comment\n{- block\ncomment -} g"),
            vec![
                Tok::LowerId("f".into()),
                Tok::Assign,
                Tok::Hole,
                Tok::LowerId("g".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn brace_minus_is_not_a_comment_when_a_term_follows() {
        // `{-x <= 0}` is a qualifier/refinement whose first term starts
        // with unary minus, not a block comment.
        assert_eq!(
            toks("{-x <= 0}"),
            vec![
                Tok::LBrace,
                Tok::Minus,
                Tok::LowerId("x".into()),
                Tok::Le,
                Tok::IntLit(0),
                Tok::RBrace,
                Tok::Eof
            ]
        );
        // Conventional block comments (space or `-` after `{-`) still work.
        assert_eq!(
            toks("{- comment -} x"),
            vec![Tok::LowerId("x".into()), Tok::Eof]
        );
        assert_eq!(
            toks("{-- banner --} x"),
            vec![Tok::LowerId("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn spans_cover_tokens_exactly() {
        let lexed = lex("ab <= 12").unwrap();
        assert_eq!(lexed[0].span, Span::new(0, 2));
        assert_eq!(lexed[1].span, Span::new(3, 5));
        assert_eq!(lexed[2].span, Span::new(6, 8));
    }

    #[test]
    fn unexpected_characters_are_reported_with_spans() {
        let err = lex("x # y").unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].message.contains('#'));
        assert_eq!(err[0].span, Span::new(2, 3));
    }
}
