//! # synquid-parser
//!
//! The surface-language frontend of the Synquid reproduction: a
//! hand-written lexer and recursive-descent parser for Synquid-style
//! `.sq` specification files, plus a resolver/desugarer that elaborates
//! the surface syntax into the semantic objects of the rest of the
//! system (`synquid_logic::{Sort, Term, Qualifier}`,
//! `synquid_types::{RType, Schema, Environment, Datatype}`, and
//! `synquid_core::Goal`).
//!
//! A `.sq` file contains, in any order that respects use-before-`data`
//! for measures:
//!
//! * **qualifier sets** — `qualifier [x: Int, y: Int] {x <= y, x != y}`;
//! * **measure declarations** — `measure elems :: List b -> Set b`, with
//!   `termination measure len :: List b -> Int` marking the measure used
//!   by the termination check (and implying non-negativity, as does a
//!   `Nat` result sort);
//! * **datatype declarations** — `data List b where` followed by refined
//!   constructor signatures;
//! * **component signatures** — `inc :: x: Int -> {Int | _v == x + 1}`
//!   (monomorphic; type variables stay free, matching the component
//!   libraries), or explicitly quantified `snoc :: <a> . …`;
//! * **goals** — a signature followed by `name = ??`.
//!
//! Refinement terms support the full operator set of the paper in both
//! ASCII and Unicode spellings (`<=`/`≤`, `!=`/`≠`, `in`/`∈`, `&&`/`∧`,
//! `==>`/`⇒`, `<==>`/`⇔`, `_v`/`ν`), with `+`, `-`, `*`, and `<=`
//! overloaded on set-sorted operands as union, difference, intersection,
//! and subset — resolved during sort-directed desugaring.
//!
//! ## Example
//!
//! ```
//! let src = r#"
//!     termination measure len :: List b -> Int
//!     measure elems :: List b -> Set b
//!     data List b where
//!       Nil  :: {List b | len _v == 0 && elems _v == []}
//!       Cons :: x: b -> xs: List b ->
//!               {List b | len _v == len xs + 1 && elems _v == elems xs + [x]}
//!
//!     length :: <a> . xs: List a -> {Int | _v == len xs}
//!     length = ??
//! "#;
//! let spec = synquid_parser::load_str(src).expect("valid spec");
//! assert_eq!(spec.goals.len(), 1);
//! assert_eq!(spec.goals[0].name, "length");
//! ```

pub mod ast;
pub mod desugar;
pub mod lexer;
pub mod parser;
pub mod span;

pub use ast::SpecAst;
pub use desugar::{desugar, SpecOutput};
pub use parser::parse;
pub use span::{render_diagnostics, Diagnostic, Severity, Span};

/// An error from loading a spec: the diagnostics plus the source they
/// refer to, so the error can render itself.
#[derive(Debug, Clone)]
pub struct SpecError {
    /// The file name used in rendered diagnostics.
    pub file: String,
    /// The source text.
    pub src: String,
    /// What went wrong.
    pub diagnostics: Vec<Diagnostic>,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}",
            render_diagnostics(&self.file, &self.src, &self.diagnostics)
        )
    }
}

impl std::error::Error for SpecError {}

/// Parses and elaborates a `.sq` source string.
pub fn load_str(src: &str) -> Result<SpecOutput, SpecError> {
    load_named_str("<string>", src)
}

/// Parses and elaborates a `.sq` source string, naming the source for
/// diagnostics.
pub fn load_named_str(file: &str, src: &str) -> Result<SpecOutput, SpecError> {
    let spec = {
        let _span = synquid_telemetry::span(synquid_telemetry::Phase::Parse);
        parse(src)
    }
    .map_err(|diagnostics| SpecError {
        file: file.to_string(),
        src: src.to_string(),
        diagnostics,
    })?;
    {
        let _span = synquid_telemetry::span(synquid_telemetry::Phase::Desugar);
        desugar(&spec)
    }
    .map_err(|diagnostics| SpecError {
        file: file.to_string(),
        src: src.to_string(),
        diagnostics,
    })
}

/// Loads and elaborates a `.sq` file from disk.
pub fn load_file(
    path: impl AsRef<std::path::Path>,
) -> Result<SpecOutput, Box<dyn std::error::Error>> {
    let path = path.as_ref();
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    load_named_str(&path.display().to_string(), &src)
        .map_err(|e| Box::new(e) as Box<dyn std::error::Error>)
}
