//! Source locations and human-readable diagnostics.
//!
//! Every token and surface-AST node carries a byte-offset [`Span`] into the
//! original `.sq` source. Errors from the lexer, the parser, and the
//! desugarer are reported as [`Diagnostic`]s; [`render_diagnostics`] turns
//! them into the familiar `file:line:col` + source-excerpt + caret format.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// A zero-width span at a byte offset.
    pub fn point(at: usize) -> Span {
        Span { start: at, end: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A 1-based line/column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in characters, not bytes).
    pub col: usize,
}

/// Computes the line/column of a byte offset in `src`.
pub fn line_col(src: &str, offset: usize) -> LineCol {
    let offset = offset.min(src.len());
    let before = &src[..offset];
    let line = before.bytes().filter(|b| *b == b'\n').count() + 1;
    let line_start = before.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let col = src[line_start..offset].chars().count() + 1;
    LineCol { line, col }
}

/// Severity of a diagnostic. Everything the frontend reports today is an
/// error; the level exists so later passes can add warnings without
/// changing the rendering pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A hard error: the spec cannot be elaborated.
    Error,
    /// A warning: the spec is usable but suspicious.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One source-located message from the frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity level.
    pub severity: Severity,
    /// Where in the source the problem is.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            span,
            message: message.into(),
        }
    }
}

/// Renders diagnostics against their source text, one block per
/// diagnostic:
///
/// ```text
/// error: unbound variable `m`
///   --> spec.sq:3:25
///    |
///  3 | inc :: x: Int -> {Int | _v == m + 1}
///    |                               ^
/// ```
pub fn render_diagnostics(file: &str, src: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let lc = line_col(src, d.span.start);
        out.push_str(&format!("{}: {}\n", d.severity, d.message));
        out.push_str(&format!("  --> {}:{}:{}\n", file, lc.line, lc.col));
        let line_start = src[..d.span.start.min(src.len())]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        let line_end = src[line_start..]
            .find('\n')
            .map(|i| line_start + i)
            .unwrap_or(src.len());
        let line_text = &src[line_start..line_end];
        let gutter = lc.line.to_string();
        let pad = " ".repeat(gutter.len());
        out.push_str(&format!(" {pad} |\n"));
        out.push_str(&format!(" {gutter} | {line_text}\n"));
        let caret_col = src[line_start..d.span.start.min(src.len())].chars().count();
        // Clamp the caret row to the excerpted line: a span that continues
        // onto later lines is marked only up to the end of its first line.
        let span_end_on_line = d.span.end.min(line_end).min(src.len());
        let width = if span_end_on_line > d.span.start {
            src[d.span.start.min(src.len())..span_end_on_line]
                .chars()
                .count()
                .max(1)
        } else {
            1
        };
        out.push_str(&format!(
            " {pad} | {}{}\n",
            " ".repeat(caret_col),
            "^".repeat(width)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_is_one_based() {
        let src = "abc\ndef\n";
        assert_eq!(line_col(src, 0), LineCol { line: 1, col: 1 });
        assert_eq!(line_col(src, 2), LineCol { line: 1, col: 3 });
        assert_eq!(line_col(src, 4), LineCol { line: 2, col: 1 });
        assert_eq!(line_col(src, 6), LineCol { line: 2, col: 3 });
    }

    #[test]
    fn line_col_counts_chars_not_bytes() {
        let src = "νx = 1";
        // ν is two bytes; the x starts at byte 2 but is column 2.
        assert_eq!(line_col(src, 2), LineCol { line: 1, col: 2 });
    }

    #[test]
    fn render_points_at_the_offending_token() {
        let src = "foo :: Int\nbar = ??\n";
        let d = Diagnostic::error(Span::new(11, 14), "no signature for `bar`");
        let rendered = render_diagnostics("test.sq", src, &[d]);
        assert!(rendered.contains("error: no signature for `bar`"));
        assert!(rendered.contains("test.sq:2:1"));
        assert!(rendered.contains("bar = ??"));
        assert!(rendered.contains("^^^"));
    }

    #[test]
    fn caret_width_is_clamped_to_the_excerpted_line() {
        let src = "short line\nmuch longer second line of the span\n";
        // Span covers from column 7 of line 1 to deep into line 2.
        let d = Diagnostic::error(Span::new(6, 40), "spans two lines");
        let rendered = render_diagnostics("t.sq", src, &[d]);
        assert!(rendered.contains("short line"));
        // Only the remainder of line 1 is caret-marked: "line" = 4 chars.
        assert!(rendered.contains("       ^^^^\n"), "got:\n{rendered}");
        assert!(!rendered.contains("^^^^^"), "caret overflowed:\n{rendered}");
    }

    #[test]
    fn spans_merge_to_cover_both() {
        assert_eq!(Span::new(3, 5).merge(Span::new(9, 12)), Span::new(3, 12));
    }
}
