//! Golden-file tests for frontend diagnostics: each `tests/golden/*.sq`
//! input has a `*.stderr` snapshot of the rendered diagnostics. Run with
//! `UPDATE_GOLDEN=1 cargo test -p synquid-parser --test diagnostics` to
//! regenerate the snapshots after intentionally changing a message.

use std::path::PathBuf;
use synquid_parser::{load_named_str, render_diagnostics};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn rendered_diagnostics(name: &str, src: &str) -> String {
    match load_named_str(name, src) {
        Ok(_) => panic!("{name}: expected diagnostics, but the spec loaded cleanly"),
        Err(e) => render_diagnostics(&e.file, &e.src, &e.diagnostics),
    }
}

#[test]
fn golden_diagnostics_are_stable() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok();
    let mut cases = 0usize;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(golden_dir())
        .expect("golden dir exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "sq"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no golden inputs found");
    for input in entries {
        cases += 1;
        let name = format!("golden/{}", input.file_name().unwrap().to_string_lossy());
        let src = std::fs::read_to_string(&input).unwrap();
        let actual = rendered_diagnostics(&name, &src);
        let snapshot = input.with_extension("stderr");
        if update {
            std::fs::write(&snapshot, &actual).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&snapshot).unwrap_or_else(|_| {
            panic!(
                "missing snapshot {}; run with UPDATE_GOLDEN=1 to create it",
                snapshot.display()
            )
        });
        assert_eq!(
            actual,
            expected,
            "diagnostics for {} changed; run with UPDATE_GOLDEN=1 to accept",
            input.display()
        );
    }
    assert!(
        cases >= 4,
        "expected at least four golden cases, got {cases}"
    );
}

#[test]
fn every_diagnostic_names_the_file_line_and_column() {
    let rendered = rendered_diagnostics("probe.sq", "inc :: x: Int -> {Int | _v == m + 1}");
    assert!(rendered.contains("probe.sq:1:31"), "got:\n{rendered}");
    assert!(rendered.contains('^'), "got:\n{rendered}");
}
