//! The end-to-end fuzzing harness.
//!
//! For each goal the harness (1) monomorphizes the goal schema (type
//! variables ↦ `Int`), (2) synthesizes a program through the full engine
//! pipeline, (3) generates seeded random inputs satisfying the argument
//! refinements, (4) runs the synthesized program on them with the
//! interpreter, and (5) checks the output against the goal's result type
//! — postcondition *and* datatype invariants — with the measure
//! interpreter. Violations are shrunk to minimal witnesses.
//!
//! Differential mode re-synthesizes each goal under solver ablations
//! (memoization off, incremental SMT off, budget shaping off) and replays
//! the *same* seeded corpus, asserting that the oracle verdict sequence
//! is identical: the optimizations may change how fast a solution is
//! found, never whether the found solution is sound.

use crate::check::Checker;
use crate::cval::CVal;
use crate::generate::{GenStats, Generator};
use crate::interp::{LogicEnv, LogicVal, OracleError};
use crate::rng::Rng;
use crate::shrink;
use std::time::Duration;
use synquid_core::{Evaluator, Goal, Program, SynthesisConfig};
use synquid_engine::{Engine, EngineConfig, GoalJob, SynthesisSession};
use synquid_types::RType;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Random inputs per goal.
    pub cases: usize,
    /// Seed for the deterministic input stream.
    pub seed: u64,
    /// Size budget for generated datatype values.
    pub max_size: usize,
    /// Per-goal synthesis budget.
    pub timeout: Duration,
    /// Re-synthesize under ablations and compare verdicts.
    pub differential: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            cases: 100,
            seed: 42,
            max_size: 4,
            timeout: Duration::from_secs(30),
            differential: false,
        }
    }
}

/// The oracle's verdict on one fuzz case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseVerdict {
    /// The output inhabits the goal's result type.
    Pass,
    /// The output violates the postcondition or a datatype invariant.
    Violation,
    /// The program crashed or ran out of fuel on a valid input.
    Crash,
    /// Input generation exhausted its retry budget for this case.
    GaveUp,
    /// The oracle could not decide (unsupported construct).
    Undecidable,
}

impl CaseVerdict {
    /// Stable lower-case tag (used in the JSON summary and differential
    /// comparison).
    pub fn tag(&self) -> &'static str {
        match self {
            CaseVerdict::Pass => "pass",
            CaseVerdict::Violation => "violation",
            CaseVerdict::Crash => "crash",
            CaseVerdict::GaveUp => "gave_up",
            CaseVerdict::Undecidable => "undecidable",
        }
    }
}

/// A confirmed soundness violation, with its minimized witness.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Zero-based fuzz case index.
    pub case: usize,
    /// The verdict that flagged it ([`CaseVerdict::Violation`] or
    /// [`CaseVerdict::Crash`]).
    pub verdict: CaseVerdict,
    /// The original failing inputs, in argument order.
    pub inputs: Vec<CVal>,
    /// The shrunk failing inputs.
    pub shrunk: Vec<CVal>,
    /// What went wrong, human-readable.
    pub detail: String,
}

/// One ablation's differential comparison against the baseline.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    /// Ablation label.
    pub ablation: String,
    /// Whether the ablated pipeline solved the goal.
    pub solved: bool,
    /// Whether the per-case oracle verdicts matched the baseline exactly
    /// (vacuously true when either side is unsolved).
    pub verdicts_match: bool,
    /// Cases whose concrete outputs differed from the baseline. Different
    /// outputs are informational, not failures: a spec like `reverse`
    /// pins `len` and `elems`, so two correct solutions may disagree
    /// bytewise.
    pub outputs_differ: usize,
}

/// How fuzzing one goal went.
#[derive(Debug, Clone)]
pub struct GoalFuzzReport {
    /// Goal name.
    pub goal: String,
    /// Provenance label.
    pub source: String,
    /// `None` if the goal was fuzzed; `Some(reason)` if it was skipped
    /// (higher-order arguments, synthesis failure, oracle limitation).
    pub skipped: Option<String>,
    /// The pretty-printed synthesized program, if any.
    pub program: Option<String>,
    /// Per-case verdicts, in case order.
    pub verdicts: Vec<CaseVerdict>,
    /// Confirmed violations with shrunk witnesses.
    pub violations: Vec<Violation>,
    /// Rejection-sampling discards across all cases.
    pub rejected: u64,
    /// Differential comparisons (empty unless differential mode).
    pub differential: Vec<DifferentialReport>,
}

impl GoalFuzzReport {
    fn skipped(goal: &Goal, source: &str, reason: impl Into<String>) -> GoalFuzzReport {
        GoalFuzzReport {
            goal: goal.name.clone(),
            source: source.to_string(),
            skipped: Some(reason.into()),
            program: None,
            verdicts: Vec::new(),
            violations: Vec::new(),
            rejected: 0,
            differential: Vec::new(),
        }
    }

    /// True if fuzzing ran and found no violation and no divergence.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.differential.iter().all(|d| d.verdicts_match)
    }

    /// Counts verdicts with the given tag.
    pub fn count(&self, verdict: &CaseVerdict) -> usize {
        self.verdicts.iter().filter(|v| *v == verdict).count()
    }
}

/// The ablations differential mode compares against the baseline.
fn ablations(cfg: &FuzzConfig) -> Vec<(String, EngineConfig)> {
    let base = |synth: SynthesisConfig, shaping: bool| EngineConfig {
        jobs: 1,
        timeout: cfg.timeout,
        shaping,
        base: synth,
        ..EngineConfig::default()
    };
    vec![
        (
            "without_memoization".into(),
            base(SynthesisConfig::default().without_memoization(), true),
        ),
        (
            "without_incremental_smt".into(),
            base(SynthesisConfig::default().without_incremental_smt(), true),
        ),
        (
            "without_incremental_lia".into(),
            base(SynthesisConfig::default().without_incremental_lia(), true),
        ),
        (
            "without_shaping".into(),
            base(SynthesisConfig::default(), false),
        ),
    ]
}

/// Synthesizes `goal` under `engine_cfg`, borrowing the given session's
/// caches, and returns the result AST and pretty form, or `None` if
/// unsolved.
fn synthesize(
    goal: &Goal,
    source: &str,
    engine_cfg: EngineConfig,
    session: &SynthesisSession,
) -> Option<(Program, String)> {
    let engine = Engine::new(engine_cfg);
    let report = engine.run_batch(vec![GoalJob::new(source, goal.clone())], session);
    let outcome = report.outcomes.into_iter().next()?;
    let ast = outcome.result.ast?;
    let pretty = outcome.result.program.unwrap_or_else(|| ast.to_string());
    Some((ast, pretty))
}

/// The monomorphized argument and result types of a goal, or `None` if an
/// argument is higher-order (the oracle only generates first-order data).
fn first_order_signature(goal: &Goal) -> Option<(Vec<(String, RType)>, RType)> {
    let ints = vec![RType::int(); goal.schema.type_vars.len()];
    let mono = goal.schema.instantiate(&ints);
    let (args, ret) = mono.uncurry();
    if args.iter().all(|(_, ty)| ty.is_scalar()) && ret.is_scalar() {
        Some((args, ret))
    } else {
        None
    }
}

/// Runs `program` on `inputs` and checks the output against `ret` with
/// the goal arguments bound in the logical environment.
fn run_case(
    program: &Program,
    inputs: &[CVal],
    args: &[(String, RType)],
    ret: &RType,
    checker: &Checker<'_>,
) -> (CaseVerdict, Option<CVal>, String) {
    let values: Vec<_> = inputs.iter().map(CVal::to_value).collect();
    let mut evaluator = Evaluator::default();
    let output = match evaluator.run(program, &values) {
        Ok(v) => v,
        Err(e) => return (CaseVerdict::Crash, None, e.to_string()),
    };
    let Some(out) = CVal::from_value(&output) else {
        return (
            CaseVerdict::Undecidable,
            None,
            "program returned a non-first-order value".into(),
        );
    };
    let mut env = LogicEnv::new();
    for ((name, _), value) in args.iter().zip(inputs) {
        env.insert(name.clone(), LogicVal::of(value));
    }
    match checker.check(&out, ret, &env) {
        Ok(true) => (CaseVerdict::Pass, Some(out), String::new()),
        Ok(false) => {
            let detail = format!("output {out} does not inhabit {ret}");
            (CaseVerdict::Violation, Some(out), detail)
        }
        Err(e) => (CaseVerdict::Undecidable, Some(out), e.to_string()),
    }
}

/// Generates one input tuple, binding earlier arguments (by their goal
/// binder names) while generating later ones, so dependent preconditions
/// like `n ≤ len xs` see concrete values.
fn generate_inputs(
    generator: &Generator<'_>,
    rng: &mut Rng,
    args: &[(String, RType)],
    stats: &mut GenStats,
) -> Result<Vec<CVal>, OracleError> {
    let mut env = LogicEnv::new();
    let mut inputs = Vec::with_capacity(args.len());
    for (name, ty) in args {
        let value = generator.generate(rng, ty, &env, stats)?;
        env.insert(name.clone(), LogicVal::of(&value));
        inputs.push(value);
    }
    Ok(inputs)
}

/// Whether `inputs` satisfies every argument refinement (used while
/// shrinking, to keep witnesses inside the goal's precondition).
fn inputs_valid(checker: &Checker<'_>, args: &[(String, RType)], inputs: &[CVal]) -> bool {
    if inputs.len() != args.len() {
        return false;
    }
    let mut env = LogicEnv::new();
    for ((name, ty), value) in args.iter().zip(inputs) {
        match checker.check(value, ty, &env) {
            Ok(true) => {}
            _ => return false,
        }
        env.insert(name.clone(), LogicVal::of(value));
    }
    true
}

/// One replayed corpus: per-case verdicts and outputs, the failing
/// cases as `(case index, inputs, detail)`, and the rejected-draw count.
struct Replay {
    verdicts: Vec<CaseVerdict>,
    outputs: Vec<Option<CVal>>,
    failures: Vec<(usize, Vec<CVal>, String)>,
    rejected: u64,
}

/// Replays a seeded corpus against a program, returning per-case verdicts
/// and outputs. This is the common core of baseline fuzzing and
/// differential replay: the corpus depends only on (seed, goal signature,
/// generator settings), never on the program under test.
fn replay(
    program: &Program,
    goal_args: &[(String, RType)],
    ret: &RType,
    checker: &Checker<'_>,
    generator: &Generator<'_>,
    cfg: &FuzzConfig,
) -> Replay {
    let mut rng = Rng::new(cfg.seed);
    let mut verdicts = Vec::with_capacity(cfg.cases);
    let mut outputs = Vec::with_capacity(cfg.cases);
    let mut failures = Vec::new();
    let mut stats = GenStats::default();
    for case in 0..cfg.cases {
        let mut case_rng = rng.split();
        let inputs = match generate_inputs(generator, &mut case_rng, goal_args, &mut stats) {
            Ok(inputs) => inputs,
            Err(OracleError::GaveUp(_)) => {
                verdicts.push(CaseVerdict::GaveUp);
                outputs.push(None);
                continue;
            }
            Err(e) => {
                verdicts.push(CaseVerdict::Undecidable);
                outputs.push(None);
                failures.push((case, Vec::new(), e.to_string()));
                continue;
            }
        };
        let (verdict, output, detail) = run_case(program, &inputs, goal_args, ret, checker);
        if matches!(verdict, CaseVerdict::Violation | CaseVerdict::Crash) {
            failures.push((case, inputs, detail));
        }
        verdicts.push(verdict);
        outputs.push(output);
    }
    Replay {
        verdicts,
        outputs,
        failures,
        rejected: stats.rejected,
    }
}

/// Fuzzes one goal end to end: synthesize, generate, run, check, shrink
/// — and optionally re-run the whole thing under ablations. Creates a
/// throwaway session; `synquid fuzz` shares one across its whole corpus
/// via [`fuzz_goal_in`].
pub fn fuzz_goal(goal: &Goal, source: &str, cfg: &FuzzConfig) -> GoalFuzzReport {
    fuzz_goal_in(goal, source, cfg, &SynthesisSession::new())
}

/// [`fuzz_goal`] borrowing a caller-owned session for the baseline
/// synthesis, so consecutive goals of one fuzz run warm each other's
/// caches. Ablated re-syntheses deliberately get fresh isolated sessions
/// each: a differential run must measure the ablation itself, not a
/// baseline-warmed cache standing in for the disabled optimization.
pub fn fuzz_goal_in(
    goal: &Goal,
    source: &str,
    cfg: &FuzzConfig,
    session: &SynthesisSession,
) -> GoalFuzzReport {
    let Some((goal_args, ret)) = first_order_signature(goal) else {
        return GoalFuzzReport::skipped(goal, source, "higher-order signature");
    };
    if goal_args.is_empty() {
        return GoalFuzzReport::skipped(goal, source, "no arguments to fuzz");
    }
    let baseline_cfg = EngineConfig {
        jobs: 1,
        timeout: cfg.timeout,
        ..EngineConfig::default()
    };
    let Some((program, pretty)) = synthesize(goal, source, baseline_cfg, session) else {
        return GoalFuzzReport::skipped(goal, source, "synthesis failed or timed out");
    };

    let datatypes = goal.env.datatypes();
    let checker = Checker::new(datatypes);
    let mut generator = Generator::new(datatypes);
    generator.max_size = cfg.max_size;

    let Replay {
        verdicts,
        outputs: baseline_outputs,
        failures,
        rejected,
    } = replay(&program, &goal_args, &ret, &checker, &generator, cfg);

    let violations = failures
        .iter()
        .filter(|(_, inputs, _)| !inputs.is_empty())
        .map(|(case, inputs, detail)| {
            let shrunk = shrink::shrink(inputs, |attempt| {
                if !inputs_valid(&checker, &goal_args, attempt) {
                    return false;
                }
                let (v, _, _) = run_case(&program, attempt, &goal_args, &ret, &checker);
                matches!(v, CaseVerdict::Violation | CaseVerdict::Crash)
            });
            Violation {
                case: *case,
                verdict: verdicts[*case].clone(),
                inputs: inputs.clone(),
                shrunk,
                detail: detail.clone(),
            }
        })
        .collect();

    let mut differential = Vec::new();
    if cfg.differential {
        for (label, engine_cfg) in ablations(cfg) {
            match synthesize(goal, source, engine_cfg, &SynthesisSession::new()) {
                None => differential.push(DifferentialReport {
                    ablation: label,
                    solved: false,
                    // An ablation failing to solve in budget is a timing
                    // difference, not a soundness divergence.
                    verdicts_match: true,
                    outputs_differ: 0,
                }),
                Some((ablated, _)) => {
                    let ablated_run = replay(&ablated, &goal_args, &ret, &checker, &generator, cfg);
                    let (ab_verdicts, ab_outputs) = (ablated_run.verdicts, ablated_run.outputs);
                    let outputs_differ = baseline_outputs
                        .iter()
                        .zip(&ab_outputs)
                        .filter(|(a, b)| a != b)
                        .count();
                    differential.push(DifferentialReport {
                        ablation: label,
                        solved: true,
                        verdicts_match: ab_verdicts == verdicts,
                        outputs_differ,
                    });
                }
            }
        }
    }

    GoalFuzzReport {
        goal: goal.name.clone(),
        source: source.to_string(),
        skipped: None,
        program: Some(pretty),
        verdicts,
        violations,
        rejected,
        differential,
    }
}

/// Renders the reports as a deterministic JSON summary. Wall-clock times
/// are deliberately excluded: the same seed must produce byte-identical
/// output across runs and machines.
pub fn summary_json(seed: u64, cases: usize, reports: &[GoalFuzzReport]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {seed},\n  \"cases\": {cases},\n"));
    let violations: usize = reports.iter().map(|r| r.violations.len()).sum();
    let divergences: usize = reports
        .iter()
        .flat_map(|r| &r.differential)
        .filter(|d| !d.verdicts_match)
        .count();
    out.push_str(&format!(
        "  \"total_violations\": {violations},\n  \"total_divergences\": {divergences},\n"
    ));
    out.push_str("  \"goals\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"goal\": \"{}\"", esc(&r.goal)));
        out.push_str(&format!(", \"source\": \"{}\"", esc(&r.source)));
        match &r.skipped {
            Some(reason) => out.push_str(&format!(", \"skipped\": \"{}\"", esc(reason))),
            None => {
                out.push_str(&format!(
                    ", \"pass\": {}, \"violation\": {}, \"crash\": {}, \"gave_up\": {}, \"undecidable\": {}, \"rejected\": {}",
                    r.count(&CaseVerdict::Pass),
                    r.count(&CaseVerdict::Violation),
                    r.count(&CaseVerdict::Crash),
                    r.count(&CaseVerdict::GaveUp),
                    r.count(&CaseVerdict::Undecidable),
                    r.rejected,
                ));
                if !r.violations.is_empty() {
                    let witnesses: Vec<String> = r
                        .violations
                        .iter()
                        .map(|v| {
                            let shrunk: Vec<String> =
                                v.shrunk.iter().map(|c| esc(&c.to_string())).collect();
                            format!(
                                "{{\"case\": {}, \"kind\": \"{}\", \"shrunk\": [{}]}}",
                                v.case,
                                v.verdict.tag(),
                                shrunk
                                    .iter()
                                    .map(|s| format!("\"{s}\""))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        })
                        .collect();
                    out.push_str(&format!(", \"violations\": [{}]", witnesses.join(", ")));
                }
                if !r.differential.is_empty() {
                    let diffs: Vec<String> = r
                        .differential
                        .iter()
                        .map(|d| {
                            format!(
                                "{{\"ablation\": \"{}\", \"solved\": {}, \"verdicts_match\": {}, \"outputs_differ\": {}}}",
                                esc(&d.ablation), d.solved, d.verdicts_match, d.outputs_differ
                            )
                        })
                        .collect();
                    out.push_str(&format!(", \"differential\": [{}]", diffs.join(", ")));
                }
            }
        }
        out.push('}');
        if i + 1 < reports.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use synquid_types::{BaseType, Datatypes};

    fn list_dts() -> Datatypes {
        let mut dts = Datatypes::new();
        let dt = synquid_types::list_datatype();
        dts.insert(dt.name.clone(), dt);
        dts
    }

    fn list_ty() -> RType {
        RType::base(BaseType::Data("List".into(), vec![RType::int()]))
    }

    /// An identity function at `xs: List Int → {List Int | len ν = len xs}`
    /// satisfies its spec; the same program checked against the `+ 1`
    /// postcondition of `append`-style specs must be caught.
    #[test]
    fn the_oracle_catches_an_injected_wrong_solution() {
        use synquid_logic::{Sort, Term};
        let dts = list_dts();
        let checker = Checker::new(&dts);
        let generator = Generator::new(&dts);
        let identity = Program::Abs("xs".into(), Box::new(Program::var("xs")));
        let ls = Sort::Data("List".into(), vec![Sort::Int]);
        let good_post = Term::app("len", vec![Term::value_var(ls.clone())], Sort::Int).eq(
            Term::app("len", vec![Term::var("xs", ls.clone())], Sort::Int),
        );
        let bad_post = Term::app("len", vec![Term::value_var(ls.clone())], Sort::Int)
            .eq(Term::app("len", vec![Term::var("xs", ls)], Sort::Int).plus(Term::int(1)));
        let args = vec![("xs".to_string(), list_ty())];
        let cfg = FuzzConfig {
            cases: 30,
            seed: 7,
            ..FuzzConfig::default()
        };
        let good_ret = RType::refined(BaseType::Data("List".into(), vec![RType::int()]), good_post);
        let bad_ret = RType::refined(BaseType::Data("List".into(), vec![RType::int()]), bad_post);
        let good_run = replay(&identity, &args, &good_ret, &checker, &generator, &cfg);
        assert!(good_run.verdicts.iter().all(|v| *v == CaseVerdict::Pass));
        assert!(good_run.failures.is_empty());
        let bad_run = replay(&identity, &args, &bad_ret, &checker, &generator, &cfg);
        assert!(
            bad_run.verdicts.contains(&CaseVerdict::Violation),
            "wrong postcondition must be caught"
        );
        let failures = bad_run.failures;
        // Shrinking a failure yields the minimal witness Nil.
        let (case, inputs, _) = failures[0].clone();
        let _ = case;
        let shrunk = shrink::shrink(&inputs, |attempt| {
            inputs_valid(&checker, &args, attempt)
                && matches!(
                    run_case(&identity, attempt, &args, &bad_ret, &checker).0,
                    CaseVerdict::Violation | CaseVerdict::Crash
                )
        });
        assert_eq!(shrunk, vec![CVal::Ctor("Nil".into(), vec![])]);
    }

    #[test]
    fn replay_is_bit_reproducible_per_seed() {
        use synquid_logic::{Sort, Term};
        let dts = list_dts();
        let checker = Checker::new(&dts);
        let generator = Generator::new(&dts);
        let identity = Program::Abs("xs".into(), Box::new(Program::var("xs")));
        let ls = Sort::Data("List".into(), vec![Sort::Int]);
        let post = Term::app("len", vec![Term::value_var(ls.clone())], Sort::Int).eq(Term::app(
            "len",
            vec![Term::var("xs", ls)],
            Sort::Int,
        ));
        let ret = RType::refined(BaseType::Data("List".into(), vec![RType::int()]), post);
        let args = vec![("xs".to_string(), list_ty())];
        let cfg = FuzzConfig {
            cases: 20,
            seed: 99,
            ..FuzzConfig::default()
        };
        let a = replay(&identity, &args, &ret, &checker, &generator, &cfg);
        let b = replay(&identity, &args, &ret, &checker, &generator, &cfg);
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn summary_json_is_deterministic_and_wall_clock_free() {
        let report = GoalFuzzReport {
            goal: "g".into(),
            source: "s".into(),
            skipped: None,
            program: Some("\\xs . xs".into()),
            verdicts: vec![CaseVerdict::Pass, CaseVerdict::GaveUp],
            violations: Vec::new(),
            rejected: 3,
            differential: vec![DifferentialReport {
                ablation: "without_memoization".into(),
                solved: true,
                verdicts_match: true,
                outputs_differ: 0,
            }],
        };
        let a = summary_json(42, 2, std::slice::from_ref(&report));
        let b = summary_json(42, 2, &[report]);
        assert_eq!(a, b);
        assert!(a.contains("\"seed\": 42"));
        assert!(!a.contains("secs"), "no wall-clock in the summary");
    }
}
