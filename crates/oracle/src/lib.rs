//! Runtime soundness oracle for the synthesizer.
//!
//! Synthesis is only as trustworthy as its static checker: a bug in
//! subtyping, Horn solving, or the SMT backend yields programs that
//! *type-check* but are wrong. This crate provides an independent,
//! dependency-free runtime check of the whole pipeline:
//!
//! - [`interp::MeasureInterp`] evaluates refinement terms — including
//!   measure applications like `len`, `elems`, `size`, `keys` — over
//!   concrete first-order values ([`cval::CVal`]), reading each measure's
//!   semantics off the constructor refinements in the datatype registry.
//! - [`check::Checker`] decides whether a concrete value inhabits a
//!   refinement type: base shape, datatype invariants (BST ordering,
//!   `IList` sortedness), and the top-level refinement.
//! - [`generate::Generator`] produces seeded, size-bounded random inputs
//!   satisfying argument refinements by rejection sampling, driven by the
//!   deterministic [`rng::Rng`] (no wall-clock, no OS entropy).
//! - [`shrink`] minimizes failing inputs greedily to small witnesses.
//! - [`harness`] ties it together: synthesize each goal through the full
//!   engine, fuzz the result, shrink violations, and (in differential
//!   mode) re-synthesize under solver ablations and assert the oracle
//!   verdicts agree.
//!
//! The determinism contract: `fuzz` output for a given `(seed, cases,
//! size)` is byte-identical across runs and machines. The JSON summary
//! therefore contains no wall-clock fields.

#![warn(missing_docs)]

pub mod check;
pub mod cval;
pub mod generate;
pub mod harness;
pub mod interp;
pub mod rng;
pub mod shrink;

pub use check::Checker;
pub use cval::CVal;
pub use generate::{GenStats, Generator};
pub use harness::{
    fuzz_goal, fuzz_goal_in, summary_json, CaseVerdict, DifferentialReport, FuzzConfig,
    GoalFuzzReport, Violation,
};
pub use interp::{conjuncts, nu_env, LogicEnv, LogicVal, MeasureInterp, OracleError};
pub use rng::Rng;
