//! Greedy counterexample shrinking.
//!
//! Given a failing input tuple, the shrinker repeatedly tries strictly
//! smaller candidate replacements for each argument — structural
//! reductions first (replace a constructor value by one of its
//! same-shaped subvalues, or by a scalar constructor), then local edits
//! (integers toward zero, `true` to `false`, per-field shrinks) — keeping
//! a candidate only if the caller's `still_fails` predicate confirms the
//! violation persists *and* the shrunk tuple still satisfies the goal's
//! preconditions (the predicate is responsible for both). Iterates to a
//! fixpoint, so reports show minimal witnesses like `(Cons 0 Nil)` rather
//! than a size-nine tree.

use crate::cval::CVal;

/// Strictly smaller candidate replacements for `v`, most aggressive
/// first.
pub fn candidates(v: &CVal) -> Vec<CVal> {
    let mut out = Vec::new();
    match v {
        CVal::Int(n) => {
            if *n != 0 {
                out.push(CVal::Int(0));
                if n.abs() > 1 {
                    out.push(CVal::Int(n / 2));
                }
                out.push(CVal::Int(n - n.signum()));
            }
        }
        CVal::Bool(b) => {
            if *b {
                out.push(CVal::Bool(false));
            }
        }
        CVal::Ctor(_, args) => {
            // A recursive subvalue of the same shape (drop list/tree
            // levels wholesale): Cons x xs → xs, Node x l r → l, r.
            for arg in args {
                if matches!(arg, CVal::Ctor(..)) && arg.size() < v.size() {
                    out.push(arg.clone());
                }
            }
            // Per-field shrinks, left to right.
            for (i, arg) in args.iter().enumerate() {
                for cand in candidates(arg) {
                    let mut new_args = args.clone();
                    new_args[i] = cand;
                    out.push(CVal::Ctor(v.ctor_name().unwrap().to_string(), new_args));
                }
            }
        }
    }
    // Every candidate must be strictly smaller or lexicographically
    // simpler at equal size, or the fixpoint loop could cycle.
    out.retain(|c| c.size() < v.size() || (c.size() == v.size() && c < v));
    out
}

/// Greedily shrinks a failing input tuple to a local minimum.
///
/// `still_fails` must return true iff the tuple both satisfies the goal's
/// preconditions and still triggers the original violation. The input
/// tuple itself is assumed failing.
pub fn shrink(inputs: &[CVal], mut still_fails: impl FnMut(&[CVal]) -> bool) -> Vec<CVal> {
    let mut current: Vec<CVal> = inputs.to_vec();
    // Bounded by total size, which strictly decreases (or stays equal
    // with lexicographic decrease) on every accepted step; the extra cap
    // guards against a buggy predicate.
    for _ in 0..10_000 {
        let mut improved = false;
        'args: for i in 0..current.len() {
            for cand in candidates(&current[i]) {
                let mut attempt = current.clone();
                attempt[i] = cand;
                if still_fails(&attempt) {
                    current = attempt;
                    improved = true;
                    break 'args;
                }
            }
        }
        if !improved {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(items: &[i64]) -> CVal {
        items
            .iter()
            .rev()
            .fold(CVal::Ctor("Nil".into(), vec![]), |acc, n| {
                CVal::Ctor("Cons".into(), vec![CVal::Int(*n), acc])
            })
    }

    #[test]
    fn integers_shrink_toward_zero() {
        assert_eq!(
            shrink(
                &[CVal::Int(100)],
                |vs| matches!(vs[0], CVal::Int(n) if n > 3)
            ),
            vec![CVal::Int(4)]
        );
    }

    #[test]
    fn lists_shrink_to_minimal_failing_witness() {
        // Failure: the list contains at least one element.
        let big = list(&[9, -4, 7, 7, 2]);
        let shrunk = shrink(
            &[big],
            |vs| matches!(&vs[0], CVal::Ctor(name, _) if name == "Cons"),
        );
        assert_eq!(shrunk, vec![list(&[0])]);
    }

    #[test]
    fn shrinking_respects_the_predicate() {
        // "still fails" only for even ints — the candidate 0 is accepted,
        // not the intermediate odd steps.
        let shrunk = shrink(
            &[CVal::Int(8)],
            |vs| matches!(vs[0], CVal::Int(n) if n % 2 == 0),
        );
        assert_eq!(shrunk, vec![CVal::Int(0)]);
    }

    #[test]
    fn candidates_are_always_smaller() {
        let v = list(&[3, 1, 4, 1, 5]);
        for c in candidates(&v) {
            assert!(
                c.size() < v.size() || (c.size() == v.size() && c < v),
                "{c} is not smaller than {v}"
            );
        }
    }

    #[test]
    fn fixpoints_terminate_on_unshrinkable_inputs() {
        let nil = CVal::Ctor("Nil".into(), vec![]);
        assert_eq!(shrink(std::slice::from_ref(&nil), |_| true), vec![nil]);
    }
}
