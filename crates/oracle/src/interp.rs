//! The measure interpreter: evaluating refinement terms over concrete
//! values.
//!
//! The paper never *runs* measures — `len`, `elems`, `size`, `keys` are
//! uninterpreted function symbols whose meaning the SMT solver only sees
//! through the constructor refinements (e.g. `Cons :: x → xs → {List |
//! len ν = len xs + 1}`). But those refinements are a perfectly good
//! *program*: for a concrete constructor value, find the constructor's
//! defining equation for the measure, bind the constructor's fields, and
//! evaluate the right-hand side by structural recursion. That turns every
//! quantifier-free refinement — postconditions, datatype invariants,
//! preconditions — into an executable boolean check, which is what makes
//! property-based fuzzing of the whole pipeline possible.

use crate::cval::CVal;
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use synquid_logic::{BinOp, Term, UnOp, VALUE_VAR};
use synquid_types::Datatypes;

/// A value of the refinement logic: what a [`Term`] denotes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicVal {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A finite set (the denotation of `elems`, `keys`, set literals).
    Set(BTreeSet<CVal>),
    /// A datatype value (compared for equality, fed to measures).
    Data(CVal),
}

impl LogicVal {
    /// Wraps a concrete value at its natural logical sort.
    pub fn of(v: &CVal) -> LogicVal {
        match v {
            CVal::Int(n) => LogicVal::Int(*n),
            CVal::Bool(b) => LogicVal::Bool(*b),
            ctor => LogicVal::Data(ctor.clone()),
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            LogicVal::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Lowers into a first-order element value (for set membership).
    fn as_element(&self) -> Result<CVal, OracleError> {
        match self {
            LogicVal::Int(n) => Ok(CVal::Int(*n)),
            LogicVal::Bool(b) => Ok(CVal::Bool(*b)),
            LogicVal::Data(c) => Ok(c.clone()),
            LogicVal::Set(_) => Err(OracleError::Unsupported(
                "sets cannot be elements of sets".into(),
            )),
        }
    }
}

impl fmt::Display for LogicVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicVal::Int(n) => write!(f, "{n}"),
            LogicVal::Bool(b) => write!(f, "{b}"),
            LogicVal::Data(c) => write!(f, "{c}"),
            LogicVal::Set(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Variable bindings for term evaluation (argument names, constructor
/// fields, and the value variable `ν`).
pub type LogicEnv = BTreeMap<String, LogicVal>;

/// Why the oracle could not produce a verdict. These are harness-side
/// failures ("the oracle can't check this"), kept strictly apart from
/// oracle *violations* ("the checked program is wrong").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// A term variable was not bound in the evaluation environment.
    UnboundLogicVar(String),
    /// A measure application had no defining equation on the value's
    /// constructor.
    MissingMeasureDef {
        /// The measure name.
        measure: String,
        /// The constructor the value is built from.
        constructor: String,
    },
    /// A value or term had the wrong shape for an operation.
    SortMismatch(String),
    /// The term contains a construct the oracle cannot evaluate (predicate
    /// unknowns, multi-argument uninterpreted functions).
    Unsupported(String),
    /// Structural recursion exceeded its step budget (malformed measure
    /// definitions could otherwise diverge).
    FuelExhausted,
    /// Rejection sampling exhausted its retry budget (an unsatisfiable or
    /// very sparse precondition).
    GaveUp(String),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oracle error: ")?;
        match self {
            OracleError::UnboundLogicVar(name) => write!(f, "unbound logic variable {name}"),
            OracleError::MissingMeasureDef {
                measure,
                constructor,
            } => write!(
                f,
                "measure {measure} has no defining equation on constructor {constructor}"
            ),
            OracleError::SortMismatch(msg) => write!(f, "sort mismatch: {msg}"),
            OracleError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            OracleError::FuelExhausted => write!(f, "measure evaluation fuel exhausted"),
            OracleError::GaveUp(msg) => write!(f, "gave up: {msg}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// Evaluates refinement terms and measure applications over concrete
/// values, reading measure semantics off the constructor refinements of a
/// datatype registry.
pub struct MeasureInterp<'a> {
    datatypes: &'a Datatypes,
    fuel: Cell<u64>,
    depth: Cell<u32>,
}

/// Measure-recursion depth bound: generous for structural recursion over
/// generated values (whose size is double-digit), but small enough that a
/// measure defined in terms of itself hits [`OracleError::FuelExhausted`]
/// long before the call stack overflows.
const MAX_MEASURE_DEPTH: u32 = 64;

impl<'a> MeasureInterp<'a> {
    /// An interpreter over the given datatype registry.
    pub fn new(datatypes: &'a Datatypes) -> MeasureInterp<'a> {
        MeasureInterp {
            datatypes,
            fuel: Cell::new(1_000_000),
            depth: Cell::new(0),
        }
    }

    fn spend(&self) -> Result<(), OracleError> {
        let left = self.fuel.get();
        if left == 0 {
            return Err(OracleError::FuelExhausted);
        }
        self.fuel.set(left - 1);
        Ok(())
    }

    /// Applies a measure to a concrete value by structural recursion over
    /// the defining equations in the constructor result refinements.
    pub fn measure(&self, name: &str, value: &CVal) -> Result<LogicVal, OracleError> {
        self.spend()?;
        let depth = self.depth.get();
        if depth >= MAX_MEASURE_DEPTH {
            return Err(OracleError::FuelExhausted);
        }
        self.depth.set(depth + 1);
        let result = self.measure_inner(name, value);
        self.depth.set(depth);
        result
    }

    fn measure_inner(&self, name: &str, value: &CVal) -> Result<LogicVal, OracleError> {
        let CVal::Ctor(ctor_name, fields) = value else {
            return Err(OracleError::SortMismatch(format!(
                "measure {name} applied to non-datatype value {value}"
            )));
        };
        let (dt, ctor) = self
            .datatypes
            .values()
            .find_map(|dt| dt.constructor(ctor_name).map(|c| (dt, c)))
            .ok_or_else(|| OracleError::SortMismatch(format!("unknown constructor {ctor_name}")))?;
        let _ = dt;
        let (args, ret) = ctor.schema.ty.uncurry();
        if args.len() != fields.len() {
            return Err(OracleError::SortMismatch(format!(
                "constructor {ctor_name} carries {} values but its schema declares {}",
                fields.len(),
                args.len()
            )));
        }
        let rhs = defining_equation(&ret.refinement(), name).ok_or_else(|| {
            OracleError::MissingMeasureDef {
                measure: name.to_string(),
                constructor: ctor_name.clone(),
            }
        })?;
        let mut env = LogicEnv::new();
        // The result refinement is a statement about the constructed value,
        // so `ν` denotes the value itself (this is also what lets the fuel
        // guard catch measures defined in terms of themselves).
        env.insert(VALUE_VAR.to_string(), LogicVal::Data(value.clone()));
        for ((arg_name, _), field) in args.iter().zip(fields) {
            env.insert(arg_name.clone(), LogicVal::of(field));
        }
        self.eval(&rhs, &env)
    }

    /// Evaluates a quantifier-free refinement term under the given
    /// bindings.
    pub fn eval(&self, term: &Term, env: &LogicEnv) -> Result<LogicVal, OracleError> {
        self.spend()?;
        match term {
            Term::IntLit(n) => Ok(LogicVal::Int(*n)),
            Term::BoolLit(b) => Ok(LogicVal::Bool(*b)),
            Term::SetLit(_, items) => {
                let mut set = BTreeSet::new();
                for item in items {
                    set.insert(self.eval(item, env)?.as_element()?);
                }
                Ok(LogicVal::Set(set))
            }
            Term::Var(name, _) => env
                .get(name)
                .cloned()
                .ok_or_else(|| OracleError::UnboundLogicVar(name.clone())),
            Term::Unknown(..) => Err(OracleError::Unsupported(
                "predicate unknowns have no runtime denotation".into(),
            )),
            Term::Unary(op, inner) => {
                let v = self.eval(inner, env)?;
                match (op, v) {
                    (UnOp::Neg, LogicVal::Int(n)) => Ok(LogicVal::Int(-n)),
                    (UnOp::Not, LogicVal::Bool(b)) => Ok(LogicVal::Bool(!b)),
                    (op, v) => Err(OracleError::SortMismatch(format!("{op:?} applied to {v}"))),
                }
            }
            Term::Binary(op, lhs, rhs) => {
                // Short-circuiting matters for rejection sampling: the
                // guard `x ≠ 0 ⇒ 10 / x > c` idiom must not evaluate the
                // right side eagerly. (The logic has no division today, but
                // And/Or/Implies short-circuit regardless.)
                let l = self.eval(lhs, env)?;
                match (op, &l) {
                    (BinOp::And, LogicVal::Bool(false)) => return Ok(LogicVal::Bool(false)),
                    (BinOp::Or, LogicVal::Bool(true)) => return Ok(LogicVal::Bool(true)),
                    (BinOp::Implies, LogicVal::Bool(false)) => return Ok(LogicVal::Bool(true)),
                    _ => {}
                }
                let r = self.eval(rhs, env)?;
                self.binary(*op, l, r)
            }
            Term::Ite(cond, then, els) => {
                let c = self
                    .eval(cond, env)?
                    .as_bool()
                    .ok_or_else(|| OracleError::SortMismatch("non-boolean condition".into()))?;
                if c {
                    self.eval(then, env)
                } else {
                    self.eval(els, env)
                }
            }
            Term::App(name, args, _) => {
                if args.len() != 1 {
                    return Err(OracleError::Unsupported(format!(
                        "uninterpreted function {name} with {} arguments",
                        args.len()
                    )));
                }
                match self.eval(&args[0], env)? {
                    LogicVal::Data(value) => self.measure(name, &value),
                    other => Err(OracleError::SortMismatch(format!(
                        "measure {name} applied to {other}"
                    ))),
                }
            }
        }
    }

    /// Evaluates a term that must denote a boolean (a refinement).
    pub fn eval_bool(&self, term: &Term, env: &LogicEnv) -> Result<bool, OracleError> {
        self.eval(term, env)?.as_bool().ok_or_else(|| {
            OracleError::SortMismatch(format!("refinement {term} is not boolean-valued"))
        })
    }

    fn binary(&self, op: BinOp, l: LogicVal, r: LogicVal) -> Result<LogicVal, OracleError> {
        use LogicVal::*;
        Ok(match (op, l, r) {
            (BinOp::Plus, Int(a), Int(b)) => Int(a + b),
            (BinOp::Minus, Int(a), Int(b)) => Int(a - b),
            (BinOp::Times, Int(a), Int(b)) => Int(a * b),
            (BinOp::Lt, Int(a), Int(b)) => Bool(a < b),
            (BinOp::Le, Int(a), Int(b)) => Bool(a <= b),
            (BinOp::Gt, Int(a), Int(b)) => Bool(a > b),
            (BinOp::Ge, Int(a), Int(b)) => Bool(a >= b),
            (BinOp::Eq, a, b) => Bool(a == b),
            (BinOp::Neq, a, b) => Bool(a != b),
            (BinOp::And, Bool(a), Bool(b)) => Bool(a && b),
            (BinOp::Or, Bool(a), Bool(b)) => Bool(a || b),
            (BinOp::Implies, Bool(a), Bool(b)) => Bool(!a || b),
            (BinOp::Iff, Bool(a), Bool(b)) => Bool(a == b),
            (BinOp::Union, Set(a), Set(b)) => Set(a.union(&b).cloned().collect()),
            (BinOp::Intersect, Set(a), Set(b)) => Set(a.intersection(&b).cloned().collect()),
            (BinOp::Diff, Set(a), Set(b)) => Set(a.difference(&b).cloned().collect()),
            (BinOp::Member, elem, Set(b)) => Bool(b.contains(&elem.as_element()?)),
            (BinOp::Subset, Set(a), Set(b)) => Bool(a.is_subset(&b)),
            (op, l, r) => {
                return Err(OracleError::SortMismatch(format!(
                    "{op:?} applied to {l} and {r}"
                )))
            }
        })
    }
}

/// Finds the defining equation for `measure` in a constructor result
/// refinement: a conjunct of the shape `measure ν = rhs` (either
/// orientation), returning `rhs`.
fn defining_equation(refinement: &Term, measure: &str) -> Option<Term> {
    let mut found = None;
    for conjunct in conjuncts(refinement) {
        if let Term::Binary(BinOp::Eq, lhs, rhs) = conjunct {
            if is_measure_of_nu(lhs, measure) {
                found = Some(rhs.as_ref().clone());
                break;
            }
            if is_measure_of_nu(rhs, measure) {
                found = Some(lhs.as_ref().clone());
                break;
            }
        }
        // Boolean-sorted measures may be defined with ⇔ instead of =.
        if let Term::Binary(BinOp::Iff, lhs, rhs) = conjunct {
            if is_measure_of_nu(lhs, measure) {
                found = Some(rhs.as_ref().clone());
                break;
            }
            if is_measure_of_nu(rhs, measure) {
                found = Some(lhs.as_ref().clone());
                break;
            }
        }
    }
    found
}

fn is_measure_of_nu(term: &Term, measure: &str) -> bool {
    matches!(term, Term::App(name, args, _)
        if name == measure
            && args.len() == 1
            && matches!(&args[0], Term::Var(v, _) if v == VALUE_VAR))
}

/// Flattens nested conjunctions into a list of conjuncts.
pub fn conjuncts(term: &Term) -> Vec<&Term> {
    let mut out = Vec::new();
    let mut stack = vec![term];
    while let Some(t) = stack.pop() {
        match t {
            Term::Binary(BinOp::And, l, r) => {
                stack.push(r);
                stack.push(l);
            }
            other => out.push(other),
        }
    }
    out
}

/// Convenience: the empty environment plus `ν ↦ value`.
pub fn nu_env(value: &CVal) -> LogicEnv {
    let mut env = LogicEnv::new();
    env.insert(VALUE_VAR.to_string(), LogicVal::of(value));
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use synquid_logic::Sort;
    use synquid_types::{bst_datatype, increasing_list_datatype, list_datatype};

    fn dts() -> Datatypes {
        let mut dts = Datatypes::new();
        for dt in [list_datatype(), bst_datatype(), increasing_list_datatype()] {
            dts.insert(dt.name.clone(), dt);
        }
        dts
    }

    fn list(items: &[i64]) -> CVal {
        items
            .iter()
            .rev()
            .fold(CVal::Ctor("Nil".into(), vec![]), |acc, n| {
                CVal::Ctor("Cons".into(), vec![CVal::Int(*n), acc])
            })
    }

    #[test]
    fn len_counts_cons_cells() {
        let dts = dts();
        let interp = MeasureInterp::new(&dts);
        assert_eq!(
            interp.measure("len", &list(&[7, 8, 9])),
            Ok(LogicVal::Int(3))
        );
        assert_eq!(interp.measure("len", &list(&[])), Ok(LogicVal::Int(0)));
    }

    #[test]
    fn elems_collects_the_element_set() {
        let dts = dts();
        let interp = MeasureInterp::new(&dts);
        let LogicVal::Set(s) = interp.measure("elems", &list(&[2, 1, 2])).unwrap() else {
            panic!("elems should be a set");
        };
        assert_eq!(
            s,
            BTreeSet::from([CVal::Int(1), CVal::Int(2)]),
            "duplicates collapse"
        );
    }

    #[test]
    fn bst_size_and_keys_recurse_into_both_subtrees() {
        let dts = dts();
        let interp = MeasureInterp::new(&dts);
        let leaf = |n: i64| {
            CVal::Ctor(
                "Node".into(),
                vec![
                    CVal::Int(n),
                    CVal::Ctor("Empty".into(), vec![]),
                    CVal::Ctor("Empty".into(), vec![]),
                ],
            )
        };
        let tree = CVal::Ctor("Node".into(), vec![CVal::Int(5), leaf(2), leaf(8)]);
        assert_eq!(interp.measure("size", &tree), Ok(LogicVal::Int(3)));
        let LogicVal::Set(keys) = interp.measure("keys", &tree).unwrap() else {
            panic!("keys should be a set");
        };
        assert_eq!(
            keys,
            BTreeSet::from([CVal::Int(2), CVal::Int(5), CVal::Int(8)])
        );
    }

    #[test]
    fn missing_measures_are_reported_not_guessed() {
        let dts = dts();
        let interp = MeasureInterp::new(&dts);
        assert_eq!(
            interp.measure("height", &list(&[1])),
            Err(OracleError::MissingMeasureDef {
                measure: "height".into(),
                constructor: "Cons".into()
            })
        );
    }

    #[test]
    fn refinement_evaluation_checks_postconditions() {
        // len ν = len xs + 1, with ν = [1,2,3] and xs = [2,3].
        let dts = dts();
        let interp = MeasureInterp::new(&dts);
        let ls = Sort::Data("List".into(), vec![Sort::Int]);
        let post = Term::app("len", vec![Term::value_var(ls.clone())], Sort::Int).eq(Term::app(
            "len",
            vec![Term::var("xs", ls)],
            Sort::Int,
        )
        .plus(Term::int(1)));
        let mut env = nu_env(&list(&[1, 2, 3]));
        env.insert("xs".into(), LogicVal::of(&list(&[2, 3])));
        assert_eq!(interp.eval_bool(&post, &env), Ok(true));
        env.insert("xs".into(), LogicVal::of(&list(&[])));
        assert_eq!(interp.eval_bool(&post, &env), Ok(false));
    }

    #[test]
    fn set_operations_and_membership_evaluate() {
        let dts = dts();
        let interp = MeasureInterp::new(&dts);
        let s = Sort::Int;
        // 2 ∈ ([1,2] ∪ [3]) ∧ [1] ⊆ [1,2] ∧ ([1,2] ∩ [2,3]) = [2]
        let lit =
            |items: Vec<i64>| Term::SetLit(s.clone(), items.into_iter().map(Term::int).collect());
        let term = Term::int(2)
            .member(lit(vec![1, 2]).union(lit(vec![3])))
            .and(lit(vec![1]).subset(lit(vec![1, 2])))
            .and(lit(vec![1, 2]).intersect(lit(vec![2, 3])).eq(lit(vec![2])));
        assert_eq!(interp.eval_bool(&term, &LogicEnv::new()), Ok(true));
    }

    #[test]
    fn short_circuits_do_not_evaluate_the_dead_branch() {
        let dts = dts();
        let interp = MeasureInterp::new(&dts);
        // false ∧ unbound — must not error on the unbound variable.
        let t = Term::ff().and(Term::var("nope", Sort::Bool));
        assert_eq!(interp.eval_bool(&t, &LogicEnv::new()), Ok(false));
        let t = Term::tt().or(Term::var("nope", Sort::Bool));
        assert_eq!(interp.eval_bool(&t, &LogicEnv::new()), Ok(true));
        let t = Term::ff().implies(Term::var("nope", Sort::Bool));
        assert_eq!(interp.eval_bool(&t, &LogicEnv::new()), Ok(true));
    }

    #[test]
    fn fuel_bounds_malformed_recursion() {
        // A datatype whose measure is defined in terms of itself on the
        // same (unshrunk) value would recurse forever without fuel.
        use synquid_types::{Constructor, Datatype, Measure, RType, Schema};
        let base = synquid_types::BaseType::Data("Loop".into(), vec![]);
        let sort = Sort::Data("Loop".into(), vec![]);
        let bad = Term::app("m", vec![Term::value_var(sort.clone())], Sort::Int).eq(Term::app(
            "m",
            vec![Term::value_var(sort.clone())],
            Sort::Int,
        )
        .plus(Term::int(1)));
        let mut dts = Datatypes::new();
        dts.insert(
            "Loop".into(),
            Datatype {
                name: "Loop".into(),
                type_params: vec![],
                constructors: vec![Constructor {
                    name: "L".into(),
                    schema: Schema::monotype(RType::refined(base, bad)),
                }],
                measures: vec![Measure {
                    name: "m".into(),
                    datatype: "Loop".into(),
                    result: Sort::Int,
                    non_negative: false,
                }],
                termination_measure: None,
            },
        );
        let interp = MeasureInterp::new(&dts);
        assert_eq!(
            interp.measure("m", &CVal::Ctor("L".into(), vec![])),
            Err(OracleError::FuelExhausted)
        );
    }
}
