//! Checking concrete values against refinement types.
//!
//! `check` decides whether a first-order value inhabits a (scalar)
//! refinement type under an environment of logical bindings: the value's
//! shape must match the base type, every constructor field must inhabit
//! its declared field type (this is where datatype invariants like BST
//! ordering or `IList` sortedness live — they are element-type
//! refinements, composed through [`synquid_types::Schema::instantiate`]), and the
//! type's top-level refinement must evaluate to true with `ν` bound to
//! the value.
//!
//! Constructor binder names are freshened at every unfolding: `Node`
//! binds `x` at each level of a BST, so the refinement `ν < x` composed
//! into a nested element type would otherwise be captured by the inner
//! binding. Fresh names use a `$` prefix, which the surface syntax cannot
//! produce.

use crate::cval::CVal;
use crate::interp::{LogicEnv, LogicVal, MeasureInterp, OracleError};
use std::cell::Cell;
use synquid_logic::{Term, VALUE_VAR};
use synquid_types::{BaseType, Datatypes, RType};

/// A value-vs-type checker over a datatype registry.
pub struct Checker<'a> {
    datatypes: &'a Datatypes,
    interp: MeasureInterp<'a>,
    fresh: Cell<u64>,
}

impl<'a> Checker<'a> {
    /// A checker over the given datatype registry.
    pub fn new(datatypes: &'a Datatypes) -> Checker<'a> {
        Checker {
            datatypes,
            interp: MeasureInterp::new(datatypes),
            fresh: Cell::new(0),
        }
    }

    /// The underlying measure interpreter (shared fuel).
    pub fn interp(&self) -> &MeasureInterp<'a> {
        &self.interp
    }

    fn fresh_name(&self) -> String {
        let n = self.fresh.get();
        self.fresh.set(n + 1);
        format!("$v{n}")
    }

    /// Whether `value` inhabits the scalar type `ty` under `env`.
    ///
    /// `Ok(false)` means the value demonstrably does not inhabit the type
    /// (wrong shape, violated invariant, falsified refinement); `Err`
    /// means the oracle cannot decide (unsupported construct, missing
    /// measure).
    pub fn check(&self, value: &CVal, ty: &RType, env: &LogicEnv) -> Result<bool, OracleError> {
        let Some(base) = ty.base_type() else {
            return Err(OracleError::Unsupported(format!(
                "cannot check a value against non-scalar type {ty}"
            )));
        };
        match (base, value) {
            (BaseType::Int, CVal::Int(_)) => {}
            (BaseType::Bool, CVal::Bool(_)) => {}
            // Type variables are monomorphized to Int by the generator; an
            // integer (or any other scalar) inhabits the shape.
            (BaseType::TypeVar(_), CVal::Int(_) | CVal::Bool(_)) => {}
            (BaseType::Data(dt_name, params), CVal::Ctor(ctor_name, fields)) => {
                let Some(dt) = self.datatypes.get(dt_name) else {
                    return Err(OracleError::Unsupported(format!(
                        "unknown datatype {dt_name}"
                    )));
                };
                let Some(ctor) = dt.constructor(ctor_name) else {
                    // A constructor from some other datatype: not an
                    // inhabitant.
                    return Ok(false);
                };
                // Compose the expected element refinements into the
                // constructor's field types (e.g. `BST {a | ν < x}`
                // refines every key of the left subtree).
                let instantiated = ctor.schema.instantiate(params);
                let (mut args, _ret) = instantiated.uncurry();
                if args.len() != fields.len() {
                    return Ok(false);
                }
                let mut inner_env = env.clone();
                for i in 0..args.len() {
                    let (orig_name, field_ty) = args[i].clone();
                    if !self.check(&fields[i], &field_ty, &inner_env)? {
                        return Ok(false);
                    }
                    // Later field types may reference this field by its
                    // binder name; rename to a fresh one so nested
                    // unfoldings of the same constructor cannot capture it.
                    let fresh = self.fresh_name();
                    let replacement = Term::var(fresh.clone(), field_ty.sort());
                    for arg in args.iter_mut().skip(i + 1) {
                        arg.1 = arg.1.substitute_var(&orig_name, &replacement);
                    }
                    inner_env.insert(fresh, LogicVal::of(&fields[i]));
                }
            }
            // Shape mismatch: the value does not inhabit the base type.
            _ => return Ok(false),
        }
        let refinement = ty.refinement();
        if refinement.is_true() {
            return Ok(true);
        }
        let mut env = env.clone();
        env.insert(VALUE_VAR.to_string(), LogicVal::of(value));
        self.interp.eval_bool(&refinement, &env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synquid_logic::Sort;
    use synquid_types::{bst_datatype, increasing_list_datatype, list_datatype};

    fn dts() -> Datatypes {
        let mut dts = Datatypes::new();
        for dt in [list_datatype(), bst_datatype(), increasing_list_datatype()] {
            dts.insert(dt.name.clone(), dt);
        }
        dts
    }

    fn node(key: i64, l: CVal, r: CVal) -> CVal {
        CVal::Ctor("Node".into(), vec![CVal::Int(key), l, r])
    }

    fn empty() -> CVal {
        CVal::Ctor("Empty".into(), vec![])
    }

    fn bst_ty() -> RType {
        RType::base(BaseType::Data("BST".into(), vec![RType::int()]))
    }

    #[test]
    fn well_ordered_bsts_check_and_disordered_ones_do_not() {
        let dts = dts();
        let checker = Checker::new(&dts);
        let good = node(5, node(2, empty(), empty()), node(8, empty(), empty()));
        assert_eq!(checker.check(&good, &bst_ty(), &LogicEnv::new()), Ok(true));
        // 8 in the left subtree of 5 violates ν < x.
        let bad = node(5, node(8, empty(), empty()), empty());
        assert_eq!(checker.check(&bad, &bst_ty(), &LogicEnv::new()), Ok(false));
        // Deep violation: 9 in the left-left position under 5 — only
        // detectable if the outer ν < 5 constraint survives the nested
        // unfolding (binder freshening).
        let deep = node(5, node(3, empty(), node(9, empty(), empty())), empty());
        assert_eq!(checker.check(&deep, &bst_ty(), &LogicEnv::new()), Ok(false));
    }

    #[test]
    fn increasing_lists_enforce_sortedness() {
        let dts = dts();
        let checker = Checker::new(&dts);
        let ilist_ty = RType::base(BaseType::Data("IList".into(), vec![RType::int()]));
        let ilist = |items: &[i64]| {
            items
                .iter()
                .rev()
                .fold(CVal::Ctor("INil".into(), vec![]), |acc, n| {
                    CVal::Ctor("ICons".into(), vec![CVal::Int(*n), acc])
                })
        };
        assert_eq!(
            checker.check(&ilist(&[1, 3, 3, 7]), &ilist_ty, &LogicEnv::new()),
            Ok(true)
        );
        assert_eq!(
            checker.check(&ilist(&[3, 1]), &ilist_ty, &LogicEnv::new()),
            Ok(false)
        );
    }

    #[test]
    fn refinements_with_free_variables_use_the_environment() {
        let dts = dts();
        let checker = Checker::new(&dts);
        // {Int | ν > n} with n = 3.
        let ty = RType::refined(
            BaseType::Int,
            Term::value_var(Sort::Int).gt(Term::var("n", Sort::Int)),
        );
        let mut env = LogicEnv::new();
        env.insert("n".into(), LogicVal::Int(3));
        assert_eq!(checker.check(&CVal::Int(4), &ty, &env), Ok(true));
        assert_eq!(checker.check(&CVal::Int(3), &ty, &env), Ok(false));
    }

    #[test]
    fn shape_mismatches_are_refutations_not_errors() {
        let dts = dts();
        let checker = Checker::new(&dts);
        assert_eq!(
            checker.check(&CVal::Bool(true), &RType::int(), &LogicEnv::new()),
            Ok(false)
        );
        // A List constructor is not a BST inhabitant.
        let nil = CVal::Ctor("Nil".into(), vec![]);
        assert_eq!(checker.check(&nil, &bst_ty(), &LogicEnv::new()), Ok(false));
    }

    #[test]
    fn measure_refinements_check_on_lists() {
        let dts = dts();
        let checker = Checker::new(&dts);
        // {List Int | len ν = 2}
        let ls = Sort::Data("List".into(), vec![Sort::Int]);
        let ty = RType::refined(
            BaseType::Data("List".into(), vec![RType::int()]),
            Term::app("len", vec![Term::value_var(ls)], Sort::Int).eq(Term::int(2)),
        );
        let list = |items: &[i64]| {
            items
                .iter()
                .rev()
                .fold(CVal::Ctor("Nil".into(), vec![]), |acc, n| {
                    CVal::Ctor("Cons".into(), vec![CVal::Int(*n), acc])
                })
        };
        assert_eq!(
            checker.check(&list(&[1, 2]), &ty, &LogicEnv::new()),
            Ok(true)
        );
        assert_eq!(checker.check(&list(&[1]), &ty, &LogicEnv::new()), Ok(false));
    }
}
