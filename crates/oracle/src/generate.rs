//! Sort-directed random value generation.
//!
//! The generator produces size-bounded first-order values for a (scalar)
//! refinement type: integers from a small window around zero, booleans,
//! and datatype values built by recursive constructor selection with a
//! depth budget. Refinement *preconditions* are honored by rejection
//! sampling — draw, evaluate the refinement with the measure interpreter,
//! retry on failure — with a bounded retry count so unsatisfiable (or
//! just very sparse) preconditions surface as [`OracleError::GaveUp`]
//! instead of a hang.
//!
//! Everything is driven by the seeded [`Rng`]: no wall-clock, no OS
//! entropy, so a seed pins the whole corpus byte-for-byte.

use crate::check::Checker;
use crate::cval::CVal;
use crate::interp::{LogicEnv, LogicVal, OracleError};
use crate::rng::Rng;
use synquid_logic::{Term, VALUE_VAR};
use synquid_types::{BaseType, Datatypes, RType};

/// Counters the harness reports (how hard rejection sampling worked).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Draws discarded because a refinement rejected them.
    pub rejected: u64,
}

/// A seeded, size-bounded generator of values inhabiting refinement
/// types.
pub struct Generator<'a> {
    datatypes: &'a Datatypes,
    checker: Checker<'a>,
    /// Depth budget for datatype values (also the half-width of the
    /// integer window).
    pub max_size: usize,
    /// Rejection-sampling retries per draw before giving up.
    pub retries: usize,
}

impl<'a> Generator<'a> {
    /// A generator over the given datatype registry.
    pub fn new(datatypes: &'a Datatypes) -> Generator<'a> {
        Generator {
            datatypes,
            checker: Checker::new(datatypes),
            max_size: 4,
            retries: 64,
        }
    }

    /// The checker the generator validates its own output with.
    pub fn checker(&self) -> &Checker<'a> {
        &self.checker
    }

    /// Generates a value inhabiting `ty` under `env`.
    pub fn generate(
        &self,
        rng: &mut Rng,
        ty: &RType,
        env: &LogicEnv,
        stats: &mut GenStats,
    ) -> Result<CVal, OracleError> {
        self.gen(rng, ty, env, self.max_size, stats)
    }

    fn gen(
        &self,
        rng: &mut Rng,
        ty: &RType,
        env: &LogicEnv,
        budget: usize,
        stats: &mut GenStats,
    ) -> Result<CVal, OracleError> {
        let Some(base) = ty.base_type() else {
            return Err(OracleError::Unsupported(format!(
                "cannot generate a value of non-scalar type {ty}"
            )));
        };
        match base {
            // Type variables are monomorphized to Int: the specs only
            // require a decidable total order on `α`, which integers give
            // us for free.
            BaseType::Int | BaseType::TypeVar(_) => {
                let half = self.max_size as i64 + 1;
                self.rejection_sample(rng, ty, env, stats, |rng| {
                    CVal::Int(rng.int_in(-half, half))
                })
            }
            BaseType::Bool => {
                self.rejection_sample(rng, ty, env, stats, |rng| CVal::Bool(rng.flip()))
            }
            BaseType::Data(dt_name, params) => {
                let Some(dt) = self.datatypes.get(dt_name) else {
                    return Err(OracleError::Unsupported(format!(
                        "unknown datatype {dt_name}"
                    )));
                };
                let refinement = ty.refinement();
                for _ in 0..self.retries.max(1) {
                    // Choose a constructor: scalars only once the budget is
                    // spent; recursive constructors weighted 3:1 otherwise
                    // (a fair coin would make half of all lists empty).
                    let choices: Vec<&synquid_types::Constructor> = dt
                        .constructors
                        .iter()
                        .filter(|c| budget > 0 || c.is_scalar())
                        .collect();
                    let choices = if choices.is_empty() {
                        dt.constructors.iter().collect()
                    } else {
                        choices
                    };
                    let total: u64 = choices
                        .iter()
                        .map(|c| if c.is_scalar() { 1 } else { 3 })
                        .sum();
                    let mut pick = rng.below(total.max(1));
                    let mut chosen = choices[0];
                    for c in &choices {
                        let w = if c.is_scalar() { 1 } else { 3 };
                        if pick < w {
                            chosen = c;
                            break;
                        }
                        pick -= w;
                    }
                    match self.gen_ctor(rng, chosen, params, env, budget, stats) {
                        Ok(value) => {
                            if refinement.is_true() {
                                return Ok(value);
                            }
                            let mut check_env = env.clone();
                            check_env.insert(VALUE_VAR.to_string(), LogicVal::of(&value));
                            if self.checker.interp().eval_bool(&refinement, &check_env)? {
                                return Ok(value);
                            }
                            stats.rejected += 1;
                        }
                        // A doomed constructor choice (e.g. Node under an
                        // unsatisfiable element refinement): try another.
                        Err(OracleError::GaveUp(_)) => stats.rejected += 1,
                        Err(e) => return Err(e),
                    }
                }
                Err(OracleError::GaveUp(format!(
                    "no {dt_name} value satisfying {} after {} attempts",
                    ty.refinement(),
                    self.retries
                )))
            }
        }
    }

    /// Builds one constructor application, generating fields left to
    /// right. Field types may reference earlier fields by binder name
    /// (`r: BST {a | x < ν}` references `x`), so each generated field is
    /// bound — under a fresh name, to avoid capture in nested unfoldings —
    /// before the next field's type is processed.
    fn gen_ctor(
        &self,
        rng: &mut Rng,
        ctor: &synquid_types::Constructor,
        params: &[RType],
        env: &LogicEnv,
        budget: usize,
        stats: &mut GenStats,
    ) -> Result<CVal, OracleError> {
        let instantiated = ctor.schema.instantiate(params);
        let (mut args, _ret) = instantiated.uncurry();
        let mut fields = Vec::with_capacity(args.len());
        let mut inner_env = env.clone();
        for i in 0..args.len() {
            let (orig_name, field_ty) = args[i].clone();
            let child_budget = budget.saturating_sub(1);
            let field = self.gen(rng, &field_ty, &inner_env, child_budget, stats)?;
            let fresh = format!("$g{}_{i}", rng.next_u64() & 0xFFFF);
            let replacement = Term::var(fresh.clone(), field_ty.sort());
            for arg in args.iter_mut().skip(i + 1) {
                arg.1 = arg.1.substitute_var(&orig_name, &replacement);
            }
            inner_env.insert(fresh, LogicVal::of(&field));
            fields.push(field);
        }
        Ok(CVal::Ctor(ctor.name.clone(), fields))
    }

    fn rejection_sample(
        &self,
        rng: &mut Rng,
        ty: &RType,
        env: &LogicEnv,
        stats: &mut GenStats,
        mut draw: impl FnMut(&mut Rng) -> CVal,
    ) -> Result<CVal, OracleError> {
        let refinement = ty.refinement();
        for _ in 0..self.retries.max(1) {
            let candidate = draw(rng);
            if refinement.is_true() {
                return Ok(candidate);
            }
            let mut check_env = env.clone();
            check_env.insert(VALUE_VAR.to_string(), LogicVal::of(&candidate));
            if self.checker.interp().eval_bool(&refinement, &check_env)? {
                return Ok(candidate);
            }
            stats.rejected += 1;
        }
        Err(OracleError::GaveUp(format!(
            "no scalar satisfying {} after {} attempts",
            ty.refinement(),
            self.retries
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synquid_logic::Sort;
    use synquid_types::{bst_datatype, increasing_list_datatype, list_datatype};

    fn dts() -> Datatypes {
        let mut dts = Datatypes::new();
        for dt in [list_datatype(), bst_datatype(), increasing_list_datatype()] {
            dts.insert(dt.name.clone(), dt);
        }
        dts
    }

    #[test]
    fn generated_values_inhabit_their_own_type() {
        let dts = dts();
        let generator = Generator::new(&dts);
        let mut rng = Rng::new(42);
        let mut stats = GenStats::default();
        for ty in [
            RType::int(),
            RType::bool(),
            RType::base(BaseType::Data("List".into(), vec![RType::int()])),
            RType::base(BaseType::Data("BST".into(), vec![RType::int()])),
            RType::base(BaseType::Data("IList".into(), vec![RType::int()])),
        ] {
            for _ in 0..50 {
                let v = generator
                    .generate(&mut rng, &ty, &LogicEnv::new(), &mut stats)
                    .expect("generation succeeds");
                assert_eq!(
                    generator.checker().check(&v, &ty, &LogicEnv::new()),
                    Ok(true),
                    "{v} should inhabit {ty}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let dts = dts();
        let generator = Generator::new(&dts);
        let ty = RType::base(BaseType::Data("BST".into(), vec![RType::int()]));
        let run = |seed: u64| {
            let mut rng = Rng::new(seed);
            let mut stats = GenStats::default();
            (0..20)
                .map(|_| {
                    generator
                        .generate(&mut rng, &ty, &LogicEnv::new(), &mut stats)
                        .unwrap()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ somewhere");
    }

    #[test]
    fn size_budget_bounds_datatype_depth() {
        let dts = dts();
        let mut generator = Generator::new(&dts);
        generator.max_size = 3;
        let ty = RType::base(BaseType::Data("List".into(), vec![RType::int()]));
        let mut rng = Rng::new(11);
        let mut stats = GenStats::default();
        for _ in 0..100 {
            let v = generator
                .generate(&mut rng, &ty, &LogicEnv::new(), &mut stats)
                .unwrap();
            // A list of depth budget 3 has at most 3 Cons cells.
            let spine = v.size();
            assert!(spine <= 2 * 3 + 1, "value too large: {v}");
        }
    }

    #[test]
    fn refined_scalars_are_rejection_sampled() {
        let dts = dts();
        let generator = Generator::new(&dts);
        // {Int | ν > 0}
        let ty = RType::refined(BaseType::Int, Term::value_var(Sort::Int).gt(Term::int(0)));
        let mut rng = Rng::new(3);
        let mut stats = GenStats::default();
        for _ in 0..50 {
            let v = generator
                .generate(&mut rng, &ty, &LogicEnv::new(), &mut stats)
                .unwrap();
            assert!(matches!(v, CVal::Int(n) if n > 0));
        }
        assert!(stats.rejected > 0, "some draws should have been rejected");
    }

    #[test]
    fn unsatisfiable_preconditions_give_up_cleanly() {
        let dts = dts();
        let generator = Generator::new(&dts);
        // {Int | ν < ν} is unsatisfiable.
        let nu = Term::value_var(Sort::Int);
        let ty = RType::refined(BaseType::Int, nu.clone().lt(nu));
        let mut rng = Rng::new(5);
        let mut stats = GenStats::default();
        assert!(matches!(
            generator.generate(&mut rng, &ty, &LogicEnv::new(), &mut stats),
            Err(OracleError::GaveUp(_))
        ));
    }
}
