//! A tiny deterministic RNG (SplitMix64).
//!
//! The oracle's determinism contract — `synquid fuzz --seed S` is
//! bit-reproducible across runs and machines — forbids wall-clock or OS
//! randomness, so the generator draws from this self-contained stream.
//! SplitMix64 passes BigCrush, needs eight bytes of state, and its whole
//! implementation fits on one page, which is exactly the auditability a
//! soundness harness wants from its entropy source.

/// A seeded SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a stream from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `0..n` (`n` must be positive). The modulo bias is
    /// irrelevant at the tiny ranges the generator uses.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// A draw in the inclusive range `lo..=hi`.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// A fair coin.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Splits off an independent stream (used to give each fuzz case its
    /// own stream, so shrinking one case cannot perturb the next).
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranged_draws_stay_in_range() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let n = rng.int_in(-5, 5);
            assert!((-5..=5).contains(&n));
            assert!(rng.below(3) < 3);
        }
    }

    #[test]
    fn split_streams_are_independent_of_later_parent_use() {
        let mut parent = Rng::new(9);
        let mut child = parent.split();
        let first = child.next_u64();
        parent.next_u64();
        let mut parent2 = Rng::new(9);
        let mut child2 = parent2.split();
        assert_eq!(child2.next_u64(), first);
    }
}
