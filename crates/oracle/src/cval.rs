//! First-order concrete values.
//!
//! The interpreter's [`Value`] includes closures, which have no logical
//! meaning; the oracle works on the first-order fragment [`CVal`], which
//! is totally ordered and hashable so it can populate the finite sets
//! that measures like `elems` and `keys` denote.

use std::fmt;
use synquid_core::Value;

/// A first-order runtime value: what a synthesized program may consume or
/// produce at a scalar goal type.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CVal {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A saturated datatype constructor.
    Ctor(String, Vec<CVal>),
}

impl CVal {
    /// Converts an interpreter value; `None` for closures, fixpoints, and
    /// partially applied builtins (not first-order data).
    pub fn from_value(value: &Value) -> Option<CVal> {
        match value {
            Value::Int(n) => Some(CVal::Int(*n)),
            Value::Bool(b) => Some(CVal::Bool(*b)),
            Value::Ctor(name, args) => {
                let args = args
                    .iter()
                    .map(CVal::from_value)
                    .collect::<Option<Vec<_>>>()?;
                Some(CVal::Ctor(name.clone(), args))
            }
            Value::Closure(..) | Value::Fixpoint(..) | Value::Builtin(..) => None,
        }
    }

    /// Converts back into an interpreter value.
    pub fn to_value(&self) -> Value {
        match self {
            CVal::Int(n) => Value::Int(*n),
            CVal::Bool(b) => Value::Bool(*b),
            CVal::Ctor(name, args) => {
                Value::Ctor(name.clone(), args.iter().map(CVal::to_value).collect())
            }
        }
    }

    /// The constructor name, if this is a constructor value.
    pub fn ctor_name(&self) -> Option<&str> {
        match self {
            CVal::Ctor(name, _) => Some(name),
            _ => None,
        }
    }

    /// The number of constructor applications in the value (the "size"
    /// the generator bounds and the shrinker minimizes).
    pub fn size(&self) -> usize {
        match self {
            CVal::Int(_) | CVal::Bool(_) => 1,
            CVal::Ctor(_, args) => 1 + args.iter().map(CVal::size).sum::<usize>(),
        }
    }
}

impl fmt::Display for CVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CVal::Int(n) => write!(f, "{n}"),
            CVal::Bool(b) => write!(f, "{b}"),
            CVal::Ctor(name, args) if args.is_empty() => write!(f, "{name}"),
            CVal::Ctor(name, args) => {
                write!(f, "({name}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_interpreter_values() {
        let list = Value::list(vec![Value::Int(1), Value::Int(2)]);
        let c = CVal::from_value(&list).unwrap();
        assert_eq!(c.to_value(), list);
        assert_eq!(c.to_string(), "(Cons 1 (Cons 2 Nil))");
        assert_eq!(c.size(), 5);
    }

    #[test]
    fn closures_are_not_first_order() {
        let closure = Value::Closure(
            "x".into(),
            std::rc::Rc::new(synquid_core::Program::var("x")),
            Default::default(),
        );
        assert!(CVal::from_value(&closure).is_none());
        assert!(CVal::from_value(&Value::Ctor("C".into(), vec![closure])).is_none());
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [
            CVal::Ctor("Nil".into(), vec![]),
            CVal::Int(3),
            CVal::Bool(true),
            CVal::Int(-1),
        ];
        vals.sort();
        assert_eq!(vals[0], CVal::Int(-1));
    }
}
