//! Property tests for the input generator, gated behind the `proptest`
//! feature so the default test run stays fast:
//!
//! ```text
//! cargo test -p synquid-oracle --features proptest
//! ```
//!
//! The properties are driven by the oracle's own seeded [`Rng`] rather
//! than the external `proptest` crate — the workspace must resolve
//! offline, so the dev-dependency stays commented out in `Cargo.toml`.
//! Each property sweeps a few hundred seeds; failures print the seed,
//! which reproduces the exact run (`Rng::new(seed)` is the only source
//! of randomness in the whole crate).
#![cfg(feature = "proptest")]

use synquid_logic::{Sort, Term};
use synquid_oracle::{CVal, Checker, GenStats, Generator, LogicEnv, Rng};
use synquid_types::{
    bst_datatype, increasing_list_datatype, list_datatype, BaseType, Datatypes, RType,
};

fn registry() -> Datatypes {
    let mut dts = Datatypes::new();
    for dt in [list_datatype(), bst_datatype(), increasing_list_datatype()] {
        dts.insert(dt.name.clone(), dt);
    }
    dts
}

/// Every scalar type the corpus goals can ask the generator for.
fn generable_types() -> Vec<RType> {
    vec![
        RType::int(),
        RType::bool(),
        RType::refined(BaseType::Int, Term::value_var(Sort::Int).gt(Term::int(0))),
        RType::base(BaseType::Data("List".into(), vec![RType::int()])),
        RType::base(BaseType::Data("BST".into(), vec![RType::int()])),
        RType::base(BaseType::Data("IList".into(), vec![RType::int()])),
    ]
}

/// Constructor nesting depth: the quantity the generator's budget bounds.
fn depth(v: &CVal) -> usize {
    match v {
        CVal::Int(_) | CVal::Bool(_) => 0,
        CVal::Ctor(_, fields) => 1 + fields.iter().map(depth).max().unwrap_or(0),
    }
}

/// Generated values always inhabit the very type they were generated
/// from — the generator and the checker agree on every sort, datatype
/// invariant, and refinement.
#[test]
fn prop_generated_values_satisfy_their_own_type() {
    let dts = registry();
    let gen = Generator::new(&dts);
    let checker = Checker::new(&dts);
    let env = LogicEnv::new();
    let mut stats = GenStats::default();
    for seed in 0..300u64 {
        let mut rng = Rng::new(seed);
        for ty in generable_types() {
            let Ok(v) = gen.generate(&mut rng, &ty, &env, &mut stats) else {
                continue; // rejection-sampling gave up: allowed, not wrong
            };
            assert_eq!(
                checker.check(&v, &ty, &env),
                Ok(true),
                "seed {seed}: generated {v} does not inhabit {ty}"
            );
        }
    }
}

/// Generated values respect the size budget: constructor nesting never
/// exceeds `max_size + 1` levels (the budget spends one level per
/// recursive constructor, plus the outermost application), and integers
/// stay inside the documented window.
#[test]
fn prop_generated_values_respect_the_size_budget() {
    let dts = registry();
    let env = LogicEnv::new();
    let mut stats = GenStats::default();
    for max_size in 0..5usize {
        let mut gen = Generator::new(&dts);
        gen.max_size = max_size;
        let half = max_size as i64 + 1;
        for seed in 0..100u64 {
            let mut rng = Rng::new(seed);
            for ty in generable_types() {
                let Ok(v) = gen.generate(&mut rng, &ty, &env, &mut stats) else {
                    continue;
                };
                assert!(
                    depth(&v) <= max_size + 1,
                    "seed {seed}, max_size {max_size}: {v} is {} deep",
                    depth(&v)
                );
                if let CVal::Int(n) = v {
                    assert!(
                        (-half..=half).contains(&n),
                        "seed {seed}: integer {n} escaped the ±{half} window"
                    );
                }
            }
        }
    }
}

/// The same seed always produces the same value stream — the
/// determinism contract `synquid fuzz` relies on for reproduction.
#[test]
fn prop_generation_is_a_pure_function_of_the_seed() {
    let dts = registry();
    let gen = Generator::new(&dts);
    let env = LogicEnv::new();
    for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
        let run = || {
            let mut rng = Rng::new(seed);
            let mut stats = GenStats::default();
            generable_types()
                .iter()
                .map(|ty| {
                    gen.generate(&mut rng, ty, &env, &mut stats)
                        .map(|v| v.to_string())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "seed {seed}: generation is not deterministic");
    }
}

/// Every shrink candidate is strictly simpler than its parent under the
/// (size, lexicographic) order — the well-founded measure that makes the
/// greedy shrink loop terminate.
#[test]
fn prop_shrink_candidates_strictly_decrease() {
    let dts = registry();
    let gen = Generator::new(&dts);
    let env = LogicEnv::new();
    let mut stats = GenStats::default();
    for seed in 0..200u64 {
        let mut rng = Rng::new(seed);
        for ty in generable_types() {
            let Ok(v) = gen.generate(&mut rng, &ty, &env, &mut stats) else {
                continue;
            };
            for c in synquid_oracle::shrink::candidates(&v) {
                let smaller = c.size() < v.size()
                    || (c.size() == v.size() && format!("{c}") < format!("{v}"));
                assert!(smaller, "seed {seed}: candidate {c} not simpler than {v}");
            }
        }
    }
}
