//! Predicate unknowns and liquid assignments.
//!
//! A *predicate unknown* `P_i` stands for an as-yet-undetermined refinement
//! or path condition. Its possible valuations are *liquid formulas*:
//! conjunctions of atoms drawn from the unknown's qualifier space
//! ([`QSpace`]), which was instantiated from the logical qualifiers `Q` in
//! the environment where the unknown was created.

use std::collections::{BTreeMap, BTreeSet};
use synquid_logic::{QSpace, Substitution, Term, UnknownId};

/// Metadata about one predicate unknown.
#[derive(Debug, Clone)]
pub struct UnknownInfo {
    /// The unknown's identifier (as used in [`Term::Unknown`]).
    pub id: UnknownId,
    /// Human-readable provenance (e.g. `"P3 <- cond of branch in replicate"`).
    pub name: String,
    /// The atoms this unknown's valuation may conjoin.
    pub qspace: QSpace,
    /// The logical assumptions of the environment in which the unknown was
    /// created; a valuation is *consistent* iff it is satisfiable together
    /// with this assumption (used by liquid abduction to discard
    /// contradictory path conditions).
    pub env_assumption: Term,
}

/// Registry of all predicate unknowns created during one synthesis /
/// type-checking problem.
#[derive(Debug, Clone, Default)]
pub struct UnknownRegistry {
    infos: BTreeMap<UnknownId, UnknownInfo>,
    next: UnknownId,
}

impl UnknownRegistry {
    /// Creates an empty registry.
    pub fn new() -> UnknownRegistry {
        UnknownRegistry::default()
    }

    /// Allocates a fresh unknown with the given qualifier space and
    /// environment assumption.
    pub fn fresh(
        &mut self,
        name: impl Into<String>,
        qspace: QSpace,
        env_assumption: Term,
    ) -> UnknownId {
        let id = self.next;
        self.next += 1;
        self.infos.insert(
            id,
            UnknownInfo {
                id,
                name: name.into(),
                qspace,
                env_assumption,
            },
        );
        id
    }

    /// Looks up an unknown.
    ///
    /// # Panics
    /// Panics if the unknown was not created by this registry.
    pub fn info(&self, id: UnknownId) -> &UnknownInfo {
        self.infos
            .get(&id)
            .unwrap_or_else(|| panic!("unknown P{id} not registered"))
    }

    /// True if the registry knows this unknown.
    pub fn contains(&self, id: UnknownId) -> bool {
        self.infos.contains_key(&id)
    }

    /// Number of registered unknowns.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// True if no unknowns have been created.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Iterates over all unknowns.
    pub fn iter(&self) -> impl Iterator<Item = &UnknownInfo> {
        self.infos.values()
    }
}

/// A liquid assignment `L`: a valuation (set of selected qualifier-space
/// atoms) for every predicate unknown. Unknowns that have no entry are
/// implicitly mapped to the empty conjunction `⊤` — the weakest valuation,
/// which is where the greatest-fixpoint iteration starts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Assignment {
    valuations: BTreeMap<UnknownId, BTreeSet<usize>>,
}

impl Assignment {
    /// The empty (all-`⊤`) assignment.
    pub fn top() -> Assignment {
        Assignment::default()
    }

    /// The selected atom indices for an unknown (empty = `⊤`).
    pub fn valuation(&self, id: UnknownId) -> BTreeSet<usize> {
        self.valuations.get(&id).cloned().unwrap_or_default()
    }

    /// Adds atoms to an unknown's valuation (strengthening it).
    pub fn strengthen(&mut self, id: UnknownId, atoms: impl IntoIterator<Item = usize>) {
        self.valuations.entry(id).or_default().extend(atoms);
    }

    /// The valuation of an unknown as a formula, with a pending
    /// substitution applied.
    pub fn valuation_term(
        &self,
        registry: &UnknownRegistry,
        id: UnknownId,
        pending: &Substitution,
    ) -> Term {
        let info = registry.info(id);
        let conj = info.qspace.conjunction_of(&self.valuation(id));
        conj.substitute(pending)
    }

    /// Replaces every unknown occurrence in `term` by its valuation under
    /// this assignment (the `⟦ψ⟧L` operation of the paper).
    pub fn apply(&self, registry: &UnknownRegistry, term: &Term) -> Term {
        term.apply_unknowns(&|id, pending| self.valuation_term(registry, id, pending))
    }

    /// True if `other` assigns a superset of atoms to every unknown.
    pub fn is_stronger_or_equal(&self, other: &Assignment) -> bool {
        other.valuations.iter().all(|(id, atoms)| {
            let mine = self.valuation(*id);
            atoms.is_subset(&mine)
        })
    }

    /// All unknowns with a non-trivial valuation.
    pub fn assigned_unknowns(&self) -> impl Iterator<Item = UnknownId> + '_ {
        self.valuations
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(id, _)| *id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synquid_logic::{Sort, VALUE_VAR};

    fn simple_registry() -> (UnknownRegistry, UnknownId) {
        let mut reg = UnknownRegistry::new();
        let n = Term::var("n", Sort::Int);
        let space = QSpace::from_atoms(vec![
            n.clone().le(Term::int(0)),
            Term::int(0).lt(n.clone()),
            Term::value_var(Sort::Int).ge(Term::int(0)),
        ]);
        let id = reg.fresh("P0", space, Term::tt());
        (reg, id)
    }

    #[test]
    fn fresh_unknowns_get_distinct_ids() {
        let mut reg = UnknownRegistry::new();
        let a = reg.fresh("a", QSpace::default(), Term::tt());
        let b = reg.fresh("b", QSpace::default(), Term::tt());
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn top_assignment_maps_unknowns_to_true() {
        let (reg, id) = simple_registry();
        let l = Assignment::top();
        let t = l.apply(&reg, &Term::unknown(id));
        assert!(t.is_true());
    }

    #[test]
    fn strengthened_valuation_is_a_conjunction() {
        let (reg, id) = simple_registry();
        let mut l = Assignment::top();
        l.strengthen(id, [0, 2]);
        let t = l.apply(&reg, &Term::unknown(id));
        let n = Term::var("n", Sort::Int);
        assert_eq!(
            t,
            n.le(Term::int(0))
                .and(Term::value_var(Sort::Int).ge(Term::int(0)))
        );
    }

    #[test]
    fn pending_substitution_is_applied_to_valuation() {
        let (reg, id) = simple_registry();
        let mut l = Assignment::top();
        l.strengthen(id, [2]);
        // P0[x/ν] where the valuation contains ν ≥ 0 becomes x ≥ 0.
        let occurrence = Term::unknown(id).substitute_value(&Term::var("x", Sort::Int));
        let t = l.apply(&reg, &occurrence);
        assert_eq!(t, Term::var("x", Sort::Int).ge(Term::int(0)));
        let _ = VALUE_VAR;
    }

    #[test]
    fn strength_ordering() {
        let (_, id) = simple_registry();
        let mut weak = Assignment::top();
        let mut strong = Assignment::top();
        strong.strengthen(id, [0]);
        assert!(strong.is_stronger_or_equal(&weak));
        assert!(!weak.is_stronger_or_equal(&strong));
        weak.strengthen(id, [0, 1]);
        assert!(weak.is_stronger_or_equal(&strong));
    }
}
