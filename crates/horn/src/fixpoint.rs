//! The greatest-fixpoint Horn constraint solver (`Horn` / `Strengthen` of
//! Fig. 6), with the MUSFIX strengthening backend of Sec. 3.6 and a naive
//! breadth-first backend used for the paper's T-nmus ablation.
//!
//! The solver is *incremental*: local liquid type checking adds Horn
//! constraints one at a time (in an order where negative occurrences of an
//! unknown precede positive ones) and expects unsatisfiability — a type
//! error — to be detected as early as possible. Because several weakest
//! strengthenings may exist, the solver maintains a set of *candidate*
//! assignments and explores all alternatives, mirroring the behaviour
//! described in the paper.

use crate::unknowns::{Assignment, UnknownRegistry};
use std::collections::{BTreeMap, BTreeSet};
use synquid_logic::{QSpace, Substitution, Term, UnknownId};
use synquid_solver::{enumerate_mus_smt, MusConfig, Smt, SmtResult};

/// A Horn constraint `lhs ⇒ rhs`; both sides may mention predicate
/// unknowns (conjunctively).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HornConstraint {
    /// Antecedent.
    pub lhs: Term,
    /// Consequent.
    pub rhs: Term,
    /// Provenance string used in error messages.
    pub label: String,
}

impl HornConstraint {
    /// Creates a constraint.
    pub fn new(lhs: Term, rhs: Term, label: impl Into<String>) -> HornConstraint {
        HornConstraint {
            lhs,
            rhs,
            label: label.into(),
        }
    }
}

/// Which `Strengthen` implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrengthenBackend {
    /// MUS-enumeration-based strengthening (the paper's MUSFIX).
    #[default]
    Musfix,
    /// Naive breadth-first search over candidate subsets by increasing
    /// size (the baseline the paper compares against; expected to blow up
    /// on condition-abduction-heavy benchmarks).
    NaiveBfs,
}

/// Configuration of the fixpoint solver.
#[derive(Debug, Clone)]
pub struct FixpointConfig {
    /// Strengthening backend.
    pub backend: StrengthenBackend,
    /// Maximum number of alternative assignments kept alive.
    pub max_candidates: usize,
    /// Budgets for MUS enumeration.
    pub mus: MusConfig,
    /// Maximum subset size explored by the naive backend.
    pub bfs_max_size: usize,
    /// Maximum number of subsets examined by the naive backend per
    /// strengthening step.
    pub bfs_max_subsets: usize,
    /// Safety cap on fixpoint iterations per repair.
    pub max_iterations: usize,
}

impl Default for FixpointConfig {
    fn default() -> Self {
        FixpointConfig {
            backend: StrengthenBackend::Musfix,
            max_candidates: 4,
            mus: MusConfig::default(),
            bfs_max_size: 3,
            bfs_max_subsets: 20_000,
            max_iterations: 200,
        }
    }
}

/// Statistics of the fixpoint solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixpointStats {
    /// Total constraints added.
    pub constraints: usize,
    /// Number of strengthening steps performed.
    pub strengthenings: usize,
    /// Number of validity checks of individual constraints.
    pub validity_checks: usize,
}

/// Error returned when the constraint system has no liquid solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HornError {
    /// The label of the constraint that could not be satisfied.
    pub constraint: String,
}

impl std::fmt::Display for HornError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no liquid assignment satisfies constraint: {}",
            self.constraint
        )
    }
}

impl std::error::Error for HornError {}

/// The incremental greatest-fixpoint solver.
#[derive(Debug, Clone)]
pub struct FixpointSolver {
    /// Registry of predicate unknowns (shared with the type checker).
    pub registry: UnknownRegistry,
    constraints: Vec<HornConstraint>,
    candidates: Vec<Assignment>,
    config: FixpointConfig,
    stats: FixpointStats,
}

impl Default for FixpointSolver {
    fn default() -> Self {
        FixpointSolver::new(FixpointConfig::default())
    }
}

impl FixpointSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: FixpointConfig) -> FixpointSolver {
        FixpointSolver {
            registry: UnknownRegistry::new(),
            constraints: Vec::new(),
            candidates: vec![Assignment::top()],
            config,
            stats: FixpointStats::default(),
        }
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> FixpointStats {
        self.stats
    }

    /// Allocates a fresh predicate unknown.
    pub fn fresh_unknown(
        &mut self,
        name: impl Into<String>,
        qspace: QSpace,
        env_assumption: Term,
    ) -> UnknownId {
        self.registry.fresh(name, qspace, env_assumption)
    }

    /// The current (weakest known) assignment.
    pub fn assignment(&self) -> &Assignment {
        self.candidates
            .first()
            .expect("solver always keeps at least one candidate or has failed")
    }

    /// All currently viable candidate assignments.
    pub fn candidates(&self) -> &[Assignment] {
        &self.candidates
    }

    /// Applies the current assignment to a term (replacing unknowns by
    /// their valuations).
    pub fn apply(&self, term: &Term) -> Term {
        self.assignment().apply(&self.registry, term)
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[HornConstraint] {
        &self.constraints
    }

    /// Adds a constraint and repairs the candidate assignments. Returns an
    /// error if no candidate can be strengthened to satisfy all constraints
    /// added so far — i.e. a type error has been detected.
    pub fn add_constraint(&mut self, c: HornConstraint, smt: &mut Smt) -> Result<(), HornError> {
        self.stats.constraints += 1;
        self.constraints.push(c.clone());
        let mut new_candidates = Vec::new();
        let candidates = std::mem::take(&mut self.candidates);
        for cand in candidates {
            // Fast path: if the new constraint already holds under this
            // candidate, the candidate is unchanged and the previously
            // satisfied constraints need not be re-verified.
            if self.constraint_holds(&cand, &c, smt) {
                if !new_candidates.contains(&cand) {
                    new_candidates.push(cand);
                }
                if new_candidates.len() >= self.config.max_candidates {
                    break;
                }
                continue;
            }
            let repaired = self.repair(cand, smt);
            for r in repaired {
                if !new_candidates.contains(&r) {
                    new_candidates.push(r);
                }
            }
            if new_candidates.len() >= self.config.max_candidates {
                break;
            }
        }
        new_candidates.truncate(self.config.max_candidates);
        if new_candidates.is_empty() {
            // Leave the solver in a usable (if failed) state for callers
            // that want to continue with a different program candidate.
            self.candidates = vec![Assignment::top()];
            self.constraints.pop();
            return Err(HornError {
                constraint: c.label,
            });
        }
        self.candidates = new_candidates;
        Ok(())
    }

    /// Checks that every constraint holds under the current assignment
    /// (useful as a final sanity check after synthesis).
    pub fn check_all(&mut self, smt: &mut Smt) -> bool {
        let assignment = self.assignment().clone();
        self.constraints
            .clone()
            .iter()
            .all(|c| self.constraint_holds(&assignment, c, smt))
    }

    // -----------------------------------------------------------------
    // Fixpoint iteration
    // -----------------------------------------------------------------

    /// Repairs a single assignment with respect to all constraints,
    /// returning every (weakest) consistent strengthening that validates
    /// them, or an empty vector if none exists.
    fn repair(&mut self, start: Assignment, smt: &mut Smt) -> Vec<Assignment> {
        let mut worklist = vec![start];
        let mut results: Vec<Assignment> = Vec::new();
        let mut iterations = 0usize;
        while let Some(current) = worklist.pop() {
            iterations += 1;
            if iterations > self.config.max_iterations {
                break;
            }
            let violated = self
                .constraints
                .clone()
                .into_iter()
                .find(|c| !self.constraint_holds(&current, c, smt));
            match violated {
                None => {
                    if !results.contains(&current) {
                        results.push(current);
                    }
                    if results.len() >= self.config.max_candidates {
                        break;
                    }
                }
                Some(c) => {
                    let strengthened = self.strengthen(&current, &c, smt);
                    worklist.extend(strengthened);
                }
            }
        }
        results
    }

    fn constraint_holds(&mut self, l: &Assignment, c: &HornConstraint, smt: &mut Smt) -> bool {
        self.stats.validity_checks += 1;
        let lhs = l.apply(&self.registry, &c.lhs);
        let rhs = l.apply(&self.registry, &c.rhs);
        smt.entails(&lhs, &rhs)
    }

    /// One `Strengthen` step: all weakest consistent strengthenings of `l`
    /// that validate `c`.
    fn strengthen(&mut self, l: &Assignment, c: &HornConstraint, smt: &mut Smt) -> Vec<Assignment> {
        // The liquid-abduction phase: everything below an occurrence of
        // `strengthen` that is not a nested SMT/MUS span is charged to
        // `Abduction` (qualifier filtering, valuation bookkeeping, …).
        let _span = synquid_telemetry::span(synquid_telemetry::Phase::Abduction);
        self.stats.strengthenings += 1;
        // Occurrences of unknowns on the left-hand side, with their pending
        // substitutions.
        let occurrences = unknown_occurrences(&c.lhs);
        if occurrences.is_empty() {
            return Vec::new();
        }
        // Candidate atoms: for every occurrence, every atom of its space
        // that is not already selected, with the occurrence's substitution
        // applied.
        let mut soft: Vec<Term> = Vec::new();
        let mut tags: Vec<(UnknownId, usize)> = Vec::new();
        for (id, pending) in &occurrences {
            if !self.registry.contains(*id) {
                continue;
            }
            let selected = l.valuation(*id);
            let info = self.registry.info(*id);
            for (atom_idx, atom) in info.qspace.atoms().iter().enumerate() {
                if selected.contains(&atom_idx) {
                    continue;
                }
                soft.push(atom.substitute(pending));
                tags.push((*id, atom_idx));
            }
        }
        let lhs_applied = l.apply(&self.registry, &c.lhs);
        let rhs_applied = l.apply(&self.registry, &c.rhs);
        let background = lhs_applied;
        // The negated right-hand side participates in every MUS (the
        // MUSFIX modification of MARCO described in the paper) so that the
        // enumerator never returns a strengthening that is unsatisfiable on
        // its own.
        soft.push(rhs_applied.not());
        let required_idx = soft.len() - 1;
        let required: BTreeSet<usize> = [required_idx].into_iter().collect();

        let additions_sets: Vec<BTreeSet<usize>> = match self.config.backend {
            StrengthenBackend::Musfix => {
                enumerate_mus_smt(smt, &background, &soft, &required, self.config.mus)
                    .into_iter()
                    .map(|mus| mus.into_iter().filter(|i| *i != required_idx).collect())
                    .filter(|s: &BTreeSet<usize>| !s.is_empty())
                    .collect()
            }
            StrengthenBackend::NaiveBfs => {
                self.naive_strengthen(&background, &soft, required_idx, smt)
            }
        };

        // Prune semantically redundant alternatives: drop a strengthening
        // whose conjunction implies another one's (keep the weakest).
        let pruned = prune_redundant(&additions_sets, &soft, smt);

        let mut out = Vec::new();
        for additions in pruned {
            let mut grouped: BTreeMap<UnknownId, Vec<usize>> = BTreeMap::new();
            for idx in &additions {
                let (id, atom_idx) = tags[*idx];
                grouped.entry(id).or_default().push(atom_idx);
            }
            let mut next = l.clone();
            for (id, atoms) in &grouped {
                next.strengthen(*id, atoms.iter().copied());
            }
            // Consistency: each strengthened unknown's valuation must be
            // satisfiable together with its environment assumption.
            let consistent = grouped.keys().all(|id| {
                let info = self.registry.info(*id);
                let val = next.valuation_term(&self.registry, *id, &Substitution::new());
                smt.check_sat_conj(&[info.env_assumption.clone(), val]) != SmtResult::Unsat
            });
            if consistent && !out.contains(&next) {
                out.push(next);
            }
        }
        out
    }

    /// The naive breadth-first `Strengthen`: try all subsets of candidate
    /// atoms by increasing size.
    fn naive_strengthen(
        &mut self,
        background: &Term,
        soft: &[Term],
        required_idx: usize,
        smt: &mut Smt,
    ) -> Vec<BTreeSet<usize>> {
        let candidate_indices: Vec<usize> =
            (0..soft.len()).filter(|i| *i != required_idx).collect();
        let mut found: Vec<BTreeSet<usize>> = Vec::new();
        let mut examined = 0usize;
        for size in 1..=self.config.bfs_max_size.min(candidate_indices.len()) {
            let mut subset_iter = SubsetIter::new(candidate_indices.len(), size);
            while let Some(subset) = subset_iter.next_subset() {
                examined += 1;
                if examined > self.config.bfs_max_subsets {
                    return found;
                }
                let chosen: BTreeSet<usize> =
                    subset.iter().map(|i| candidate_indices[*i]).collect();
                // Skip supersets of already-found strengthenings (they are
                // not minimal).
                if found.iter().any(|f| f.is_subset(&chosen)) {
                    continue;
                }
                let mut formulas = vec![background.clone(), soft[required_idx].clone()];
                formulas.extend(chosen.iter().map(|i| soft[*i].clone()));
                if smt.check_sat_conj(&formulas) == SmtResult::Unsat {
                    found.push(chosen);
                }
            }
            if !found.is_empty() {
                // All strictly larger subsets are supersets of some found
                // one or weaker candidates; the paper's baseline also stops
                // at the first size that yields solutions.
                break;
            }
        }
        found
    }
}

/// Collects `(unknown, pending substitution)` occurrences in a term.
fn unknown_occurrences(t: &Term) -> Vec<(UnknownId, Substitution)> {
    let mut out: Vec<(UnknownId, Substitution)> = Vec::new();
    collect_occurrences(t, &mut out);
    out
}

fn collect_occurrences(t: &Term, out: &mut Vec<(UnknownId, Substitution)>) {
    match t {
        Term::Unknown(id, pending) if !out.iter().any(|(i, p)| i == id && p == pending) => {
            out.push((*id, pending.clone()));
        }
        Term::Unary(_, a) => collect_occurrences(a, out),
        Term::Binary(_, a, b) => {
            collect_occurrences(a, out);
            collect_occurrences(b, out);
        }
        Term::Ite(c, a, b) => {
            collect_occurrences(c, out);
            collect_occurrences(a, out);
            collect_occurrences(b, out);
        }
        Term::App(_, args, _) | Term::SetLit(_, args) => {
            for a in args {
                collect_occurrences(a, out);
            }
        }
        _ => {}
    }
}

/// Removes strengthenings that are semantically stronger than another
/// alternative (the MUSFIX redundancy pruning described in the paper).
fn prune_redundant(
    alternatives: &[BTreeSet<usize>],
    soft: &[Term],
    smt: &mut Smt,
) -> Vec<BTreeSet<usize>> {
    if alternatives.len() <= 1 || alternatives.len() > 8 {
        return alternatives.to_vec();
    }
    let conj = |s: &BTreeSet<usize>| Term::conjunction(s.iter().map(|i| soft[*i].clone()));
    let mut keep = vec![true; alternatives.len()];
    for i in 0..alternatives.len() {
        for j in 0..alternatives.len() {
            if i == j || !keep[i] || !keep[j] {
                continue;
            }
            // Drop i if it implies j (i is stronger / redundant), unless j
            // would also be dropped against i (equivalent sets: keep the
            // first).
            if smt.entails(&conj(&alternatives[i]), &conj(&alternatives[j]))
                && !(j < i && smt.entails(&conj(&alternatives[j]), &conj(&alternatives[i])))
                && alternatives[i] != alternatives[j]
            {
                keep[i] = false;
            }
        }
    }
    alternatives
        .iter()
        .zip(keep)
        .filter_map(|(a, k)| if k { Some(a.clone()) } else { None })
        .collect()
}

/// Iterator over all `size`-element subsets of `0..n` in lexicographic
/// order (used by the naive strengthening backend).
struct SubsetIter {
    n: usize,
    current: Vec<usize>,
    done: bool,
}

impl SubsetIter {
    fn new(n: usize, size: usize) -> SubsetIter {
        if size > n || size == 0 {
            return SubsetIter {
                n,
                current: Vec::new(),
                done: true,
            };
        }
        SubsetIter {
            n,
            current: (0..size).collect(),
            done: false,
        }
    }

    fn next_subset(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let result = self.current.clone();
        // Advance.
        let k = self.current.len();
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.current[i] != i + self.n - k {
                self.current[i] += 1;
                for j in (i + 1)..k {
                    self.current[j] = self.current[j - 1] + 1;
                }
                break;
            }
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synquid_logic::Sort;

    fn n() -> Term {
        Term::var("n", Sort::Int)
    }

    fn len_v() -> Term {
        let list = Sort::data("List", vec![Sort::var("a")]);
        Term::app("len", vec![Term::value_var(list)], Sort::Int)
    }

    fn replicate_qspace() -> QSpace {
        QSpace::from_atoms(vec![
            n().le(Term::int(0)),
            Term::int(0).le(n()),
            n().neq(Term::int(0)),
            Term::int(0).lt(n()),
        ])
    }

    #[test]
    fn subset_iterator_enumerates_all_combinations() {
        let mut it = SubsetIter::new(4, 2);
        let mut count = 0;
        while it.next_subset().is_some() {
            count += 1;
        }
        assert_eq!(count, 6);
        let mut it = SubsetIter::new(3, 0);
        assert!(it.next_subset().is_none());
    }

    #[test]
    fn valid_constraint_needs_no_strengthening() {
        let mut solver = FixpointSolver::default();
        let mut smt = Smt::new();
        let c = HornConstraint::new(n().ge(Term::int(1)), n().ge(Term::int(0)), "warmup");
        assert!(solver.add_constraint(c, &mut smt).is_ok());
        assert_eq!(solver.assignment(), &Assignment::top());
    }

    #[test]
    fn abduces_branch_condition_for_replicate_nil() {
        // Γ = n: Nat; P0  ⊢  {len ν = 0} <: {len ν = n}
        // Horn constraint: 0 ≤ n ∧ P0 ∧ len ν = 0 ⇒ len ν = n
        // Weakest strengthening of P0: n ≤ 0.
        let mut solver = FixpointSolver::default();
        let mut smt = Smt::new();
        let p0 = solver.fresh_unknown("P0", replicate_qspace(), Term::int(0).le(n()));
        let lhs = Term::int(0)
            .le(n())
            .and(Term::unknown(p0))
            .and(len_v().eq(Term::int(0)));
        let rhs = len_v().eq(n());
        solver
            .add_constraint(HornConstraint::new(lhs, rhs, "replicate-nil"), &mut smt)
            .expect("strengthening should succeed");
        let val = solver.apply(&Term::unknown(p0));
        // The abduced condition must entail n ≤ 0 (it may be exactly n ≤ 0).
        assert!(
            smt.entails(&val, &n().le(Term::int(0))),
            "got valuation {val}"
        );
        // And it must be consistent with 0 ≤ n.
        assert!(smt.check_sat_conj(&[Term::int(0).le(n()), val]) == SmtResult::Sat);
    }

    #[test]
    fn unsatisfiable_constraint_reports_error() {
        let mut solver = FixpointSolver::default();
        let mut smt = Smt::new();
        // No unknowns on the left: nothing to strengthen.
        let c = HornConstraint::new(n().ge(Term::int(0)), n().ge(Term::int(1)), "bad");
        let err = solver.add_constraint(c, &mut smt).unwrap_err();
        assert!(err.constraint.contains("bad"));
        // The solver remains usable afterwards.
        let ok = HornConstraint::new(n().ge(Term::int(1)), n().ge(Term::int(0)), "good");
        assert!(solver.add_constraint(ok, &mut smt).is_ok());
    }

    #[test]
    fn later_positive_occurrence_respects_earlier_strengthening() {
        // First: P0 must entail n ≤ 0 (negative occurrence).
        // Then: P0 appears positively and we check the already-strengthened
        // valuation still works; the incremental solver re-checks all
        // constraints.
        let mut solver = FixpointSolver::default();
        let mut smt = Smt::new();
        let p0 = solver.fresh_unknown("P0", replicate_qspace(), Term::int(0).le(n()));
        let c1 = HornConstraint::new(
            Term::int(0)
                .le(n())
                .and(Term::unknown(p0))
                .and(len_v().eq(Term::int(0))),
            len_v().eq(n()),
            "negative",
        );
        solver.add_constraint(c1, &mut smt).unwrap();
        // Now require that the valuation of P0 is implied by n ≤ -1 ∧ 0 ≤ n
        // (an inconsistent premise) and by n = 0; both hold for P0 = n ≤ 0.
        let c2 = HornConstraint::new(n().eq(Term::int(0)), Term::unknown(p0), "positive");
        assert!(solver.add_constraint(c2, &mut smt).is_ok());
    }

    #[test]
    fn positive_occurrence_can_fail() {
        let mut solver = FixpointSolver::default();
        let mut smt = Smt::new();
        let p0 = solver.fresh_unknown("P0", replicate_qspace(), Term::int(0).le(n()));
        let c1 = HornConstraint::new(
            Term::int(0)
                .le(n())
                .and(Term::unknown(p0))
                .and(len_v().eq(Term::int(0))),
            len_v().eq(n()),
            "negative",
        );
        solver.add_constraint(c1, &mut smt).unwrap();
        // n ≥ 5 does not imply n ≤ 0, and P0 cannot be weakened: error.
        let c2 = HornConstraint::new(n().ge(Term::int(5)), Term::unknown(p0), "positive-bad");
        assert!(solver.add_constraint(c2, &mut smt).is_err());
    }

    #[test]
    fn naive_backend_finds_the_same_condition() {
        let config = FixpointConfig {
            backend: StrengthenBackend::NaiveBfs,
            ..FixpointConfig::default()
        };
        let mut solver = FixpointSolver::new(config);
        let mut smt = Smt::new();
        let p0 = solver.fresh_unknown("P0", replicate_qspace(), Term::int(0).le(n()));
        let lhs = Term::int(0)
            .le(n())
            .and(Term::unknown(p0))
            .and(len_v().eq(Term::int(0)));
        let rhs = len_v().eq(n());
        solver
            .add_constraint(HornConstraint::new(lhs, rhs, "replicate-nil"), &mut smt)
            .expect("strengthening should succeed");
        let val = solver.apply(&Term::unknown(p0));
        assert!(smt.entails(&val, &n().le(Term::int(0))));
    }

    #[test]
    fn pending_substitutions_are_respected_in_strengthening() {
        // P0 is created over ν but occurs as P0[m/ν]; the strengthening must
        // therefore be discovered through the substituted atoms.
        let mut solver = FixpointSolver::default();
        let mut smt = Smt::new();
        let space = QSpace::from_atoms(vec![
            Term::value_var(Sort::Int).ge(Term::int(0)),
            Term::value_var(Sort::Int).le(Term::int(0)),
        ]);
        let p0 = solver.fresh_unknown("P0", space, Term::tt());
        let m = Term::var("m", Sort::Int);
        let occurrence = Term::unknown(p0).substitute_value(&m);
        // P0[m/ν] ∧ m ≥ -3 ⇒ m ≤ 0: requires selecting the atom ν ≤ 0.
        let c = HornConstraint::new(
            occurrence.clone().and(m.clone().ge(Term::int(-3))),
            m.clone().le(Term::int(0)),
            "subst",
        );
        solver.add_constraint(c, &mut smt).unwrap();
        let val = solver.apply(&occurrence);
        assert!(smt.entails(&val, &m.le(Term::int(0))), "got {val}");
    }

    #[test]
    fn stats_count_work() {
        let mut solver = FixpointSolver::default();
        let mut smt = Smt::new();
        let c = HornConstraint::new(n().ge(Term::int(1)), n().ge(Term::int(0)), "warmup");
        solver.add_constraint(c, &mut smt).unwrap();
        assert_eq!(solver.stats().constraints, 1);
        assert!(solver.stats().validity_checks >= 1);
    }
}
