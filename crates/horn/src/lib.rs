//! # synquid-horn
//!
//! The liquid fixpoint layer of the Synquid reproduction: predicate
//! unknowns, liquid assignments, Horn constraints, and the incremental
//! greatest-fixpoint solver with MUSFIX strengthening (Sec. 3.6 of
//! "Program Synthesis from Polymorphic Refinement Types").
//!
//! Local liquid type checking reduces subtyping between scalar types to
//! Horn constraints of the form `ψ ⇒ ψ'`, where each side is the
//! conjunction of a known formula and zero or more predicate unknowns.
//! This crate finds the *weakest* assignment of liquid formulas
//! (conjunctions of qualifier instantiations) to those unknowns that
//! validates every constraint, or reports that none exists. Weakest-first
//! search is what makes liquid abduction (branch-condition inference) and
//! polymorphic instantiation work.
//!
//! ## Example: abducing `n ≤ 0` for the `Nil` branch of `replicate`
//!
//! ```
//! use synquid_logic::{QSpace, Sort, Term};
//! use synquid_horn::{FixpointSolver, HornConstraint};
//! use synquid_solver::Smt;
//!
//! let n = Term::var("n", Sort::Int);
//! let len_v = Term::app(
//!     "len",
//!     vec![Term::value_var(Sort::data("List", vec![Sort::var("a")]))],
//!     Sort::Int,
//! );
//! let mut solver = FixpointSolver::default();
//! let mut smt = Smt::new();
//! let space = QSpace::from_atoms(vec![n.clone().le(Term::int(0)), Term::int(0).lt(n.clone())]);
//! let p0 = solver.fresh_unknown("P0", space, Term::int(0).le(n.clone()));
//! let lhs = Term::int(0).le(n.clone()).and(Term::unknown(p0)).and(len_v.clone().eq(Term::int(0)));
//! solver
//!     .add_constraint(HornConstraint::new(lhs, len_v.eq(n.clone()), "replicate-nil"), &mut smt)
//!     .unwrap();
//! let abduced = solver.apply(&Term::unknown(p0));
//! assert!(smt.entails(&abduced, &n.le(Term::int(0))));
//! ```

pub mod fixpoint;
pub mod unknowns;

pub use fixpoint::{
    FixpointConfig, FixpointSolver, FixpointStats, HornConstraint, HornError, StrengthenBackend,
};
pub use unknowns::{Assignment, UnknownInfo, UnknownRegistry};
