//! Phase-attributed telemetry for the synthesis pipeline.
//!
//! Two independent instruments share this crate:
//!
//! * a hierarchical **span profiler** ([`span`]): scopes in the
//!   synthesizer, the type checker and the SMT solver open a span for one
//!   of the fixed [`Phase`]s; elapsed wall time is aggregated per phase
//!   into a thread-local [`PhaseProfile`]. Attribution is *exclusive*
//!   (self-time): time spent in a nested span is charged to the nested
//!   span's phase only, so the per-phase totals of a profile are additive
//!   and sum to at most the instrumented wall time. When profiling is
//!   disabled (the default), a span costs one relaxed atomic load — there
//!   is no compile-time feature gate to get wrong;
//! * a **structured event sink** ([`events`]): typed trace events
//!   (candidate accept/reject, rung lifecycle, ledger movements, lemma
//!   learn/replay, cache hit/miss) rendered as JSON Lines to a file
//!   (`--trace-out PATH` / `SYNQUID_TRACE_OUT=PATH`) or as human-readable
//!   lines to stderr (`SYNQUID_TRACE=1`, the historical switch). A
//!   disabled event costs one relaxed atomic load; event construction is
//!   deferred behind a closure.
//!
//! The profiler's thread-locality is deliberate: one synthesis run stays
//! on one worker thread, so a run's profile is the delta of
//! [`snapshot`] around it, with no locks on the hot path and no
//! cross-worker bleed. What is *stable* across runs for a fixed goal and
//! configuration is the per-phase span **counts** (the search is
//! deterministic); totals and maxima are wall-clock measurements and vary.

pub mod events;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------

/// The fixed taxonomy of profiled phases, covering the pipeline from
/// source text to SMT verdict. One span = one dynamic occurrence of a
/// phase; nesting is allowed and self-time attribution keeps totals
/// additive (e.g. a `Generation` span charging only the time not spent in
/// the `MemoLookup` or SMT spans below it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Lexing + parsing a `.sq` specification.
    Parse,
    /// Desugaring the parsed spec into goals and environments.
    Desugar,
    /// Goal-blind E-term generation (the memoized enumerator).
    Generation,
    /// Enumeration-memo probes.
    MemoLookup,
    /// Round-trip consistency checks (Fig. 5 pruning).
    Consistency,
    /// Subtyping constraints (incl. liquid-abduction strengthening).
    Subtyping,
    /// Horn strengthening — the liquid-abduction fixpoint step.
    Abduction,
    /// Formula → CNF encoding (Tseitin + theory-atom extraction).
    Encode,
    /// CDCL SAT search inside the DPLL(T) loop.
    Sat,
    /// LIA (simplex + branch&bound) checks of the main DPLL(T) loop.
    Lia,
    /// Unsat-core shrinking and MUS enumeration (chunked deletion, MARCO).
    /// This phase is attributed *inclusively* of the theory checks issued
    /// while shrinking — matching how the solver's cost was historically
    /// profiled — so `Lia` counts only main-loop first checks.
    CoreShrink,
    /// Validity-cache probes (local memo + shared cache).
    CacheLookup,
}

/// Number of [`Phase`] variants.
pub const PHASE_COUNT: usize = 12;

impl Phase {
    /// Every phase, in declaration (pipeline) order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Parse,
        Phase::Desugar,
        Phase::Generation,
        Phase::MemoLookup,
        Phase::Consistency,
        Phase::Subtyping,
        Phase::Abduction,
        Phase::Encode,
        Phase::Sat,
        Phase::Lia,
        Phase::CoreShrink,
        Phase::CacheLookup,
    ];

    /// The stable wire name of the phase (used in JSON and tables).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Desugar => "desugar",
            Phase::Generation => "generation",
            Phase::MemoLookup => "memo-lookup",
            Phase::Consistency => "consistency",
            Phase::Subtyping => "subtyping",
            Phase::Abduction => "abduction",
            Phase::Encode => "encode",
            Phase::Sat => "sat",
            Phase::Lia => "lia",
            Phase::CoreShrink => "core-shrink",
            Phase::CacheLookup => "cache-lookup",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

// ---------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------

/// Aggregated measurements of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Exclusive (self-time) nanoseconds across all spans of the phase.
    pub total_nanos: u64,
    /// Number of spans recorded.
    pub count: u64,
    /// Longest single span, *inclusive* of nested spans (a worst-case
    /// latency indicator, deliberately not additive).
    pub max_nanos: u64,
}

impl PhaseStat {
    /// Exclusive total in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_nanos as f64 / 1e9
    }

    /// Longest single span in seconds.
    pub fn max_secs(&self) -> f64 {
        self.max_nanos as f64 / 1e9
    }
}

/// Per-phase aggregation of one profiling window (one synthesis run, one
/// solver benchmark, one batch): totals, counts and maxima indexed by
/// [`Phase`]. `Copy` so it rides the existing stats structs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    stats: [PhaseStat; PHASE_COUNT],
}

impl PhaseProfile {
    /// The aggregate of one phase.
    pub fn get(&self, phase: Phase) -> PhaseStat {
        self.stats[phase as usize]
    }

    /// True if no span was recorded in the window.
    pub fn is_empty(&self) -> bool {
        self.stats.iter().all(|s| s.count == 0)
    }

    /// Sum of the exclusive per-phase totals, in seconds.
    pub fn total_secs(&self) -> f64 {
        self.stats.iter().map(|s| s.total_nanos).sum::<u64>() as f64 / 1e9
    }

    /// The per-phase span counts (the deterministic part of a profile).
    pub fn counts(&self) -> [u64; PHASE_COUNT] {
        let mut out = [0u64; PHASE_COUNT];
        for (slot, stat) in out.iter_mut().zip(&self.stats) {
            *slot = stat.count;
        }
        out
    }

    /// Adds `other`'s totals and counts into `self` (maxima combine by
    /// `max`). Used to fold per-goal profiles into batch aggregates.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (into, from) in self.stats.iter_mut().zip(&other.stats) {
            into.total_nanos += from.total_nanos;
            into.count += from.count;
            into.max_nanos = into.max_nanos.max(from.max_nanos);
        }
    }

    /// The measurements accumulated since `base` was snapshot from the
    /// same thread. Totals and counts subtract exactly; the maximum is
    /// best-effort (a window's max is unknowable from two cumulative
    /// snapshots, so it is reported only when the window recorded spans).
    pub fn delta_since(&self, base: &PhaseProfile) -> PhaseProfile {
        let mut out = PhaseProfile::default();
        for i in 0..PHASE_COUNT {
            let (now, then) = (&self.stats[i], &base.stats[i]);
            out.stats[i] = PhaseStat {
                total_nanos: now.total_nanos.saturating_sub(then.total_nanos),
                count: now.count.saturating_sub(then.count),
                max_nanos: if now.count > then.count {
                    now.max_nanos
                } else {
                    0
                },
            };
        }
        out
    }

    /// Renders the profile as a JSON object keyed by phase name, omitting
    /// phases with no spans:
    /// `{"sat":{"secs":1.234567,"count":42,"max_secs":0.100000},…}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for phase in Phase::ALL {
            let s = self.get(phase);
            if s.count == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"secs\":{:.6},\"count\":{},\"max_secs\":{:.6}}}",
                phase.name(),
                s.total_secs(),
                s.count,
                s.max_secs()
            ));
        }
        out.push('}');
        out
    }

    /// Parses the output of [`PhaseProfile::to_json`] (tolerating
    /// arbitrary whitespace between tokens). Unknown phase names are
    /// skipped so newer producers stay readable. Seconds re-enter as
    /// nanoseconds with rounding at the microsecond the emitter printed.
    pub fn parse_json(text: &str) -> Option<PhaseProfile> {
        let mut profile = PhaseProfile::default();
        let inner = text.trim().strip_prefix('{')?.strip_suffix('}')?;
        for entry in split_top_level(inner) {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name, body) = entry.split_once(':')?;
            let name = name.trim().trim_matches('"');
            let body = body.trim().strip_prefix('{')?.strip_suffix('}')?;
            let mut stat = PhaseStat::default();
            for field in body.split(',') {
                let (key, value) = field.split_once(':')?;
                let value = value.trim();
                match key.trim().trim_matches('"') {
                    "secs" => stat.total_nanos = (value.parse::<f64>().ok()? * 1e9) as u64,
                    "count" => stat.count = value.parse().ok()?,
                    "max_secs" => stat.max_nanos = (value.parse::<f64>().ok()? * 1e9) as u64,
                    _ => return None,
                }
            }
            if let Some(phase) = Phase::from_name(name) {
                profile.stats[phase as usize] = stat;
            }
        }
        Some(profile)
    }

    /// Renders an aligned text table of the non-empty phases, largest
    /// exclusive total first, each line prefixed with `indent`. Each row
    /// shows both absolute seconds and the share of the profile's total,
    /// so a dominant phase is visible at a glance whatever the scale.
    pub fn table(&self, indent: &str) -> String {
        let mut rows: Vec<(Phase, PhaseStat)> = Phase::ALL
            .into_iter()
            .map(|p| (p, self.get(p)))
            .filter(|(_, s)| s.count > 0)
            .collect();
        rows.sort_by_key(|row| std::cmp::Reverse(row.1.total_nanos));
        let total = self.total_secs();
        let mut out = format!(
            "{indent}{:<14} {:>10} {:>7} {:>10} {:>10}\n",
            "phase", "self(s)", "%", "count", "max(s)"
        );
        for (phase, stat) in rows {
            let share = if total > 0.0 {
                100.0 * stat.total_secs() / total
            } else {
                0.0
            };
            out.push_str(&format!(
                "{indent}{:<14} {:>10.3} {:>6.1}% {:>10} {:>10.3}\n",
                phase.name(),
                stat.total_secs(),
                share,
                stat.count,
                stat.max_secs()
            ));
        }
        out
    }
}

/// Splits a brace-balanced string on top-level commas.
fn split_top_level(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&text[start..]);
    out
}

// ---------------------------------------------------------------------
// The profiler
// ---------------------------------------------------------------------

const STATE_OFF: u8 = 0;
const STATE_ON: u8 = 1;
const STATE_UNREAD: u8 = 2;

static PROFILING: AtomicU8 = AtomicU8::new(STATE_UNREAD);

/// True if span profiling is on. The first call (per process) consults
/// `SYNQUID_PROFILE`; [`set_profiling`] overrides either way. This load
/// is the *entire* cost of a span when profiling is off.
#[inline]
pub fn profiling_enabled() -> bool {
    match PROFILING.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_profiling(),
    }
}

#[cold]
fn init_profiling() -> bool {
    let on = std::env::var("SYNQUID_PROFILE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    PROFILING.store(u8::from(on), Ordering::Relaxed);
    on
}

/// Turns span profiling on or off for the whole process (e.g. from
/// `--stats` in the CLI, or from a benchmark harness).
pub fn set_profiling(on: bool) {
    PROFILING.store(u8::from(on), Ordering::Relaxed);
}

struct ThreadProfiler {
    /// Nanoseconds consumed by already-closed *child* spans of each open
    /// span, innermost last — what self-time attribution subtracts.
    child_nanos: Vec<u64>,
    agg: PhaseProfile,
}

impl PhaseProfile {
    const EMPTY: PhaseProfile = PhaseProfile {
        stats: [PhaseStat {
            total_nanos: 0,
            count: 0,
            max_nanos: 0,
        }; PHASE_COUNT],
    };
}

thread_local! {
    static PROFILER: RefCell<ThreadProfiler> = const {
        RefCell::new(ThreadProfiler { child_nanos: Vec::new(), agg: PhaseProfile::EMPTY })
    };
}

/// An open span; recorded into the thread-local profile on drop. Spans
/// must be closed in LIFO order (bind to a scope-local `let _span = …`).
#[must_use = "a span measures the scope it is bound in"]
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
}

/// Opens a span of `phase` on this thread. When profiling is disabled the
/// returned guard is inert and the call costs one atomic load.
#[inline]
pub fn span(phase: Phase) -> Span {
    if !profiling_enabled() {
        return Span { phase, start: None };
    }
    PROFILER.with(|p| p.borrow_mut().child_nanos.push(0));
    Span {
        phase,
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed = start.elapsed().as_nanos() as u64;
        PROFILER.with(|p| {
            let mut p = p.borrow_mut();
            let child = p.child_nanos.pop().unwrap_or(0);
            if let Some(parent) = p.child_nanos.last_mut() {
                *parent += elapsed;
            }
            let stat = &mut p.agg.stats[self.phase as usize];
            stat.total_nanos += elapsed.saturating_sub(child);
            stat.count += 1;
            stat.max_nanos = stat.max_nanos.max(elapsed);
        });
    }
}

/// A copy of this thread's cumulative profile. Window a region with two
/// snapshots and [`PhaseProfile::delta_since`].
pub fn snapshot() -> PhaseProfile {
    PROFILER.with(|p| p.borrow().agg)
}

/// Zeroes this thread's cumulative profile. Only meaningful while no span
/// is open on the thread (tests and benchmark harnesses between cases).
pub fn reset_thread_profile() {
    PROFILER.with(|p| {
        let mut p = p.borrow_mut();
        debug_assert!(p.child_nanos.is_empty(), "reset with open spans");
        p.agg = PhaseProfile::default();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that flip the process-global profiling switch.
    static GLOBAL_FLAG: Mutex<()> = Mutex::new(());

    fn with_profiling<R>(f: impl FnOnce() -> R) -> R {
        let _guard = GLOBAL_FLAG.lock().unwrap();
        set_profiling(true);
        reset_thread_profile();
        let out = f();
        set_profiling(false);
        reset_thread_profile();
        out
    }

    #[test]
    fn nested_spans_attribute_self_time() {
        let profile = with_profiling(|| {
            {
                let _outer = span(Phase::Generation);
                std::thread::sleep(std::time::Duration::from_millis(6));
                {
                    let _inner = span(Phase::Sat);
                    std::thread::sleep(std::time::Duration::from_millis(6));
                }
            }
            snapshot()
        });
        let generation = profile.get(Phase::Generation);
        let sat = profile.get(Phase::Sat);
        assert_eq!(generation.count, 1);
        assert_eq!(sat.count, 1);
        // Self-time: the outer span does not absorb the inner sleep.
        assert!(sat.total_nanos >= 5_000_000);
        assert!(generation.total_nanos >= 5_000_000);
        assert!(
            generation.total_nanos < generation.max_nanos,
            "outer self-time {} must be below its inclusive max {}",
            generation.total_nanos,
            generation.max_nanos
        );
        // The inclusive max of the outer span covers both sleeps.
        assert!(generation.max_nanos >= 10_000_000);
    }

    #[test]
    fn disabled_spans_record_nothing_and_stay_cheap() {
        let _guard = GLOBAL_FLAG.lock().unwrap();
        set_profiling(false);
        reset_thread_profile();
        let start = Instant::now();
        for _ in 0..2_000_000 {
            let _span = span(Phase::Lia);
        }
        let elapsed = start.elapsed();
        assert!(snapshot().is_empty(), "disabled spans must not aggregate");
        // ~one relaxed atomic load per span; the bound is generous enough
        // for a loaded CI machine while still catching an accidental
        // Instant::now() or TLS write on the disabled path.
        assert!(
            elapsed < std::time::Duration::from_millis(400),
            "2M disabled spans took {elapsed:?}"
        );
    }

    #[test]
    fn delta_since_isolates_a_window() {
        with_profiling(|| {
            {
                let _s = span(Phase::Encode);
            }
            let base = snapshot();
            {
                let _s = span(Phase::Encode);
            }
            {
                let _s = span(Phase::Sat);
            }
            let delta = snapshot().delta_since(&base);
            assert_eq!(delta.get(Phase::Encode).count, 1);
            assert_eq!(delta.get(Phase::Sat).count, 1);
            let untouched = delta.get(Phase::Lia);
            assert_eq!(untouched.count, 0);
            assert_eq!(untouched.max_nanos, 0, "no-span window reports no max");
        });
    }

    #[test]
    fn profile_json_round_trips() {
        let mut profile = PhaseProfile::default();
        profile.stats[Phase::Sat as usize] = PhaseStat {
            total_nanos: 1_234_567_000,
            count: 42,
            max_nanos: 100_000_000,
        };
        profile.stats[Phase::CoreShrink as usize] = PhaseStat {
            total_nanos: 8_000_000,
            count: 3,
            max_nanos: 5_000_000,
        };
        let json = profile.to_json();
        assert!(json.contains("\"sat\""));
        assert!(json.contains("\"core-shrink\""));
        assert!(!json.contains("\"parse\""), "empty phases are omitted");
        let parsed = PhaseProfile::parse_json(&json).expect("parse back");
        assert_eq!(parsed.get(Phase::Sat).count, 42);
        assert_eq!(parsed.get(Phase::CoreShrink).count, 3);
        // Seconds survive to microsecond precision.
        let sat = parsed.get(Phase::Sat);
        assert!((sat.total_secs() - 1.234567).abs() < 1e-5);
        assert!((sat.max_secs() - 0.1).abs() < 1e-5);
    }

    #[test]
    fn merge_adds_totals_and_maxes_maxima() {
        let mut a = PhaseProfile::default();
        a.stats[Phase::Lia as usize] = PhaseStat {
            total_nanos: 10,
            count: 1,
            max_nanos: 10,
        };
        let mut b = PhaseProfile::default();
        b.stats[Phase::Lia as usize] = PhaseStat {
            total_nanos: 5,
            count: 2,
            max_nanos: 30,
        };
        a.merge(&b);
        let lia = a.get(Phase::Lia);
        assert_eq!(lia.total_nanos, 15);
        assert_eq!(lia.count, 3);
        assert_eq!(lia.max_nanos, 30);
    }

    #[test]
    fn phase_names_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
        }
        assert_eq!(Phase::from_name("bogus"), None);
    }

    #[test]
    fn table_sorts_by_total_and_skips_empty_phases() {
        let mut profile = PhaseProfile::default();
        profile.stats[Phase::Sat as usize] = PhaseStat {
            total_nanos: 5_000_000_000,
            count: 10,
            max_nanos: 1,
        };
        profile.stats[Phase::Encode as usize] = PhaseStat {
            total_nanos: 7_000_000_000,
            count: 20,
            max_nanos: 1,
        };
        let table = profile.table("  ");
        let encode_at = table.find("encode").unwrap();
        let sat_at = table.find("sat").unwrap();
        assert!(encode_at < sat_at, "larger total sorts first:\n{table}");
        assert!(!table.contains("parse"));
    }
}
