//! The structured event sink: typed trace events as JSON Lines.
//!
//! Layers of the pipeline emit [`Event`]s — candidate accept/reject with
//! a reason, rung start/finish/skip, ledger reserve/charge/settle, lemma
//! learn/replay, cache hit/miss, goal lifecycle — through [`emit`]. The
//! sink is configured once per process:
//!
//! * `--trace-out PATH` (CLI) or `SYNQUID_TRACE_OUT=PATH` → JSONL to the
//!   file (`-` means stderr);
//! * `SYNQUID_TRACE=1` (the historical ad-hoc switch) → human-readable
//!   lines on stderr, one `[synquid] …` line per event;
//! * neither → events are disabled and an [`emit`] call costs one relaxed
//!   atomic load (the closure building the event never runs).
//!
//! Every JSON line carries the event kind (`ev`), a process-wide sequence
//! number (`seq`), milliseconds since the sink was opened (`t_ms`) and a
//! small per-thread id (`tid`). `seq`/`t_ms`/`tid` are best-effort
//! scheduling artifacts; the typed payload fields are the stable part of
//! the schema (see `docs/ARCHITECTURE.md`).

use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Version of the trace-event schema. Stamped into the `trace_meta`
/// event that opens every JSON sink; a stream *without* a `trace_meta`
/// line is version 1 (the PR 6 streams, before derivation node ids).
///
/// History:
/// * 1 — envelope (`ev`/`seq`/`t_ms`/`tid`) + the ~20 PR 6 event kinds;
/// * 2 — `trace_meta` header; derivation node ids (`node`/`parent` on
///   `search`, `node` on candidate/guard/match/cache events); the
///   `node_finish` kind (status, term, per-node cache provenance, and an
///   optional `phases` split); `check_step` kinds from the round-trip
///   checker; `rung` indices on the rung/ledger lifecycle events;
/// * 3 — the `session_epoch` kind (resident-session GC boundaries, with
///   per-layer eviction counts).
///
/// Versioning rules (see `docs/ARCHITECTURE.md`): *adding* a field to an
/// existing kind or adding a new kind bumps this constant but keeps old
/// consumers working (consumers must tolerate unknown fields); renaming
/// or removing a field or kind is a breaking change and additionally
/// renames the event kind.
pub const EVENT_SCHEMA_VERSION: u64 = 3;

const MODE_OFF: u8 = 0;
const MODE_JSON: u8 = 1;
const MODE_HUMAN: u8 = 2;
const MODE_UNREAD: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNREAD);
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
/// Side handle onto the in-memory sink installed by
/// [`init_trace_buffer`], so [`take_trace_buffer`] can drain it.
static BUFFER: Mutex<Option<Arc<Mutex<Vec<u8>>>>> = Mutex::new(None);
static SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicUsize = AtomicUsize::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static TID: usize = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// True if some event sink is configured. One relaxed atomic load on the
/// fast (disabled) path; the first call reads the environment.
#[inline]
pub fn events_enabled() -> bool {
    mode() != MODE_OFF
}

#[inline]
fn mode() -> u8 {
    match MODE.load(Ordering::Relaxed) {
        MODE_UNREAD => init_from_env(),
        m => m,
    }
}

#[cold]
fn init_from_env() -> u8 {
    if let Ok(path) = std::env::var("SYNQUID_TRACE_OUT") {
        if !path.is_empty() {
            return match init_trace_file(&path) {
                Ok(()) => MODE.load(Ordering::Relaxed),
                Err(e) => {
                    eprintln!("[synquid] cannot open SYNQUID_TRACE_OUT={path}: {e}");
                    MODE.store(MODE_OFF, Ordering::Relaxed);
                    MODE_OFF
                }
            };
        }
    }
    let human = std::env::var("SYNQUID_TRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    let mode = if human { MODE_HUMAN } else { MODE_OFF };
    MODE.store(mode, Ordering::Relaxed);
    mode
}

/// Routes events as JSON Lines to `path` (`-` for stderr). Overrides any
/// environment-derived configuration; used by the CLI's `--trace-out`.
pub fn init_trace_file(path: &str) -> std::io::Result<()> {
    let out: Box<dyn Write + Send> = if path == "-" {
        Box::new(std::io::stderr())
    } else {
        Box::new(std::fs::File::create(path)?)
    };
    *BUFFER.lock().expect("trace buffer poisoned") = None;
    *SINK.lock().expect("trace sink poisoned") = Some(out);
    epoch();
    MODE.store(MODE_JSON, Ordering::Relaxed);
    emit_meta();
    Ok(())
}

/// Routes events as JSON Lines into an in-memory buffer, drained by
/// [`take_trace_buffer`]. This is how `synquid explain` captures the
/// trace of a run it is about to replay into a derivation tree without
/// touching the filesystem. Overrides any other sink.
pub fn init_trace_buffer() {
    let buffer = Arc::new(Mutex::new(Vec::new()));

    struct BufferSink(Arc<Mutex<Vec<u8>>>);
    impl Write for BufferSink {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("trace buffer poisoned").extend(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    *BUFFER.lock().expect("trace buffer poisoned") = Some(buffer.clone());
    *SINK.lock().expect("trace sink poisoned") = Some(Box::new(BufferSink(buffer)));
    epoch();
    MODE.store(MODE_JSON, Ordering::Relaxed);
    emit_meta();
}

/// Drains the in-memory sink installed by [`init_trace_buffer`] and
/// returns its contents (one JSON event per line). Returns `None` when
/// no buffer sink is active. Events emitted after the drain keep
/// accumulating in the same buffer.
pub fn take_trace_buffer() -> Option<String> {
    let guard = BUFFER.lock().expect("trace buffer poisoned");
    let buffer = guard.as_ref()?;
    let bytes = std::mem::take(&mut *buffer.lock().expect("trace buffer poisoned"));
    Some(String::from_utf8_lossy(&bytes).into_owned())
}

/// The stream header: every JSON sink opens with a `trace_meta` event
/// carrying the schema version, so consumers can tell v1 streams (no
/// header) from current ones without sniffing payload fields.
fn emit_meta() {
    emit(|| {
        Event::new("trace_meta")
            .uint("schema", EVENT_SCHEMA_VERSION)
            .str("tool", "synquid")
    });
}

/// Flushes the sink (file sinks are written line-at-a-time but the CLI
/// flushes once more before exiting, out of caution).
pub fn flush_trace() {
    if let Some(out) = SINK.lock().expect("trace sink poisoned").as_mut() {
        let _ = out.flush();
    }
}

/// One field value. Numbers keep their type so JSON stays unquoted.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    UInt(u64),
    F64(f64),
    Bool(bool),
}

impl Value {
    fn render_json(&self, out: &mut String) {
        match self {
            Value::Str(s) => {
                out.push('"');
                escape_json_into(s, out);
                out.push('"');
            }
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::F64(f) => out.push_str(&format!("{f:.3}")),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }

    fn render_human(&self, out: &mut String) {
        match self {
            Value::Str(s) => out.push_str(s),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::F64(f) => out.push_str(&format!("{f:.3}")),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

/// A typed trace event: a kind plus ordered fields. Construct with the
/// builder methods and hand to [`emit`].
#[derive(Debug, Clone)]
pub struct Event {
    kind: &'static str,
    fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Starts an event of the given kind.
    pub fn new(kind: &'static str) -> Event {
        Event {
            kind,
            fields: Vec::with_capacity(4),
        }
    }

    /// The event kind.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Adds a string field.
    pub fn str(mut self, key: &'static str, value: impl Into<String>) -> Event {
        self.fields.push((key, Value::Str(value.into())));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &'static str, value: i64) -> Event {
        self.fields.push((key, Value::Int(value)));
        self
    }

    /// Adds an unsigned field.
    pub fn uint(mut self, key: &'static str, value: u64) -> Event {
        self.fields.push((key, Value::UInt(value)));
        self
    }

    /// Adds a float field (rendered with 3 decimals).
    pub fn f64(mut self, key: &'static str, value: f64) -> Event {
        self.fields.push((key, Value::F64(value)));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &'static str, value: bool) -> Event {
        self.fields.push((key, Value::Bool(value)));
        self
    }

    /// Renders the event as one JSON line (without envelope metadata —
    /// [`emit`] adds `seq`/`t_ms`/`tid`).
    pub fn render_json(&self, seq: u64, t_ms: f64, tid: usize) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"ev\":\"");
        escape_json_into(self.kind, &mut out);
        out.push_str(&format!(
            "\",\"seq\":{seq},\"t_ms\":{t_ms:.3},\"tid\":{tid}"
        ));
        for (key, value) in &self.fields {
            out.push_str(",\"");
            escape_json_into(key, &mut out);
            out.push_str("\":");
            value.render_json(&mut out);
        }
        out.push('}');
        out
    }

    /// Renders the event as the historical human-readable stderr line.
    /// A `message` event with a single `text` field reproduces the old
    /// `trace!` output byte-for-byte.
    pub fn render_human(&self) -> String {
        if self.kind == "message" {
            if let [(_, Value::Str(text))] = self.fields.as_slice() {
                return format!("[synquid] {text}");
            }
        }
        let mut out = format!("[synquid] {}", self.kind);
        for (key, value) in &self.fields {
            out.push(' ');
            out.push_str(key);
            out.push('=');
            value.render_human(&mut out);
        }
        out
    }
}

/// Emits an event. The closure only runs when a sink is configured, so a
/// disabled call site costs one atomic load and never formats anything.
#[inline]
pub fn emit(build: impl FnOnce() -> Event) {
    let mode = mode();
    if mode == MODE_OFF {
        return;
    }
    emit_now(build(), mode);
}

#[cold]
fn emit_now(event: Event, mode: u8) {
    if mode == MODE_HUMAN {
        eprintln!("{}", event.render_human());
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let t_ms = epoch().elapsed().as_secs_f64() * 1e3;
    let tid = TID.with(|t| *t);
    let mut line = event.render_json(seq, t_ms, tid);
    line.push('\n');
    let mut sink = SINK.lock().expect("trace sink poisoned");
    if let Some(out) = sink.as_mut() {
        let _ = out.write_all(line.as_bytes());
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Parses one JSON event line back into `(key, raw value)` pairs, with
/// string values unescaped and numbers/booleans returned as their token
/// text. Only the flat shape [`Event::render_json`] produces is
/// supported — this is the test-side half of the schema round-trip.
pub fn parse_line(line: &str) -> Option<Vec<(String, String)>> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut out = Vec::new();
    let bytes = body.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        // Key.
        if bytes[i] != b'"' {
            return None;
        }
        let (key, next) = parse_string(body, i)?;
        i = next;
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i += 1;
        // Value: string or bare token up to the next top-level comma.
        let value = if bytes.get(i) == Some(&b'"') {
            let (value, next) = parse_string(body, i)?;
            i = next;
            value
        } else {
            let start = i;
            while i < bytes.len() && bytes[i] != b',' {
                i += 1;
            }
            body[start..i].to_string()
        };
        out.push((key, value));
        if bytes.get(i) == Some(&b',') {
            i += 1;
        }
    }
    Some(out)
}

/// Parses the JSON string literal starting at byte `at` (which must be a
/// quote); returns the unescaped contents and the index after the
/// closing quote.
fn parse_string(text: &str, at: usize) -> Option<(String, usize)> {
    let bytes = text.as_bytes();
    debug_assert_eq!(bytes.get(at), Some(&b'"'));
    let mut out = String::new();
    let mut i = at + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some((out, i + 1)),
            b'\\' => {
                let esc = *bytes.get(i + 1)?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = text.get(i + 2..i + 6)?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        i += 4;
                    }
                    _ => return None,
                }
                i += 2;
            }
            _ => {
                // Multi-byte UTF-8: copy the whole char.
                let c = text[i..].chars().next()?;
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_round_trips_through_parse_line() {
        let event = Event::new("candidate_reject")
            .str("goal", "take")
            .str("reason", "subtype")
            .str("program", "Cons x (take \"xs\" n)")
            .int("depth", 2)
            .bool("conditional", false)
            .f64("elapsed_ms", 1.5);
        let line = event.render_json(7, 12.3456, 2);
        let fields = parse_line(&line).expect("parse back");
        let get = |k: &str| {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("ev").as_deref(), Some("candidate_reject"));
        assert_eq!(get("seq").as_deref(), Some("7"));
        assert_eq!(get("tid").as_deref(), Some("2"));
        assert_eq!(get("goal").as_deref(), Some("take"));
        assert_eq!(get("reason").as_deref(), Some("subtype"));
        assert_eq!(get("program").as_deref(), Some("Cons x (take \"xs\" n)"));
        assert_eq!(get("depth").as_deref(), Some("2"));
        assert_eq!(get("conditional").as_deref(), Some("false"));
        assert_eq!(get("elapsed_ms").as_deref(), Some("1.500"));
    }

    #[test]
    fn human_rendering_preserves_the_old_trace_format() {
        let event = Event::new("message").str("text", "depth 2: 31 abduction candidates");
        assert_eq!(
            event.render_human(),
            "[synquid] depth 2: 31 abduction candidates"
        );
        let typed = Event::new("cache_hit").str("layer", "shared").uint("n", 3);
        assert_eq!(typed.render_human(), "[synquid] cache_hit layer=shared n=3");
    }

    #[test]
    fn escaping_handles_quotes_newlines_and_controls() {
        let event = Event::new("message").str("text", "a\"b\\c\nd\te\u{1}");
        let line = event.render_json(0, 0.0, 0);
        assert!(line.contains("\\\"b\\\\c\\nd\\te\\u0001"));
        let fields = parse_line(&line).unwrap();
        let text = &fields.iter().find(|(k, _)| k == "text").unwrap().1;
        assert_eq!(text, "a\"b\\c\nd\te\u{1}");
    }

    #[test]
    fn unicode_strings_survive() {
        let event = Event::new("message").str("text", "goal=νλ→ ≤");
        let line = event.render_json(0, 0.0, 0);
        let fields = parse_line(&line).unwrap();
        assert_eq!(
            fields.iter().find(|(k, _)| k == "text").unwrap().1,
            "goal=νλ→ ≤"
        );
    }
}
