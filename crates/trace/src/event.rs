//! Parsing JSONL trace streams back into typed events.
//!
//! The producer side lives in `synquid_telemetry::events`; this module is
//! the consumer: it validates the envelope (`ev`/`seq`/`t_ms`/`tid`),
//! checks the event kind against [`KNOWN_EVENT_KINDS`], and keeps the
//! payload fields as raw strings for the tree builder and aggregators.
//!
//! Forward compatibility follows the schema rules in
//! `docs/ARCHITECTURE.md`: unknown *fields* on a known kind are carried
//! along untouched (a newer producer may have added them), but an unknown
//! *kind* is an error — a consumer that silently dropped kinds would
//! report wrong aggregates instead of failing loudly.

use synquid_telemetry::events::parse_line;

/// Every event kind the pipeline emits, schema version
/// [`synquid_telemetry::events::EVENT_SCHEMA_VERSION`]. Adding a kind
/// here must go together with a version bump on the producer side.
pub const KNOWN_EVENT_KINDS: &[&str] = &[
    "trace_meta",
    "message",
    // Engine scheduler: portfolio rungs and the budget ledger.
    "rung_start",
    "rung_finish",
    "rung_skip",
    "rung_out_of_budget",
    "ledger_reserve",
    "ledger_settle",
    // Per-rung goal attempts (one synthesizer run each).
    "goal_start",
    "goal_finish",
    // Derivation nodes and their in-frame happenings.
    "search",
    "node_finish",
    "abduction_candidates",
    "candidate_accept",
    "candidate_reject",
    "guard_found",
    "guard_missing",
    "match_case",
    "match_case_failed",
    // Round-trip checking of complete programs.
    "check_step",
    "check_step_finish",
    // Solver-side: SMT queries, caches, conflict lemmas.
    "smt_query",
    "cache_hit",
    "cache_miss",
    "lemma_learn",
    "lemma_replay",
    // Resident sessions: one event per GC epoch boundary.
    "session_epoch",
];

/// One parsed trace event: the envelope plus the payload fields in
/// emission order (envelope keys stripped).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The event kind (`ev`).
    pub kind: String,
    /// Process-wide sequence number.
    pub seq: u64,
    /// Milliseconds since the sink was opened.
    pub t_ms: f64,
    /// Small per-thread id.
    pub tid: u64,
    /// Payload fields, in emission order. String values are unescaped;
    /// numbers and booleans keep their JSON token text.
    pub fields: Vec<(String, String)>,
}

impl TraceEvent {
    /// The raw text of a payload field.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A payload field parsed as an unsigned integer.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    /// A payload field parsed as a float.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key)?.parse().ok()
    }
}

/// Why a trace stream failed to parse. Line numbers are 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The line is not one flat JSON object of the emitted shape.
    Malformed { line: usize },
    /// A known-shape line is missing one of the envelope fields.
    MissingEnvelope { line: usize, field: &'static str },
    /// The event kind is not in [`KNOWN_EVENT_KINDS`].
    UnknownKind { line: usize, kind: String },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Malformed { line } => write!(f, "line {line}: malformed event"),
            TraceError::MissingEnvelope { line, field } => {
                write!(f, "line {line}: missing envelope field {field}")
            }
            TraceError::UnknownKind { line, kind } => {
                write!(f, "line {line}: unknown event kind {kind:?}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A parsed trace stream.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Schema version from the `trace_meta` header; a stream without a
    /// header is version 1 (emitted before the header existed).
    pub schema_version: u64,
    /// All events, in file order (which is emission order: the sink
    /// serializes writes).
    pub events: Vec<TraceEvent>,
}

/// Parses one JSONL event line. `line_no` is used for error reporting
/// only.
pub fn parse_event(text: &str, line_no: usize) -> Result<TraceEvent, TraceError> {
    let pairs = parse_line(text).ok_or(TraceError::Malformed { line: line_no })?;
    let mut kind = None;
    let mut seq = None;
    let mut t_ms = None;
    let mut tid = None;
    let mut fields = Vec::new();
    for (key, value) in pairs {
        match key.as_str() {
            "ev" => kind = Some(value),
            "seq" => seq = value.parse::<u64>().ok(),
            "t_ms" => t_ms = value.parse::<f64>().ok(),
            "tid" => tid = value.parse::<u64>().ok(),
            _ => fields.push((key, value)),
        }
    }
    let kind = kind.ok_or(TraceError::MissingEnvelope {
        line: line_no,
        field: "ev",
    })?;
    let seq = seq.ok_or(TraceError::MissingEnvelope {
        line: line_no,
        field: "seq",
    })?;
    let t_ms = t_ms.ok_or(TraceError::MissingEnvelope {
        line: line_no,
        field: "t_ms",
    })?;
    let tid = tid.ok_or(TraceError::MissingEnvelope {
        line: line_no,
        field: "tid",
    })?;
    if !KNOWN_EVENT_KINDS.contains(&kind.as_str()) {
        return Err(TraceError::UnknownKind {
            line: line_no,
            kind,
        });
    }
    Ok(TraceEvent {
        kind,
        seq,
        t_ms,
        tid,
        fields,
    })
}

/// Parses a whole JSONL stream. Blank lines are skipped; the first error
/// aborts the parse (a malformed trace should fail CI, not degrade into
/// partial aggregates).
pub fn parse_trace(text: &str) -> Result<Trace, TraceError> {
    let mut events = Vec::new();
    let mut schema_version = 1;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = parse_event(line, idx + 1)?;
        if event.kind == "trace_meta" {
            if let Some(v) = event.get_u64("schema") {
                schema_version = v;
            }
        }
        events.push(event);
    }
    Ok(Trace {
        schema_version,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_and_payload_split() {
        let line = r#"{"ev":"rung_start","seq":4,"t_ms":1.250,"tid":2,"rung":1,"goal":"take","slice_secs":7.500}"#;
        let event = parse_event(line, 1).unwrap();
        assert_eq!(event.kind, "rung_start");
        assert_eq!(event.seq, 4);
        assert_eq!(event.tid, 2);
        assert_eq!(event.get_u64("rung"), Some(1));
        assert_eq!(event.get("goal"), Some("take"));
        assert_eq!(event.get_f64("slice_secs"), Some(7.5));
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        let line =
            r#"{"ev":"goal_start","seq":0,"t_ms":0.000,"tid":0,"goal":"g","from_the_future":42}"#;
        let event = parse_event(line, 1).unwrap();
        assert_eq!(event.get("from_the_future"), Some("42"));
    }

    #[test]
    fn unknown_kinds_are_rejected() {
        let line = r#"{"ev":"quantum_leap","seq":0,"t_ms":0.000,"tid":0}"#;
        assert_eq!(
            parse_event(line, 7),
            Err(TraceError::UnknownKind {
                line: 7,
                kind: "quantum_leap".into()
            })
        );
    }

    #[test]
    fn missing_envelope_fields_fail() {
        let line = r#"{"ev":"goal_start","seq":0,"tid":0}"#;
        assert_eq!(
            parse_event(line, 3),
            Err(TraceError::MissingEnvelope {
                line: 3,
                field: "t_ms"
            })
        );
        assert_eq!(
            parse_event("not json", 9),
            Err(TraceError::Malformed { line: 9 })
        );
    }

    #[test]
    fn header_sets_schema_version_and_absent_header_means_v1() {
        let with = "{\"ev\":\"trace_meta\",\"seq\":0,\"t_ms\":0.000,\"tid\":0,\"schema\":2}\n\
                    {\"ev\":\"goal_start\",\"seq\":1,\"t_ms\":0.100,\"tid\":0,\"goal\":\"g\"}\n";
        assert_eq!(parse_trace(with).unwrap().schema_version, 2);
        let without = "{\"ev\":\"goal_start\",\"seq\":0,\"t_ms\":0.000,\"tid\":0,\"goal\":\"g\"}\n";
        assert_eq!(parse_trace(without).unwrap().schema_version, 1);
    }
}
