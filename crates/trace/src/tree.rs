//! Replaying a trace into first-class derivation trees.
//!
//! The synthesizer allocates derivation-node ids in preorder over its
//! `synthesize_in` call tree and restarts the counter on every run, so a
//! node id is only meaningful inside one `goal_start`..`goal_finish`
//! window on one thread (one *rung attempt*). The builder scopes ids
//! accordingly: it walks events in emission order, keeps one open window
//! per thread, and attaches node events to the window open on their
//! thread. The result is a [`DerivationForest`] — every attempt the
//! engine made, each holding its own node tree — from which the winning
//! derivation of a solved goal can be extracted and rendered.

use std::collections::BTreeMap;

use synquid_telemetry::PhaseProfile;

use crate::event::{Trace, TraceEvent};

/// One node of a derivation tree: one `synthesize_in` frame.
#[derive(Debug, Clone, Default)]
pub struct DerivationNode {
    /// Node id (preorder, 1-based; parent 0 marks the root).
    pub id: u64,
    /// Parent node id (0 for the root).
    pub parent: u64,
    /// The goal type of the frame.
    pub ty: String,
    /// Remaining branch / match depth at the frame.
    pub branch_depth: u64,
    pub match_depth: u64,
    /// `solved` / `exhausted` / `timeout`, when the frame finished inside
    /// the trace (a hard kill can truncate the stream mid-frame).
    pub status: Option<String>,
    /// Wall time of the frame, inclusive of children.
    pub elapsed_ms: Option<f64>,
    /// The synthesized term when the frame solved its goal.
    pub term: Option<String>,
    /// Enumeration-memo provenance: lookups answered from the cache vs
    /// generated fresh, within this frame (inclusive of children).
    pub memo_hits: u64,
    pub memo_misses: u64,
    /// Persisted theory conflicts replayed into SMT queries within this
    /// frame (inclusive of children).
    pub lemmas_replayed: u64,
    /// Phase split of the frame (inclusive of children); present only
    /// when the producer ran with profiling enabled.
    pub phases: Option<PhaseProfile>,
    /// In-frame happenings, from sibling events carrying this node id.
    pub candidates_accepted: u64,
    pub candidates_rejected: u64,
    pub guards_found: u64,
    pub guards_missing: u64,
    pub match_cases: u64,
    /// Child node ids, in discovery (= preorder) order.
    pub children: Vec<u64>,
}

/// One `goal_start`..`goal_finish` window: a single synthesizer run for
/// one goal at one rung's bounds.
#[derive(Debug, Clone)]
pub struct RungAttempt {
    pub goal: String,
    /// Portfolio rung index, when the attempt ran under the engine
    /// scheduler (standalone `synquid` runs have no rungs).
    pub rung: Option<u64>,
    pub app_depth: u64,
    pub match_depth: u64,
    /// `solved` / `timeout` / `failed` from `goal_finish`; `truncated`
    /// when the stream ended with the window still open.
    pub status: String,
    pub time_secs: f64,
    /// All derivation nodes of the attempt, by id.
    pub nodes: BTreeMap<u64, DerivationNode>,
    /// Thread the attempt ran on.
    pub tid: u64,
}

impl RungAttempt {
    fn new(goal: String, app_depth: u64, match_depth: u64, rung: Option<u64>, tid: u64) -> Self {
        RungAttempt {
            goal,
            rung,
            app_depth,
            match_depth,
            status: "truncated".into(),
            time_secs: 0.0,
            nodes: BTreeMap::new(),
            tid,
        }
    }

    /// The root node (id 1), if the attempt got far enough to open one.
    pub fn root(&self) -> Option<&DerivationNode> {
        self.nodes.get(&1)
    }

    /// Renders the attempt's full node tree as a termtree, one node per
    /// line, annotated with status, wall time, cache provenance and (when
    /// present) the dominant phases.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} @ rung {} (app_depth {}, match_depth {}): {} in {:.3}s\n",
            self.goal,
            self.rung.map_or("-".into(), |r| r.to_string()),
            self.app_depth,
            self.match_depth,
            self.status,
            self.time_secs,
        ));
        if let Some(root) = self.root() {
            self.render_node(root, "", true, &mut out, &|_| true);
        }
        out
    }

    /// Renders only the winning derivation: solved nodes whose term
    /// contributes to their parent's term. Abandoned subsearches (failed
    /// siblings, solved-then-discarded match cases) are summarized as a
    /// count on their parent instead of rendered.
    pub fn render_winning(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} @ rung {} (app_depth {}, match_depth {}): {} in {:.3}s\n",
            self.goal,
            self.rung.map_or("-".into(), |r| r.to_string()),
            self.app_depth,
            self.match_depth,
            self.status,
            self.time_secs,
        ));
        if let Some(root) = self.root() {
            let keep = |node: &DerivationNode| self.contributes(node);
            self.render_node(root, "", true, &mut out, &keep);
        }
        out
    }

    /// True if the node's solution contributes to its parent's: the node
    /// solved, and its term occurs inside the parent's term (the parent
    /// assembles children's terms verbatim — application arguments, match
    /// case bodies, conditional branches — so textual containment is
    /// exact up to a solved-but-discarded term that happens to also occur
    /// elsewhere in the parent, which still renders correctly).
    fn contributes(&self, node: &DerivationNode) -> bool {
        if node.status.as_deref() != Some("solved") {
            return false;
        }
        if node.parent == 0 {
            return true;
        }
        let Some(parent) = self.nodes.get(&node.parent) else {
            return false;
        };
        match (&parent.term, &node.term) {
            (Some(pt), Some(nt)) => pt.contains(nt.as_str()) && self.contributes(parent),
            _ => false,
        }
    }

    fn render_node(
        &self,
        node: &DerivationNode,
        prefix: &str,
        last: bool,
        out: &mut String,
        keep: &dyn Fn(&DerivationNode) -> bool,
    ) {
        let connector = if node.parent == 0 {
            ""
        } else if last {
            "└─ "
        } else {
            "├─ "
        };
        out.push_str(prefix);
        out.push_str(connector);
        out.push_str(&annotate(node));
        let kept: Vec<&DerivationNode> = node
            .children
            .iter()
            .filter_map(|id| self.nodes.get(id))
            .filter(|c| keep(c))
            .collect();
        let dropped = node.children.len() - kept.len();
        if dropped > 0 {
            out.push_str(&format!("  (+{dropped} abandoned)"));
        }
        out.push('\n');
        let child_prefix = if node.parent == 0 {
            String::new()
        } else {
            format!("{prefix}{}", if last { "   " } else { "│  " })
        };
        let n = kept.len();
        for (i, child) in kept.into_iter().enumerate() {
            self.render_node(child, &child_prefix, i + 1 == n, out, keep);
        }
    }

    /// Terms at the leaves of the winning derivation, in preorder.
    pub fn winning_leaves(&self) -> Vec<String> {
        let mut out = Vec::new();
        let Some(root) = self.root() else {
            return out;
        };
        self.collect_leaves(root, &mut out);
        out
    }

    fn collect_leaves(&self, node: &DerivationNode, out: &mut Vec<String>) {
        let kept: Vec<&DerivationNode> = node
            .children
            .iter()
            .filter_map(|id| self.nodes.get(id))
            .filter(|c| self.contributes(c))
            .collect();
        if kept.is_empty() {
            if let Some(term) = &node.term {
                out.push(term.clone());
            }
            return;
        }
        for child in kept {
            self.collect_leaves(child, out);
        }
    }
}

/// One line of node annotation: goal type, solution, timing, provenance.
/// Multi-line terms (matches, conditionals) are flattened to one line so
/// the tree connectors stay aligned.
fn annotate(node: &DerivationNode) -> String {
    let mut out = format!("[{}] {}", node.id, node.ty);
    if let Some(term) = &node.term {
        let flat = term.split_whitespace().collect::<Vec<_>>().join(" ");
        out.push_str(&format!("  ⇒  {flat}"));
    }
    let status = node.status.as_deref().unwrap_or("open");
    out.push_str(&format!("  ({status}"));
    if let Some(ms) = node.elapsed_ms {
        out.push_str(&format!(", {ms:.1}ms"));
    }
    if node.memo_hits + node.memo_misses > 0 {
        out.push_str(&format!(", memo {}h/{}m", node.memo_hits, node.memo_misses));
    }
    if node.lemmas_replayed > 0 {
        out.push_str(&format!(", {} lemmas replayed", node.lemmas_replayed));
    }
    if node.candidates_rejected > 0 || node.candidates_accepted > 0 {
        out.push_str(&format!(
            ", cand +{}/-{}",
            node.candidates_accepted, node.candidates_rejected
        ));
    }
    if let Some(phases) = &node.phases {
        let mut split: Vec<(String, f64)> = synquid_telemetry::Phase::ALL
            .into_iter()
            .map(|p| (p.name().to_string(), phases.get(p).total_secs()))
            .filter(|(_, s)| *s > 0.0)
            .collect();
        split.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let top: Vec<String> = split
            .into_iter()
            .take(2)
            .map(|(name, secs)| format!("{name} {:.0}ms", secs * 1e3))
            .collect();
        if !top.is_empty() {
            out.push_str(&format!(", {}", top.join(" + ")));
        }
    }
    out.push(')');
    out
}

/// Every rung attempt reconstructed from a trace, in emission order.
#[derive(Debug, Clone, Default)]
pub struct DerivationForest {
    pub attempts: Vec<RungAttempt>,
}

impl DerivationForest {
    /// Replays a parsed trace into its derivation forest.
    pub fn build(trace: &Trace) -> DerivationForest {
        let mut open: BTreeMap<u64, RungAttempt> = BTreeMap::new();
        let mut current_rung: BTreeMap<u64, u64> = BTreeMap::new();
        let mut attempts = Vec::new();
        for event in &trace.events {
            match event.kind.as_str() {
                "rung_start" => {
                    if let Some(rung) = event.get_u64("rung") {
                        current_rung.insert(event.tid, rung);
                    }
                }
                "rung_finish" => {
                    current_rung.remove(&event.tid);
                }
                "goal_start" => {
                    // A dangling window on this thread (missing finish)
                    // is closed as truncated rather than silently merged.
                    if let Some(stale) = open.remove(&event.tid) {
                        attempts.push(stale);
                    }
                    open.insert(
                        event.tid,
                        RungAttempt::new(
                            event.get("goal").unwrap_or_default().to_string(),
                            event.get_u64("app_depth").unwrap_or(0),
                            event.get_u64("match_depth").unwrap_or(0),
                            current_rung.get(&event.tid).copied(),
                            event.tid,
                        ),
                    );
                }
                "goal_finish" => {
                    if let Some(mut attempt) = open.remove(&event.tid) {
                        attempt.status = event.get("status").unwrap_or("truncated").to_string();
                        attempt.time_secs = event.get_f64("time_secs").unwrap_or(0.0);
                        attempts.push(attempt);
                    }
                }
                _ => {
                    if let Some(attempt) = open.get_mut(&event.tid) {
                        apply_node_event(attempt, event);
                    }
                }
            }
        }
        // Truncated streams: keep what the open windows collected.
        attempts.extend(open.into_values());
        DerivationForest { attempts }
    }

    /// All attempts for one goal.
    pub fn for_goal<'a>(&'a self, goal: &str) -> Vec<&'a RungAttempt> {
        self.attempts.iter().filter(|a| a.goal == goal).collect()
    }

    /// The attempt whose solution the portfolio reports for a goal: the
    /// solved attempt at the lowest rung (smallest program bounds), ties
    /// broken by emission order — mirroring the scheduler's
    /// shallowest-rung-wins rule.
    pub fn winning<'a>(&'a self, goal: &str) -> Option<&'a RungAttempt> {
        self.attempts
            .iter()
            .filter(|a| a.goal == goal && a.status == "solved")
            .min_by_key(|a| a.rung.unwrap_or(a.app_depth + a.match_depth))
    }
}

fn apply_node_event(attempt: &mut RungAttempt, event: &TraceEvent) {
    match event.kind.as_str() {
        "search" => {
            let Some(id) = event.get_u64("node") else {
                return;
            };
            let parent = event.get_u64("parent").unwrap_or(0);
            let node = attempt.nodes.entry(id).or_default();
            node.id = id;
            node.parent = parent;
            node.ty = event.get("ty").unwrap_or_default().to_string();
            node.branch_depth = event.get_u64("branch_depth").unwrap_or(0);
            node.match_depth = event.get_u64("match_depth").unwrap_or(0);
            if parent != 0 {
                if let Some(parent_node) = attempt.nodes.get_mut(&parent) {
                    parent_node.children.push(id);
                }
            }
        }
        "node_finish" => {
            let Some(id) = event.get_u64("node") else {
                return;
            };
            let node = attempt.nodes.entry(id).or_default();
            node.id = id;
            node.status = event.get("status").map(str::to_string);
            node.elapsed_ms = event.get_f64("elapsed_ms");
            node.term = event.get("term").map(str::to_string);
            node.memo_hits = event.get_u64("memo_hits").unwrap_or(0);
            node.memo_misses = event.get_u64("memo_misses").unwrap_or(0);
            node.lemmas_replayed = event.get_u64("lemmas_replayed").unwrap_or(0);
            node.phases = event.get("phases").and_then(PhaseProfile::parse_json);
        }
        "candidate_accept" | "candidate_reject" | "guard_found" | "guard_missing"
        | "match_case" => {
            let Some(id) = event.get_u64("node") else {
                return;
            };
            let node = attempt.nodes.entry(id).or_default();
            node.id = id;
            match event.kind.as_str() {
                "candidate_accept" => node.candidates_accepted += 1,
                "candidate_reject" => node.candidates_rejected += 1,
                "guard_found" => node.guards_found += 1,
                "guard_missing" => node.guards_missing += 1,
                _ => node.match_cases += 1,
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_trace;

    #[test]
    fn windows_scope_node_ids_per_attempt() {
        // Two rung attempts for the same goal on one thread; node id 1
        // must not collide across them.
        let mut text = String::new();
        let mut seq = 0u64;
        let mut push = |ev: &str, rest: &str| {
            text.push_str(&format!(
                "{{\"ev\":\"{ev}\",\"seq\":{seq},\"t_ms\":{seq}.000,\"tid\":0{rest}}}\n"
            ));
            seq += 1;
        };
        push("trace_meta", ",\"schema\":2");
        push(
            "rung_start",
            ",\"rung\":0,\"goal\":\"g\",\"app_depth\":1,\"match_depth\":0,\"slice_secs\":1.0",
        );
        push(
            "goal_start",
            ",\"goal\":\"g\",\"app_depth\":1,\"match_depth\":0",
        );
        push("search", ",\"node\":1,\"parent\":0,\"goal\":\"g\",\"ty\":\"Int\",\"branch_depth\":1,\"match_depth\":0");
        push("node_finish", ",\"node\":1,\"goal\":\"g\",\"status\":\"exhausted\",\"elapsed_ms\":5.000,\"memo_hits\":0,\"memo_misses\":1,\"lemmas_replayed\":0");
        push(
            "goal_finish",
            ",\"goal\":\"g\",\"status\":\"failed\",\"time_secs\":0.005",
        );
        push("rung_finish", ",\"rung\":0,\"goal\":\"g\",\"app_depth\":1,\"match_depth\":0,\"status\":\"exhausted\",\"time_secs\":0.005");
        push(
            "rung_start",
            ",\"rung\":1,\"goal\":\"g\",\"app_depth\":2,\"match_depth\":0,\"slice_secs\":1.0",
        );
        push(
            "goal_start",
            ",\"goal\":\"g\",\"app_depth\":2,\"match_depth\":0",
        );
        push("search", ",\"node\":1,\"parent\":0,\"goal\":\"g\",\"ty\":\"Int\",\"branch_depth\":1,\"match_depth\":0");
        push("search", ",\"node\":2,\"parent\":1,\"goal\":\"g\",\"ty\":\"Bool\",\"branch_depth\":0,\"match_depth\":0");
        push("node_finish", ",\"node\":2,\"goal\":\"g\",\"status\":\"solved\",\"elapsed_ms\":1.000,\"memo_hits\":1,\"memo_misses\":0,\"lemmas_replayed\":0,\"term\":\"true\"");
        push("node_finish", ",\"node\":1,\"goal\":\"g\",\"status\":\"solved\",\"elapsed_ms\":4.000,\"memo_hits\":1,\"memo_misses\":1,\"lemmas_replayed\":0,\"term\":\"f true\"");
        push(
            "goal_finish",
            ",\"goal\":\"g\",\"status\":\"solved\",\"time_secs\":0.004",
        );
        push("rung_finish", ",\"rung\":1,\"goal\":\"g\",\"app_depth\":2,\"match_depth\":0,\"status\":\"solved\",\"time_secs\":0.004");

        let trace = parse_trace(&text).unwrap();
        let forest = DerivationForest::build(&trace);
        assert_eq!(forest.attempts.len(), 2);
        assert_eq!(forest.attempts[0].rung, Some(0));
        assert_eq!(forest.attempts[0].nodes.len(), 1);
        assert_eq!(forest.attempts[1].rung, Some(1));
        assert_eq!(forest.attempts[1].nodes.len(), 2);

        let winning = forest.winning("g").expect("solved attempt");
        assert_eq!(winning.rung, Some(1));
        assert_eq!(winning.root().unwrap().term.as_deref(), Some("f true"));
        assert_eq!(winning.winning_leaves(), vec!["true".to_string()]);
        let rendered = winning.render_winning();
        assert!(rendered.contains("⇒  f true"));
        assert!(rendered.contains("└─ [2] Bool"));
    }

    #[test]
    fn non_contributing_solved_children_are_summarized() {
        let mut text = String::new();
        let mut seq = 0u64;
        let mut push = |ev: &str, rest: &str| {
            text.push_str(&format!(
                "{{\"ev\":\"{ev}\",\"seq\":{seq},\"t_ms\":{seq}.000,\"tid\":0{rest}}}\n"
            ));
            seq += 1;
        };
        push(
            "goal_start",
            ",\"goal\":\"g\",\"app_depth\":1,\"match_depth\":1",
        );
        push(
            "search",
            ",\"node\":1,\"parent\":0,\"ty\":\"Int\",\"branch_depth\":1,\"match_depth\":1",
        );
        // A solved match case whose scrutinee was later abandoned: its
        // term does not occur in the root's final term.
        push(
            "search",
            ",\"node\":2,\"parent\":1,\"ty\":\"Int\",\"branch_depth\":1,\"match_depth\":0",
        );
        push("node_finish", ",\"node\":2,\"status\":\"solved\",\"elapsed_ms\":1.000,\"memo_hits\":0,\"memo_misses\":0,\"lemmas_replayed\":0,\"term\":\"discarded\"");
        push(
            "search",
            ",\"node\":3,\"parent\":1,\"ty\":\"Int\",\"branch_depth\":1,\"match_depth\":0",
        );
        push("node_finish", ",\"node\":3,\"status\":\"solved\",\"elapsed_ms\":1.000,\"memo_hits\":0,\"memo_misses\":0,\"lemmas_replayed\":0,\"term\":\"kept\"");
        push("node_finish", ",\"node\":1,\"status\":\"solved\",\"elapsed_ms\":3.000,\"memo_hits\":0,\"memo_misses\":0,\"lemmas_replayed\":0,\"term\":\"wrap kept\"");
        push(
            "goal_finish",
            ",\"goal\":\"g\",\"status\":\"solved\",\"time_secs\":0.003",
        );

        let trace = parse_trace(&text).unwrap();
        let forest = DerivationForest::build(&trace);
        let attempt = forest.winning("g").unwrap();
        let rendered = attempt.render_winning();
        assert!(rendered.contains("(+1 abandoned)"));
        assert!(!rendered.contains("discarded"));
        assert_eq!(attempt.winning_leaves(), vec!["kept".to_string()]);
    }
}
