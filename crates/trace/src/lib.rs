//! # synquid-trace
//!
//! The consumer side of the telemetry pipeline: parses the JSONL event
//! streams produced by `synquid_telemetry::events` (`--trace-out`),
//! replays them into first-class derivation trees, aggregates per-goal
//! timeout forensics, and exports Chrome trace-event JSON for
//! `chrome://tracing` / the Perfetto UI.
//!
//! Consumed by the `synquid explain` subcommand (derivation rendering of
//! a live run) and `report trace` (offline forensics over a batch trace
//! artifact). The reconstructed [`tree::DerivationForest`] is the data
//! structure later resumable-session and pruning-refinement work builds
//! on: it is the addressable form of what the search actually did.
//!
//! Schema compatibility: unknown event *fields* are tolerated (newer
//! producers may add them — see the versioning rules in
//! `docs/ARCHITECTURE.md`), unknown event *kinds* are a parse error.

pub mod analyze;
pub mod event;
pub mod perfetto;
pub mod tree;

pub use analyze::{analyze, GoalForensics, TraceReport};
pub use event::{parse_event, parse_trace, Trace, TraceError, TraceEvent, KNOWN_EVENT_KINDS};
pub use perfetto::to_chrome_trace;
pub use tree::{DerivationForest, DerivationNode, RungAttempt};
