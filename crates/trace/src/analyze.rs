//! Timeout forensics: per-goal aggregation of a trace stream.
//!
//! Answers "where did the 30 seconds go" for a goal that timed out, from
//! events alone: budget attribution by rung × phase, the most expensive
//! SMT queries, the candidate-rejection taxonomy (which head symbols were
//! tried and why they were pruned), and per-layer cache hit rates.
//!
//! Solver-side events (`smt_query`, `cache_hit`/`cache_miss`,
//! `lemma_*`) carry no goal or node field — the solver does not know what
//! it is solving for. They are attributed to the goal window open on
//! their thread when they fired, which is exact: one synthesizer run
//! stays on one thread.

use std::collections::BTreeMap;

use synquid_telemetry::{Phase, PhaseProfile};

use crate::event::Trace;
use crate::tree::DerivationForest;

/// One expensive SMT query (the producer only emits `smt_query` events
/// for queries at or above its threshold, 25 ms).
#[derive(Debug, Clone)]
pub struct SlowQuery {
    pub goal: String,
    pub elapsed_ms: f64,
    pub result: String,
    pub antecedent: String,
    pub consequent: String,
}

/// Per-layer cache counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheRate {
    pub hits: u64,
    pub misses: u64,
}

impl CacheRate {
    pub fn rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Aggregates for one goal.
#[derive(Debug, Clone, Default)]
pub struct GoalForensics {
    pub goal: String,
    /// True if any attempt solved the goal.
    pub solved: bool,
    /// Seconds spent across all rung attempts.
    pub total_secs: f64,
    /// Per rung: (rung index or `u64::MAX` for standalone runs, seconds,
    /// status, phase split of the attempt's root node when profiling was
    /// on).
    pub rungs: BTreeMap<u64, RungForensics>,
    /// Candidate rejections by `(head symbol, prune reason)`.
    pub rejections: BTreeMap<(String, String), u64>,
    /// Cache traffic by layer (`local`, `shared`, `enum-memo`,
    /// `mus-memo`), attributed via the goal window.
    pub caches: BTreeMap<String, CacheRate>,
    /// Conflict lemmas learned / replayed inside this goal's windows.
    pub lemmas_learned: u64,
    pub lemmas_replayed: u64,
    /// `smt_query` events attributed to this goal.
    pub slow_queries: Vec<SlowQuery>,
}

/// Aggregates for one rung of one goal (attempts at the same rung index
/// merge, which only happens for re-queued rungs).
#[derive(Debug, Clone, Default)]
pub struct RungForensics {
    pub secs: f64,
    pub attempts: u64,
    pub statuses: Vec<String>,
    pub phases: PhaseProfile,
}

/// The whole report: per-goal forensics plus stream-level counters.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    pub goals: BTreeMap<String, GoalForensics>,
    pub schema_version: u64,
    pub events: usize,
}

/// The sentinel rung index for attempts that ran outside the engine
/// scheduler (single-goal `synquid` runs have no portfolio).
pub const NO_RUNG: u64 = u64::MAX;

/// Aggregates a parsed trace into its forensics report.
pub fn analyze(trace: &Trace) -> TraceReport {
    let forest = DerivationForest::build(trace);
    let mut report = TraceReport {
        schema_version: trace.schema_version,
        events: trace.events.len(),
        ..TraceReport::default()
    };

    // Per-attempt aggregates from the reconstructed forest.
    for attempt in &forest.attempts {
        let goal = report
            .goals
            .entry(attempt.goal.clone())
            .or_insert_with(|| GoalForensics {
                goal: attempt.goal.clone(),
                ..GoalForensics::default()
            });
        goal.solved |= attempt.status == "solved";
        goal.total_secs += attempt.time_secs;
        let rung = goal
            .rungs
            .entry(attempt.rung.unwrap_or(NO_RUNG))
            .or_default();
        rung.secs += attempt.time_secs;
        rung.attempts += 1;
        rung.statuses.push(attempt.status.clone());
        if let Some(phases) = attempt.root().and_then(|r| r.phases.as_ref()) {
            rung.phases.merge(phases);
        }
    }

    // Event-level aggregates needing window attribution: walk the stream
    // again with the same per-thread window discipline the tree builder
    // uses.
    let mut open_goal: BTreeMap<u64, String> = BTreeMap::new();
    for event in &trace.events {
        match event.kind.as_str() {
            "goal_start" => {
                open_goal.insert(event.tid, event.get("goal").unwrap_or_default().to_string());
            }
            "goal_finish" => {
                open_goal.remove(&event.tid);
            }
            "candidate_reject" => {
                let Some(goal) = open_goal.get(&event.tid) else {
                    continue;
                };
                let Some(forensics) = report.goals.get_mut(goal) else {
                    continue;
                };
                let head = event
                    .get("program")
                    .and_then(|p| p.trim_start_matches('(').split_whitespace().next())
                    .unwrap_or("?")
                    .to_string();
                let reason = event.get("reason").unwrap_or("?").to_string();
                *forensics.rejections.entry((head, reason)).or_insert(0) += 1;
            }
            "cache_hit" | "cache_miss" => {
                let Some(goal) = open_goal.get(&event.tid) else {
                    continue;
                };
                let Some(forensics) = report.goals.get_mut(goal) else {
                    continue;
                };
                let layer = event.get("layer").unwrap_or("?").to_string();
                let rate = forensics.caches.entry(layer).or_default();
                if event.kind == "cache_hit" {
                    rate.hits += 1;
                } else {
                    rate.misses += 1;
                }
            }
            "lemma_learn" | "lemma_replay" => {
                let Some(goal) = open_goal.get(&event.tid) else {
                    continue;
                };
                let Some(forensics) = report.goals.get_mut(goal) else {
                    continue;
                };
                if event.kind == "lemma_learn" {
                    forensics.lemmas_learned += 1;
                } else {
                    forensics.lemmas_replayed += event.get_u64("n").unwrap_or(1);
                }
            }
            "smt_query" => {
                let Some(goal) = open_goal.get(&event.tid) else {
                    continue;
                };
                let Some(forensics) = report.goals.get_mut(goal) else {
                    continue;
                };
                forensics.slow_queries.push(SlowQuery {
                    goal: goal.clone(),
                    elapsed_ms: event.get_f64("elapsed_ms").unwrap_or(0.0),
                    result: event.get("result").unwrap_or("?").to_string(),
                    antecedent: event.get("antecedent").unwrap_or_default().to_string(),
                    consequent: event.get("consequent").unwrap_or_default().to_string(),
                });
            }
            _ => {}
        }
    }
    for forensics in report.goals.values_mut() {
        forensics.slow_queries.sort_by(|a, b| {
            b.elapsed_ms
                .partial_cmp(&a.elapsed_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
    report
}

impl TraceReport {
    /// Renders the report as text: a summary table, then per-goal
    /// sections with the "where the time went" breakdown for unsolved
    /// goals first. `top_k` bounds the slow-query and rejection lists.
    pub fn render(&self, top_k: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} events, schema v{}, {} goals ({} solved)\n\n",
            self.events,
            self.schema_version,
            self.goals.len(),
            self.goals.values().filter(|g| g.solved).count(),
        ));

        // Unsolved goals first: they are what forensics is for.
        let mut goals: Vec<&GoalForensics> = self.goals.values().collect();
        goals.sort_by(|a, b| {
            (a.solved, std::cmp::Reverse((b.total_secs * 1e6) as u64))
                .cmp(&(b.solved, std::cmp::Reverse((a.total_secs * 1e6) as u64)))
        });
        for goal in goals {
            out.push_str(&goal.render(top_k));
            out.push('\n');
        }
        out
    }
}

impl GoalForensics {
    /// Renders one goal's section.
    pub fn render(&self, top_k: usize) -> String {
        let mut out = String::new();
        let verdict = if self.solved { "solved" } else { "UNSOLVED" };
        out.push_str(&format!(
            "== {} — {verdict}, {:.2}s across {} rung(s) ==\n",
            self.goal,
            self.total_secs,
            self.rungs.len()
        ));

        // Budget attribution by rung × phase: where the seconds went.
        out.push_str("  rung  secs    attempts  outcome            dominant phases\n");
        for (rung, forensics) in &self.rungs {
            let rung_label = if *rung == NO_RUNG {
                "-".to_string()
            } else {
                rung.to_string()
            };
            let outcome = forensics.statuses.join(",");
            let phases = dominant_phases(&forensics.phases, 3);
            out.push_str(&format!(
                "  {rung_label:<5} {:<7.2} {:<9} {outcome:<18} {phases}\n",
                forensics.secs, forensics.attempts
            ));
        }

        // Per-layer cache hit rates.
        if !self.caches.is_empty() {
            out.push_str("  caches: ");
            let mut parts = Vec::new();
            for (layer, rate) in &self.caches {
                parts.push(format!(
                    "{layer} {:.0}% ({}/{})",
                    rate.rate() * 100.0,
                    rate.hits,
                    rate.hits + rate.misses
                ));
            }
            out.push_str(&parts.join(", "));
            out.push('\n');
        }
        if self.lemmas_learned + self.lemmas_replayed > 0 {
            out.push_str(&format!(
                "  lemmas: {} learned, {} replayed\n",
                self.lemmas_learned, self.lemmas_replayed
            ));
        }

        // Candidate-rejection taxonomy by head symbol × prune reason.
        if !self.rejections.is_empty() {
            let mut rows: Vec<(&(String, String), &u64)> = self.rejections.iter().collect();
            rows.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
            out.push_str("  rejections (head × reason):\n");
            for ((head, reason), n) in rows.into_iter().take(top_k) {
                out.push_str(&format!("    {n:>6}  {head}  [{reason}]\n"));
            }
        }

        // Most expensive SMT queries.
        if !self.slow_queries.is_empty() {
            out.push_str(&format!(
                "  slowest SMT queries (of {} ≥ threshold):\n",
                self.slow_queries.len()
            ));
            for query in self.slow_queries.iter().take(top_k) {
                out.push_str(&format!(
                    "    {:>8.1}ms  {:<8} {} ⊢ {}\n",
                    query.elapsed_ms,
                    query.result,
                    truncate(&query.antecedent, 60),
                    truncate(&query.consequent, 40),
                ));
            }
        }
        out
    }
}

/// The `k` phases with the largest share of a profile, as
/// `"name 1.23s (45%)"` fragments.
fn dominant_phases(profile: &PhaseProfile, k: usize) -> String {
    let total = profile.total_secs();
    if total <= 0.0 {
        return "(no profile — run the producer with --stats)".into();
    }
    let mut split: Vec<(&'static str, f64)> = Phase::ALL
        .into_iter()
        .map(|p| (p.name(), profile.get(p).total_secs()))
        .filter(|(_, s)| *s > 0.0)
        .collect();
    split.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    split
        .into_iter()
        .take(k)
        .map(|(name, secs)| format!("{name} {secs:.2}s ({:.0}%)", 100.0 * secs / total))
        .collect::<Vec<_>>()
        .join(", ")
}

fn truncate(text: &str, max: usize) -> String {
    if text.chars().count() <= max {
        text.to_string()
    } else {
        let prefix: String = text.chars().take(max.saturating_sub(1)).collect();
        format!("{prefix}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_trace;

    #[test]
    fn rejections_caches_and_queries_attribute_to_the_open_goal() {
        let mut text = String::new();
        let mut seq = 0u64;
        let mut push = |ev: &str, tid: u64, rest: &str| {
            text.push_str(&format!(
                "{{\"ev\":\"{ev}\",\"seq\":{seq},\"t_ms\":{seq}.000,\"tid\":{tid}{rest}}}\n"
            ));
            seq += 1;
        };
        // Two goals interleaved on two threads.
        push(
            "goal_start",
            0,
            ",\"goal\":\"alpha\",\"app_depth\":1,\"match_depth\":0",
        );
        push(
            "goal_start",
            1,
            ",\"goal\":\"beta\",\"app_depth\":1,\"match_depth\":0",
        );
        push(
            "candidate_reject",
            0,
            ",\"node\":1,\"goal\":\"alpha\",\"program\":\"Cons x xs\",\"reason\":\"subtype\"",
        );
        push(
            "candidate_reject",
            0,
            ",\"node\":1,\"goal\":\"alpha\",\"program\":\"Cons y ys\",\"reason\":\"subtype\"",
        );
        push("cache_hit", 1, ",\"layer\":\"shared\"");
        push("cache_miss", 1, ",\"layer\":\"shared\"");
        push(
            "smt_query",
            1,
            ",\"elapsed_ms\":31.500,\"result\":\"Unsat\",\"antecedent\":\"a\",\"consequent\":\"b\"",
        );
        push("lemma_replay", 1, ",\"n\":3");
        push(
            "goal_finish",
            0,
            ",\"goal\":\"alpha\",\"status\":\"timeout\",\"time_secs\":30.000",
        );
        push(
            "goal_finish",
            1,
            ",\"goal\":\"beta\",\"status\":\"solved\",\"time_secs\":1.000",
        );

        let report = analyze(&parse_trace(&text).unwrap());
        let alpha = &report.goals["alpha"];
        assert!(!alpha.solved);
        assert_eq!(
            alpha.rejections[&("Cons".to_string(), "subtype".to_string())],
            2
        );
        assert!(alpha.caches.is_empty());
        let beta = &report.goals["beta"];
        assert!(beta.solved);
        assert_eq!(beta.caches["shared"].hits, 1);
        assert_eq!(beta.caches["shared"].misses, 1);
        assert_eq!(beta.slow_queries.len(), 1);
        assert_eq!(beta.lemmas_replayed, 3);

        let rendered = report.render(5);
        assert!(rendered.contains("UNSOLVED"));
        assert!(rendered.contains("Cons  [subtype]"));
        assert!(rendered.contains("31.5ms"));
    }
}
