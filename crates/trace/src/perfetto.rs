//! Chrome trace-event export (`chrome://tracing`, Perfetto UI).
//!
//! Maps the JSONL stream onto the trace-event JSON format: matched
//! `rung_start`/`rung_finish`, `goal_start`/`goal_finish` and
//! `search`/`node_finish` pairs become complete (`"ph":"X"`) duration
//! events; `smt_query` events (which carry their own `elapsed_ms`)
//! become complete events ending at their emission time; ledger and
//! skip events become instants. Threads are named after the sink's
//! `tid`, so a multi-worker batch run shows one swim-lane per worker.
//!
//! All timestamps are microseconds (`t_ms × 1000`), the unit the format
//! requires; nesting needs no explicit stack because every span pair is
//! emitted synchronously on its own thread.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::event::{Trace, TraceEvent};

/// Converts a parsed trace into Chrome trace-event JSON.
pub fn to_chrome_trace(trace: &Trace) -> String {
    let mut out = Vec::new();
    let mut tids = BTreeSet::new();
    // Open span starts, keyed per thread: rung/goal are one-deep, node
    // spans nest by id.
    let mut open_rung: BTreeMap<u64, &TraceEvent> = BTreeMap::new();
    let mut open_goal: BTreeMap<u64, &TraceEvent> = BTreeMap::new();
    let mut open_node: BTreeMap<(u64, u64), &TraceEvent> = BTreeMap::new();

    for event in &trace.events {
        tids.insert(event.tid);
        match event.kind.as_str() {
            "rung_start" => {
                open_rung.insert(event.tid, event);
            }
            "rung_finish" => {
                if let Some(start) = open_rung.remove(&event.tid) {
                    let name = format!(
                        "rung {} {} (a{} m{}) {}",
                        event.get("rung").unwrap_or("-"),
                        event.get("goal").unwrap_or("?"),
                        event.get("app_depth").unwrap_or("?"),
                        event.get("match_depth").unwrap_or("?"),
                        event.get("status").unwrap_or(""),
                    );
                    out.push(complete(&name, "rung", start.t_ms, event.t_ms, event.tid));
                }
            }
            "goal_start" => {
                open_goal.insert(event.tid, event);
            }
            "goal_finish" => {
                if let Some(start) = open_goal.remove(&event.tid) {
                    let name = format!(
                        "goal {} {}",
                        event.get("goal").unwrap_or("?"),
                        event.get("status").unwrap_or(""),
                    );
                    out.push(complete(&name, "goal", start.t_ms, event.t_ms, event.tid));
                }
            }
            "search" => {
                if let Some(node) = event.get_u64("node") {
                    open_node.insert((event.tid, node), event);
                }
            }
            "node_finish" => {
                if let Some(node) = event.get_u64("node") {
                    if let Some(start) = open_node.remove(&(event.tid, node)) {
                        let name = format!(
                            "node {} {} {}",
                            node,
                            start.get("ty").unwrap_or("?"),
                            event.get("status").unwrap_or(""),
                        );
                        out.push(complete(&name, "node", start.t_ms, event.t_ms, event.tid));
                    }
                }
            }
            "smt_query" => {
                let dur_ms = event.get_f64("elapsed_ms").unwrap_or(0.0);
                let name = format!("smt {}", event.get("result").unwrap_or("?"));
                out.push(complete(
                    &name,
                    "smt",
                    (event.t_ms - dur_ms).max(0.0),
                    event.t_ms,
                    event.tid,
                ));
            }
            "ledger_reserve" | "ledger_settle" | "rung_skip" | "rung_out_of_budget" => {
                let name = format!("{} {}", event.kind, event.get("goal").unwrap_or(""),);
                out.push(instant(&name, "ledger", event.t_ms, event.tid));
            }
            _ => {}
        }
    }

    // Thread-name metadata so the UI labels the swim-lanes.
    let mut entries: Vec<String> = tids
        .into_iter()
        .map(|tid| {
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"worker {tid}\"}}}}"
            )
        })
        .collect();
    entries.extend(out);
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        entries.join(",")
    )
}

/// A complete (`"ph":"X"`) duration event; timestamps in ms are scaled
/// to the format's microseconds.
fn complete(name: &str, cat: &str, start_ms: f64, end_ms: f64, tid: u64) -> String {
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.0},\"dur\":{:.0},\"pid\":1,\"tid\":{tid}}}",
        escape(name),
        escape(cat),
        start_ms * 1e3,
        (end_ms - start_ms).max(0.0) * 1e3,
    )
}

/// A thread-scoped instant (`"ph":"i"`) event.
fn instant(name: &str, cat: &str, at_ms: f64, tid: u64) -> String {
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.0},\"pid\":1,\"tid\":{tid}}}",
        escape(name),
        escape(cat),
        at_ms * 1e3,
    )
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_trace;

    #[test]
    fn spans_and_instants_round_trip_to_trace_event_json() {
        let mut text = String::new();
        let mut seq = 0u64;
        let mut push = |ev: &str, t_ms: f64, rest: &str| {
            text.push_str(&format!(
                "{{\"ev\":\"{ev}\",\"seq\":{seq},\"t_ms\":{t_ms:.3},\"tid\":0{rest}}}\n"
            ));
            seq += 1;
        };
        push(
            "rung_start",
            1.0,
            ",\"rung\":0,\"goal\":\"g\",\"app_depth\":1,\"match_depth\":0,\"slice_secs\":1.0",
        );
        push(
            "goal_start",
            1.2,
            ",\"goal\":\"g\",\"app_depth\":1,\"match_depth\":0",
        );
        push(
            "search",
            1.3,
            ",\"node\":1,\"parent\":0,\"ty\":\"Int\",\"branch_depth\":1,\"match_depth\":0",
        );
        push(
            "smt_query",
            30.0,
            ",\"elapsed_ms\":25.500,\"result\":\"Unsat\",\"antecedent\":\"a\",\"consequent\":\"b\"",
        );
        push("node_finish", 40.0, ",\"node\":1,\"status\":\"solved\",\"elapsed_ms\":38.700,\"memo_hits\":0,\"memo_misses\":0,\"lemmas_replayed\":0,\"term\":\"x\"");
        push(
            "goal_finish",
            40.5,
            ",\"goal\":\"g\",\"status\":\"solved\",\"time_secs\":0.039",
        );
        push(
            "ledger_settle",
            40.6,
            ",\"rung\":0,\"goal\":\"g\",\"charged_secs\":0.039,\"remaining_secs\":0.961",
        );
        push("rung_finish", 40.7, ",\"rung\":0,\"goal\":\"g\",\"app_depth\":1,\"match_depth\":0,\"status\":\"solved\",\"time_secs\":0.039");

        let json = to_chrome_trace(&parse_trace(&text).unwrap());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"thread_name\""));
        // rung span: 1.0ms → 40.7ms = ts 1000, dur 39700 (µs).
        assert!(json.contains("\"ts\":1000,\"dur\":39700"));
        // smt span ends at emission time: ts (30-25.5)*1000 = 4500.
        assert!(json.contains("\"ts\":4500,\"dur\":25500"));
        assert!(json.contains("\"ph\":\"i\""));
        // Every entry is itself valid flat JSON (no stray commas).
        assert!(!json.contains(",,"));
        assert!(!json.contains("[,"));
    }
}
