//! Derivation reconstruction round-trip: a solved run's event stream,
//! replayed through `DerivationForest`, must reproduce the synthesized
//! program — the winning attempt's root term is the program, and every
//! leaf of the winning derivation occurs in it. This is the acceptance
//! gate for `synquid explain`.
//!
//! Separate test binary from `conformance.rs`: the trace sink is
//! process-global, so each sink-owning integration test gets its own
//! process.

use std::time::Duration;
use synquid_engine::{Engine, EngineConfig, GoalJob};
use synquid_lang::spec::goal_from_corpus;
use synquid_telemetry::events::{init_trace_buffer, take_trace_buffer};
use synquid_trace::{parse_trace, DerivationForest};

fn flatten(term: &str) -> String {
    term.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[test]
fn winning_derivation_matches_synthesized_term() {
    synquid_telemetry::set_profiling(true);
    init_trace_buffer();

    let goal = goal_from_corpus("is_empty").expect("is_empty in specs/ corpus");
    let engine = Engine::new(EngineConfig {
        jobs: 1,
        timeout: Duration::from_secs(20),
        ..EngineConfig::default()
    });
    let report = engine.run(vec![GoalJob::new("corpus:is_empty", goal)]);
    let outcome = &report.outcomes[0];
    assert!(
        outcome.result.solved,
        "is_empty must solve well under budget"
    );
    let program = flatten(outcome.result.program.as_deref().expect("solved ⇒ program"));

    let text = take_trace_buffer().expect("buffer sink was installed");
    let trace = parse_trace(&text).expect("solved run emits a parseable trace");
    let forest = DerivationForest::build(&trace);

    let winning = forest
        .winning("is_empty")
        .expect("forest has a solved attempt for is_empty");
    assert_eq!(winning.status, "solved");

    // The root of the winning attempt carries the program body (the
    // argument-introducing lambdas are peeled off before the recursive
    // search opens node 1, so the body is a suffix of the program)…
    let root = winning.root().expect("winning attempt has a root node");
    assert_eq!(root.status.as_deref(), Some("solved"));
    let root_term = flatten(root.term.as_deref().expect("solved root carries its term"));
    assert!(
        program.ends_with(&root_term),
        "root term {root_term:?} is not the body of program {program:?}"
    );

    // …and every leaf of the contributing subtree occurs inside it.
    let leaves = winning.winning_leaves();
    assert!(!leaves.is_empty(), "winning derivation has leaves");
    for leaf in &leaves {
        assert!(
            program.contains(&flatten(leaf)),
            "leaf term {leaf:?} does not occur in program {program:?}"
        );
    }

    // Node ids are preorder within the attempt: every child id is
    // greater than its parent's, and the root is node 1.
    for node in winning.nodes.values() {
        if node.parent != 0 {
            assert!(
                node.id > node.parent,
                "preorder violated at node {}",
                node.id
            );
        }
    }
    assert!(winning.nodes.contains_key(&1), "root node has id 1");
}
