//! Golden trace-schema conformance: runs a fast corpus subset with the
//! in-memory trace sink and pushes every emitted line through the
//! offline parser. This is the contract test between producers
//! (`crates/core`, `crates/engine`, `crates/solver`) and consumers
//! (`crates/trace`): if a producer starts emitting an event kind the
//! parser does not know, or drops an envelope field, this fails before
//! any forensics tooling silently ignores the stream.
//!
//! Kept in its own test binary: the trace sink is process-global, so a
//! test that installs the buffer sink cannot share a process with one
//! that asserts on a different sink configuration.

use std::time::Duration;
use synquid_core::{SynthesisConfig, Synthesizer, TypeChecker};
use synquid_engine::{Engine, EngineConfig, GoalJob};
use synquid_lang::spec::goal_from_corpus;
use synquid_telemetry::events::{init_trace_buffer, take_trace_buffer, EVENT_SCHEMA_VERSION};
use synquid_trace::{parse_event, parse_trace, TraceError, KNOWN_EVENT_KINDS};

/// Fast corpus goals (each well under a second) covering the match,
/// conditional, and recursive-call event shapes.
const FAST_GOALS: &[&str] = &["is_empty", "length", "reverse"];

#[test]
fn fast_corpus_trace_conforms_to_schema() {
    synquid_telemetry::set_profiling(true);
    init_trace_buffer();

    let jobs: Vec<GoalJob> = FAST_GOALS
        .iter()
        .map(|name| {
            let goal = goal_from_corpus(name)
                .unwrap_or_else(|| panic!("corpus goal {name} not found (specs/ missing?)"));
            GoalJob::new(format!("corpus:{name}"), goal)
        })
        .collect();
    // Two workers so the stream interleaves tids: consumers must scope
    // goal windows per thread, and this test must keep them honest.
    let engine = Engine::new(EngineConfig {
        jobs: 2,
        timeout: Duration::from_secs(20),
        ..EngineConfig::default()
    });
    let report = engine.run(jobs);
    for outcome in &report.outcomes {
        assert!(
            outcome.result.solved,
            "fast goal {} did not solve; conformance needs a full event stream",
            outcome.result.name
        );
    }

    // The engine path never drives the bidirectional `TypeChecker` (it
    // is the standalone re-checking facility), so replay one winner
    // through it to put the `check_step` kinds on the stream as well.
    let goal = goal_from_corpus("is_empty").expect("is_empty in corpus");
    let shallow = SynthesisConfig {
        max_app_depth: 1,
        ..SynthesisConfig::default()
    };
    let mut synthesizer = Synthesizer::new(shallow);
    let winner = synthesizer.synthesize(&goal).expect("is_empty solves");
    TypeChecker::new()
        .check_goal(&goal, &winner.program)
        .expect("synthesized program re-checks");

    let text = take_trace_buffer().expect("buffer sink was installed");
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(
        lines.len() > 50,
        "suspiciously short trace ({} lines); did producers stop emitting?",
        lines.len()
    );

    // Every line must parse individually: envelope present, kind known.
    for (idx, line) in lines.iter().enumerate() {
        let ev = parse_event(line, idx + 1)
            .unwrap_or_else(|e| panic!("line {}: {e}\n  {line}", idx + 1));
        assert!(
            KNOWN_EVENT_KINDS.contains(&ev.kind.as_str()),
            "parse_event accepted unknown kind {:?}",
            ev.kind
        );
    }

    // The stream opens with a versioned header and the whole-trace
    // parser agrees on the version.
    let trace = parse_trace(&text).expect("whole trace parses");
    assert_eq!(trace.schema_version, EVENT_SCHEMA_VERSION);
    assert_eq!(
        trace.events.first().map(|e| e.kind.as_str()),
        Some("trace_meta")
    );

    // The subset must exercise the kinds the forensics layer is built
    // on; a producer regression that silently stops emitting one of
    // these would otherwise only show up as empty reports.
    for required in [
        "goal_start",
        "goal_finish",
        "rung_start",
        "rung_finish",
        "search",
        "node_finish",
        "check_step",
        "check_step_finish",
    ] {
        assert!(
            trace.events.iter().any(|e| e.kind == required),
            "fast corpus run emitted no {required} event"
        );
    }
    // Every goal window that opened also closed (per tid, goal windows
    // are balanced in a run that did not crash).
    let starts = trace
        .events
        .iter()
        .filter(|e| e.kind == "goal_start")
        .count();
    let finishes = trace
        .events
        .iter()
        .filter(|e| e.kind == "goal_finish")
        .count();
    assert_eq!(starts, finishes, "unbalanced goal windows");
}

#[test]
fn forward_compat_rules() {
    // Unknown *fields* are tolerated (a newer producer may add them)…
    let ev = parse_event(
        r#"{"ev":"search","seq":1,"t_ms":0.5,"tid":0,"node":1,"new_field_from_v9":"x"}"#,
        1,
    )
    .expect("unknown field must be tolerated");
    assert_eq!(ev.get("new_field_from_v9"), Some("x"));

    // …unknown *kinds* are not (the consumer would misattribute time)…
    let err = parse_event(r#"{"ev":"warp_drive","seq":2,"t_ms":1.0,"tid":0}"#, 2);
    assert!(matches!(err, Err(TraceError::UnknownKind { .. })));

    // …and a missing envelope field is a malformed stream, not a warning.
    for broken in [
        r#"{"seq":3,"t_ms":1.0,"tid":0}"#,
        r#"{"ev":"search","t_ms":1.0,"tid":0}"#,
        r#"{"ev":"search","seq":3,"tid":0}"#,
        r#"{"ev":"search","seq":3,"t_ms":1.0}"#,
    ] {
        let err = parse_event(broken, 3);
        assert!(
            matches!(err, Err(TraceError::MissingEnvelope { .. })),
            "accepted envelope-less line {broken}"
        );
    }
}
