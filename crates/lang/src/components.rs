//! Standard component libraries used by the benchmark specifications.
//!
//! These mirror the component sets listed in Table 1 of the paper: integer
//! constants and arithmetic (`0`, `inc`, `dec`), comparisons (`≤`, `<`,
//! `≠`, `=`), boolean constants and connectives, and the `List`, `IList`
//! (sorted list) and `BST` datatypes with their measures.

use crate::datatypes::{
    address_book_datatype, avl_datatype, heap_datatype, rbt_datatype, strict_list_datatype,
    tree_datatype, unique_list_datatype,
};
use synquid_logic::{Qualifier, Sort, Term};
use synquid_types::{
    bst_datatype, increasing_list_datatype, list_datatype, BaseType, Environment, RType,
};

/// The value variable at sort `Int`.
fn nu_int() -> Term {
    Term::value_var(Sort::Int)
}

/// The value variable at sort `Bool`.
fn nu_bool() -> Term {
    Term::value_var(Sort::Bool)
}

fn ivar(name: &str) -> Term {
    Term::var(name, Sort::Int)
}

/// Adds the integer components `zero`, `inc`, `dec` (the paper's `0`,
/// `inc`, `dec`).
pub fn add_int_components(env: &mut Environment) {
    env.add_var(
        "zero",
        RType::refined(BaseType::Int, nu_int().eq(Term::int(0))),
    );
    env.add_var(
        "inc",
        RType::fun(
            "x",
            RType::int(),
            RType::refined(BaseType::Int, nu_int().eq(ivar("x").plus(Term::int(1)))),
        ),
    );
    env.add_var(
        "dec",
        RType::fun(
            "x",
            RType::int(),
            RType::refined(BaseType::Int, nu_int().eq(ivar("x").minus(Term::int(1)))),
        ),
    );
}

/// Adds binary integer arithmetic components `plus` and `minus` (used by
/// the tree-counting and range benchmarks, whose component sets in Table 1
/// include `+`).
pub fn add_arith_components(env: &mut Environment) {
    env.add_var(
        "plus",
        RType::fun_n(
            vec![("x".into(), RType::int()), ("y".into(), RType::int())],
            RType::refined(BaseType::Int, nu_int().eq(ivar("x").plus(ivar("y")))),
        ),
    );
    env.add_var(
        "minus",
        RType::fun_n(
            vec![("x".into(), RType::int()), ("y".into(), RType::int())],
            RType::refined(BaseType::Int, nu_int().eq(ivar("x").minus(ivar("y")))),
        ),
    );
    env.add_var(
        "one",
        RType::refined(BaseType::Int, nu_int().eq(Term::int(1))),
    );
}

/// Adds the comparison components `leq`, `lt`, `neq`, `eq` over a sort
/// (integers or a type variable with a generic order).
pub fn add_comparison_components(env: &mut Environment, sort: Sort) {
    let scalar = || match &sort {
        Sort::Int => RType::int(),
        Sort::Var(a) => RType::tyvar(a.clone()),
        other => panic!("comparisons only over ordered sorts, got {other}"),
    };
    let x = || Term::var("x", sort.clone());
    let y = || Term::var("y", sort.clone());
    let make = |body: Term| {
        RType::fun_n(
            vec![("x".into(), scalar()), ("y".into(), scalar())],
            RType::refined(BaseType::Bool, nu_bool().iff(body)),
        )
    };
    let suffix = match &sort {
        Sort::Int => "",
        _ => "g",
    };
    env.add_var(format!("leq{suffix}"), make(x().le(y())));
    env.add_var(format!("lt{suffix}"), make(x().lt(y())));
    env.add_var(format!("neq{suffix}"), make(x().neq(y())));
    env.add_var(format!("eq{suffix}"), make(x().eq(y())));
}

/// Adds boolean constants and connectives (`true`, `false`, `not`, `and`,
/// `or`).
pub fn add_bool_components(env: &mut Environment) {
    env.add_var(
        "true",
        RType::refined(BaseType::Bool, nu_bool().iff(Term::tt())),
    );
    env.add_var(
        "false",
        RType::refined(BaseType::Bool, nu_bool().iff(Term::ff())),
    );
    env.add_var(
        "not",
        RType::fun(
            "b",
            RType::bool(),
            RType::refined(
                BaseType::Bool,
                nu_bool().iff(Term::var("b", Sort::Bool).not()),
            ),
        ),
    );
    let b = |n: &str| Term::var(n, Sort::Bool);
    env.add_var(
        "and",
        RType::fun_n(
            vec![("p".into(), RType::bool()), ("q".into(), RType::bool())],
            RType::refined(BaseType::Bool, nu_bool().iff(b("p").and(b("q")))),
        ),
    );
    env.add_var(
        "or",
        RType::fun_n(
            vec![("p".into(), RType::bool()), ("q".into(), RType::bool())],
            RType::refined(BaseType::Bool, nu_bool().iff(b("p").or(b("q")))),
        ),
    );
}

/// Adds integer constant components `c0 … cn` with types `{Int | ν = i}`
/// (used by the SyGuS-style benchmarks, which return positional indices).
pub fn add_int_constants(env: &mut Environment, up_to: i64) {
    for i in 0..=up_to {
        env.add_var(
            format!("c{i}"),
            RType::refined(BaseType::Int, nu_int().eq(Term::int(i))),
        );
    }
}

/// The sort and type of `List a`.
pub fn list_type(elem: RType) -> RType {
    RType::base(BaseType::Data("List".into(), vec![elem]))
}

/// The sort and type of `IList a` (increasing list).
pub fn ilist_type(elem: RType) -> RType {
    RType::base(BaseType::Data("IList".into(), vec![elem]))
}

/// The sort and type of `BST a`.
pub fn bst_type(elem: RType) -> RType {
    RType::base(BaseType::Data("BST".into(), vec![elem]))
}

/// The `len` measure applied to the value variable of a `List a` type.
pub fn len_of(t: Term) -> Term {
    Term::app("len", vec![t], Sort::Int)
}

/// The `elems` measure applied to a term.
pub fn elems_of(t: Term, elem_sort: Sort) -> Term {
    Term::app("elems", vec![t], Sort::set(elem_sort))
}

/// The value variable at `List a` sort.
pub fn nu_list(elem_sort: Sort) -> Term {
    Term::value_var(Sort::Data("List".into(), vec![elem_sort]))
}

/// A baseline environment with the standard qualifiers `? ≤ ?`, `? ≠ ?`,
/// `? < ?` over integers and over a generic element sort.
pub fn base_environment() -> Environment {
    let mut env = Environment::new();
    env.add_qualifiers(Qualifier::standard(Sort::Int));
    env.add_qualifiers(Qualifier::standard(Sort::var("a")));
    env
}

/// Environment with the list datatype and integer components, the starting
/// point of most list benchmarks.
pub fn list_environment() -> Environment {
    let mut env = base_environment();
    env.add_datatype(list_datatype());
    add_int_components(&mut env);
    env
}

/// Environment with lists, sorted lists, comparisons, and integers (used
/// by the sorting benchmarks).
pub fn sorting_environment() -> Environment {
    let mut env = list_environment();
    env.add_datatype(increasing_list_datatype());
    add_comparison_components(&mut env, Sort::var("a"));
    env
}

/// Environment with the BST datatype and generic comparisons.
pub fn bst_environment() -> Environment {
    let mut env = base_environment();
    env.add_datatype(bst_datatype());
    add_bool_components(&mut env);
    add_comparison_components(&mut env, Sort::var("a"));
    env
}

/// The `tsize` measure applied to a term (binary trees).
pub fn tsize_of(t: Term) -> Term {
    Term::app("tsize", vec![t], Sort::Int)
}

/// The `telems` measure applied to a term (binary trees).
pub fn telems_of(t: Term, elem_sort: Sort) -> Term {
    Term::app("telems", vec![t], Sort::set(elem_sort))
}

/// The `helems` measure applied to a term (binary heaps).
pub fn helems_of(t: Term, elem_sort: Sort) -> Term {
    Term::app("helems", vec![t], Sort::set(elem_sort))
}

/// The `uelems` measure applied to a term (unique lists).
pub fn uelems_of(t: Term, elem_sort: Sort) -> Term {
    Term::app("uelems", vec![t], Sort::set(elem_sort))
}

/// The `selems` measure applied to a term (strictly sorted lists).
pub fn selems_of(t: Term, elem_sort: Sort) -> Term {
    Term::app("selems", vec![t], Sort::set(elem_sort))
}

/// The `Tree a` type.
pub fn tree_type(elem: RType) -> RType {
    RType::base(BaseType::Data("Tree".into(), vec![elem]))
}

/// The `Heap a` type.
pub fn heap_type(elem: RType) -> RType {
    RType::base(BaseType::Data("Heap".into(), vec![elem]))
}

/// The `UList a` type (lists with pairwise distinct elements).
pub fn ulist_type(elem: RType) -> RType {
    RType::base(BaseType::Data("UList".into(), vec![elem]))
}

/// The `SList a` type (strictly increasing lists).
pub fn slist_type(elem: RType) -> RType {
    RType::base(BaseType::Data("SList".into(), vec![elem]))
}

/// Environment with the binary-tree datatype, boolean connectives, and
/// generic comparisons (the `Tree` group of Table 1).
pub fn tree_environment() -> Environment {
    let mut env = base_environment();
    env.add_datatype(tree_datatype());
    add_bool_components(&mut env);
    add_comparison_components(&mut env, Sort::var("a"));
    env
}

/// Environment for the `Binary Heap` group: the heap datatype, booleans,
/// and generic comparisons.
pub fn heap_environment() -> Environment {
    let mut env = base_environment();
    env.add_datatype(heap_datatype());
    add_bool_components(&mut env);
    add_comparison_components(&mut env, Sort::var("a"));
    env
}

/// Environment for the `Unique list` group: unique lists together with
/// ordinary lists (remove-duplicates converts between the two), booleans,
/// and generic equality.
pub fn unique_list_environment() -> Environment {
    let mut env = base_environment();
    env.add_datatype(list_datatype());
    env.add_datatype(unique_list_datatype());
    add_bool_components(&mut env);
    add_comparison_components(&mut env, Sort::var("a"));
    env
}

/// Environment for the `Strictly sorted list` group.
pub fn strict_list_environment() -> Environment {
    let mut env = base_environment();
    env.add_datatype(strict_list_datatype());
    add_bool_components(&mut env);
    add_comparison_components(&mut env, Sort::var("a"));
    env
}

/// Environment for the `AVL` group (also used for documentation examples).
pub fn avl_environment() -> Environment {
    let mut env = base_environment();
    env.add_datatype(avl_datatype());
    add_int_components(&mut env);
    add_comparison_components(&mut env, Sort::var("a"));
    env
}

/// Environment for the `RBT` group.
pub fn rbt_environment() -> Environment {
    let mut env = base_environment();
    env.add_datatype(rbt_datatype());
    add_comparison_components(&mut env, Sort::var("a"));
    env
}

/// Environment for the address-book benchmarks of the `User` group.
pub fn book_environment() -> Environment {
    let mut env = base_environment();
    env.add_datatype(address_book_datatype());
    add_bool_components(&mut env);
    env
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_environment_has_constructors_and_arithmetic() {
        let env = list_environment();
        assert!(env.lookup("Nil").is_some());
        assert!(env.lookup("Cons").is_some());
        assert!(env.lookup("dec").is_some());
        assert!(env.lookup("zero").is_some());
        assert!(!env.qualifiers().is_empty());
    }

    #[test]
    fn comparison_components_over_type_variables_get_a_suffix() {
        let mut env = base_environment();
        add_comparison_components(&mut env, Sort::var("a"));
        assert!(env.lookup("leqg").is_some());
        assert!(env.lookup("ltg").is_some());
    }

    #[test]
    fn bool_components_are_boolean_valued() {
        let mut env = Environment::new();
        add_bool_components(&mut env);
        let t = env.lookup("true").unwrap();
        assert!(t.ty.is_scalar());
        let not = env.lookup("not").unwrap();
        assert!(not.ty.is_function());
    }

    #[test]
    fn int_constants_are_singletons() {
        let mut env = Environment::new();
        add_int_constants(&mut env, 3);
        assert!(env.lookup("c0").is_some());
        assert!(env.lookup("c3").is_some());
        assert!(env.lookup("c4").is_none());
    }

    #[test]
    fn bst_environment_registers_measures() {
        let env = bst_environment();
        assert!(env.measure("keys").is_some());
        assert!(env.measure("size").is_some());
        assert!(env.lookup("Node").is_some());
    }

    #[test]
    fn tree_and_heap_environments_register_their_datatypes() {
        let tree = tree_environment();
        assert!(tree.datatype("Tree").is_some());
        assert!(tree.lookup("TNode").is_some());
        assert!(tree.measure("tsize").is_some());
        let heap = heap_environment();
        assert!(heap.datatype("Heap").is_some());
        assert!(heap.lookup("HNode").is_some());
        assert!(heap.measure("helems").is_some());
    }

    #[test]
    fn unique_and_strict_list_environments_have_both_list_flavours() {
        let unique = unique_list_environment();
        assert!(unique.datatype("UList").is_some());
        assert!(
            unique.datatype("List").is_some(),
            "needed by remove-duplicates"
        );
        let strict = strict_list_environment();
        assert!(strict.datatype("SList").is_some());
        assert!(strict.lookup("SCons").is_some());
    }

    #[test]
    fn arith_components_are_binary_integer_functions() {
        let mut env = Environment::new();
        add_arith_components(&mut env);
        let plus = env.lookup("plus").unwrap();
        assert!(plus.ty.is_function());
        assert_eq!(plus.ty.uncurry().0.len(), 2);
        assert!(env.lookup("one").is_some());
    }

    #[test]
    fn avl_rbt_and_book_environments_build() {
        assert!(avl_environment().datatype("AVL").is_some());
        assert!(rbt_environment().datatype("RBT").is_some());
        assert!(book_environment().datatype("Book").is_some());
    }
}
