//! # synquid-lang
//!
//! The user-facing layer of the Synquid reproduction: reusable component
//! libraries (integers, booleans, lists, sorted lists, binary search
//! trees), the benchmark suite of the paper's evaluation (Table 1,
//! Table 2, and the Fig. 7 SyGuS family), and helpers for running goals
//! and collecting results.
//!
//! ## Example
//!
//! ```
//! use synquid_lang::benchmarks::max_n;
//! use synquid_lang::runner::{run_goal, Variant};
//! use std::time::Duration;
//!
//! let goal = max_n(2);
//! let result = run_goal(&goal, Variant::Default.config(Duration::from_secs(30), (1, 0)));
//! assert!(result.solved);
//! ```

pub mod benchmarks;
pub mod components;
pub mod datatypes;
pub mod goals;
pub mod runner;
pub mod spec;

pub use benchmarks::{array_search_n, max_n, sygus, table1, table2, transcribed, Benchmark};
pub use runner::{run_goal, RunResult, Variant};
pub use synquid_core::SynthesisStats;
