//! Helpers for running synthesis goals and collecting results, shared by
//! the examples, the integration tests, and the benchmark harness.

use std::time::{Duration, Instant};
use synquid_core::{
    Goal, SolverContext, SynthesisConfig, SynthesisError, SynthesisStats, Synthesizer,
};
use synquid_telemetry::{events, events::Event};

/// Which configuration of the synthesizer to run (the ablations of
/// Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// All features enabled (the T-all / T-def columns).
    Default,
    /// Round-trip checking disabled (T-nrt).
    NoRoundTrip,
    /// Consistency checks disabled (T-ncc).
    NoConsistency,
    /// Naive BFS strengthening instead of MUSFIX (T-nmus).
    NoMusfix,
}

impl Variant {
    /// All variants, in the column order of Table 1.
    pub fn all() -> [Variant; 4] {
        [
            Variant::Default,
            Variant::NoRoundTrip,
            Variant::NoConsistency,
            Variant::NoMusfix,
        ]
    }

    /// The Table 1 column header for this variant.
    pub fn column(&self) -> &'static str {
        match self {
            Variant::Default => "T-all",
            Variant::NoRoundTrip => "T-nrt",
            Variant::NoConsistency => "T-ncc",
            Variant::NoMusfix => "T-nmus",
        }
    }

    /// Builds a synthesizer configuration for this variant.
    pub fn config(&self, timeout: Duration, bounds: (usize, usize)) -> SynthesisConfig {
        let base = SynthesisConfig::with_timeout(timeout).with_bounds(bounds.0, bounds.1);
        match self {
            Variant::Default => base,
            Variant::NoRoundTrip => base.without_round_trip(),
            Variant::NoConsistency => base.without_consistency(),
            Variant::NoMusfix => base.without_musfix(),
        }
    }
}

/// The canonical `goal @ source` reference used everywhere a goal is
/// named next to its provenance — batch listings, timeout reports, and
/// the generated corpus table all agree on this one format (it matches
/// the parser diagnostics' source-located style).
pub fn goal_label(name: &str, source: &str) -> String {
    format!("{name} @ {source}")
}

/// The outcome of running one synthesis goal.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Goal name.
    pub name: String,
    /// Whether a program was synthesized.
    pub solved: bool,
    /// Whether the run hit the timeout.
    pub timed_out: bool,
    /// Wall-clock time in seconds.
    pub time_secs: f64,
    /// The synthesized program, pretty-printed.
    pub program: Option<String>,
    /// The synthesized program as an AST, for consumers that need to
    /// execute the result (the runtime oracle) rather than display it.
    pub ast: Option<synquid_core::Program>,
    /// Size of the synthesized program in AST nodes.
    pub code_size: Option<usize>,
    /// Statistics of the run (present for both solved and failed runs).
    pub stats: Option<SynthesisStats>,
}

impl RunResult {
    /// Formats the time like Table 1 ("-" for timeouts/failures).
    pub fn time_cell(&self) -> String {
        if self.solved {
            format!("{:.2}", self.time_secs)
        } else {
            "-".to_string()
        }
    }
}

/// Runs a synthesis goal under the given configuration with a standalone
/// (uncached, non-cancellable) solver backend.
pub fn run_goal(goal: &Goal, config: SynthesisConfig) -> RunResult {
    run_goal_in_context(goal, config, &SolverContext::new())
}

/// Runs a synthesis goal inside a shared solver context: the run feeds
/// (and is fed by) the context's validity cache, and stops early when the
/// context's cancellation token fires. This is the entry point the
/// parallel engine drives.
pub fn run_goal_in_context(goal: &Goal, config: SynthesisConfig, ctx: &SolverContext) -> RunResult {
    events::emit(|| {
        Event::new("goal_start")
            .str("goal", &goal.name)
            .uint("app_depth", config.max_app_depth as u64)
            .uint("match_depth", config.max_match_depth as u64)
    });
    let start = Instant::now();
    let mut synthesizer = Synthesizer::with_context(config, ctx);
    let outcome = synthesizer.synthesize(goal);
    let time_secs = start.elapsed().as_secs_f64();
    let stats = Some(synthesizer.stats());
    events::emit(|| {
        let status = match &outcome {
            Ok(_) => "solved",
            Err(SynthesisError::Timeout(_)) => "timeout",
            Err(_) => "failed",
        };
        Event::new("goal_finish")
            .str("goal", &goal.name)
            .str("status", status)
            .f64("time_secs", time_secs)
    });
    match outcome {
        Ok(result) => RunResult {
            name: goal.name.clone(),
            solved: true,
            timed_out: false,
            time_secs,
            code_size: Some(result.program.size()),
            program: Some(result.program.to_string()),
            ast: Some(result.program),
            stats,
        },
        Err(err) => RunResult {
            name: goal.name.clone(),
            solved: false,
            timed_out: matches!(err, SynthesisError::Timeout(_)),
            time_secs,
            program: None,
            ast: None,
            code_size: None,
            stats,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_labels_use_the_source_located_style() {
        assert_eq!(
            goal_label("append", "specs/append.sq"),
            "append @ specs/append.sq"
        );
    }

    #[test]
    fn variants_map_to_table1_columns() {
        assert_eq!(Variant::Default.column(), "T-all");
        assert_eq!(Variant::NoMusfix.column(), "T-nmus");
        assert_eq!(Variant::all().len(), 4);
    }

    #[test]
    fn variant_configs_flip_the_right_flags() {
        let t = Duration::from_secs(5);
        assert!(!Variant::NoRoundTrip.config(t, (2, 1)).round_trip);
        assert!(!Variant::NoConsistency.config(t, (2, 1)).consistency);
        assert!(!Variant::NoMusfix.config(t, (2, 1)).use_musfix);
        let d = Variant::Default.config(t, (2, 1));
        assert!(d.round_trip && d.consistency && d.use_musfix);
        assert_eq!(d.max_app_depth, 2);
    }

    #[test]
    fn run_goal_reports_success_for_a_trivial_goal() {
        use synquid_types::{Environment, RType, Schema};
        let goal = Goal::new(
            "trivial",
            Environment::new(),
            Schema::monotype(RType::fun("x", RType::int(), RType::int())),
        );
        let result = run_goal(
            &goal,
            SynthesisConfig::with_timeout(Duration::from_secs(10)),
        );
        assert!(result.solved);
        // The goal type is unrefined, so any well-typed integer body is a
        // valid solution; the enumerator currently prefers the literal 0.
        let program = result.program.as_deref().unwrap();
        assert!(
            program == "\\x . x" || program == "\\x . 0" || program == "\\x . zero",
            "unexpected program {program}"
        );
        assert!(result.code_size.unwrap() >= 2);
    }
}
