//! The benchmark suite of the paper's evaluation (Sec. 4).
//!
//! [`table1`] lists all 64 synthesis problems of Table 1 with their group,
//! the component set description, and the synthesis time reported in the
//! paper (`T-all`, seconds). For the subset of benchmarks whose
//! specifications have been transcribed into this reproduction, the entry
//! carries a [`Goal`] builder; the remaining entries are kept so that the
//! reproduction honestly reports coverage instead of silently shrinking
//! the table.
//!
//! [`table2`] lists the cross-tool comparison of Table 2 (competitor
//! numbers are quoted from the paper, the Synquid column is measured by
//! the harness), and [`sygus`] generates the `max_n` / `array_search_n`
//! family of Fig. 7.

use crate::components::{
    add_bool_components, add_comparison_components, add_int_constants, base_environment,
    bst_environment, bst_type, elems_of, ilist_type, len_of, list_environment, list_type,
    sorting_environment,
};
use crate::goals::{
    goal_heap_insert, goal_heap_member, goal_heap_singleton, goal_heap_two, goal_insert_at_end,
    goal_list_delete, goal_list_member, goal_make_address_book, goal_map, goal_merge,
    goal_merge_address_books, goal_remove_duplicates, goal_reverse, goal_sorted_head,
    goal_strict_delete, goal_strict_insert, goal_take, goal_tree_count, goal_tree_member,
    goal_tree_preorder, goal_unique_delete, goal_unique_insert,
};
use synquid_core::Goal;
use synquid_logic::{Sort, Term};
use synquid_types::{BaseType, RType, Schema};

/// One row of Table 1.
#[derive(Clone)]
pub struct Benchmark {
    /// Benchmark name as it appears in the paper.
    pub name: &'static str,
    /// Benchmark group (List, Unique list, Sorting, …).
    pub group: &'static str,
    /// Synthesis time reported by the paper (T-all column, seconds).
    pub paper_time: f64,
    /// Size of the synthesized code reported by the paper (AST nodes).
    pub paper_code_size: usize,
    /// Exploration bounds `(application depth, match depth)`.
    pub bounds: (usize, usize),
    /// Goal builder, for benchmarks transcribed into this reproduction.
    pub goal: Option<fn() -> Goal>,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("group", &self.group)
            .field("transcribed", &self.goal.is_some())
            .finish()
    }
}

fn nu_int() -> Term {
    Term::value_var(Sort::Int)
}
fn ivar(n: &str) -> Term {
    Term::var(n, Sort::Int)
}
fn list_sort(elem: Sort) -> Sort {
    Sort::Data("List".into(), vec![elem])
}
fn avar(n: &str) -> Term {
    Term::var(n, Sort::var("a"))
}

// ---------------------------------------------------------------------
// Transcribed goals
// ---------------------------------------------------------------------

fn goal_replicate() -> Goal {
    // replicate :: n: Nat → x: α → {List α | len ν = n}
    // Components (Table 1): 0, inc, dec, ≤, ≠.
    let mut env = list_environment();
    add_comparison_components(&mut env, Sort::Int);
    let ret = RType::refined(
        BaseType::Data("List".into(), vec![RType::tyvar("a")]),
        len_of(Term::value_var(list_sort(Sort::var("a")))).eq(ivar("n")),
    );
    let ty = RType::fun_n(
        vec![("n".into(), RType::nat()), ("x".into(), RType::tyvar("a"))],
        ret,
    );
    Goal::new("replicate", env, Schema::forall(vec!["a".into()], ty))
}

fn goal_is_empty() -> Goal {
    // is_empty :: xs: List α → {Bool | ν ⇔ len xs = 0}
    let mut env = list_environment();
    add_bool_components(&mut env);
    let ret = RType::refined(
        BaseType::Bool,
        Term::value_var(Sort::Bool)
            .iff(len_of(Term::var("xs", list_sort(Sort::var("a")))).eq(Term::int(0))),
    );
    let ty = RType::fun("xs", list_type(RType::tyvar("a")), ret);
    Goal::new("is_empty", env, Schema::forall(vec!["a".into()], ty))
}

fn goal_append() -> Goal {
    // append :: xs: List α → ys: List α →
    //   {List α | len ν = len xs + len ys ∧ elems ν = elems xs + elems ys}
    let env = list_environment();
    let ls = list_sort(Sort::var("a"));
    let es = Sort::var("a");
    let nu = Term::value_var(ls.clone());
    let xs = Term::var("xs", ls.clone());
    let ys = Term::var("ys", ls.clone());
    let ret = RType::refined(
        BaseType::Data("List".into(), vec![RType::tyvar("a")]),
        len_of(nu.clone())
            .eq(len_of(xs.clone()).plus(len_of(ys.clone())))
            .and(elems_of(nu, es.clone()).eq(elems_of(xs, es.clone()).union(elems_of(ys, es)))),
    );
    let ty = RType::fun_n(
        vec![
            ("xs".into(), list_type(RType::tyvar("a"))),
            ("ys".into(), list_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("append", env, Schema::forall(vec!["a".into()], ty))
}

fn goal_duplicate_each() -> Goal {
    // double :: xs: List α → {List α | len ν = len xs + len xs}
    let env = list_environment();
    let ls = list_sort(Sort::var("a"));
    let ret = RType::refined(
        BaseType::Data("List".into(), vec![RType::tyvar("a")]),
        len_of(Term::value_var(ls.clone()))
            .eq(len_of(Term::var("xs", ls.clone())).plus(len_of(Term::var("xs", ls)))),
    );
    let ty = RType::fun("xs", list_type(RType::tyvar("a")), ret);
    Goal::new("double", env, Schema::forall(vec!["a".into()], ty))
}

fn goal_drop() -> Goal {
    // drop :: n: Nat → xs: {List α | len ν ≥ n} → {List α | len ν = len xs - n}
    // Components (Table 1): 0, inc, dec, ≤, ≠.
    let mut env = list_environment();
    add_comparison_components(&mut env, Sort::Int);
    let ls = list_sort(Sort::var("a"));
    let arg = RType::refined(
        BaseType::Data("List".into(), vec![RType::tyvar("a")]),
        len_of(Term::value_var(ls.clone())).ge(ivar("n")),
    );
    let ret = RType::refined(
        BaseType::Data("List".into(), vec![RType::tyvar("a")]),
        len_of(Term::value_var(ls.clone())).eq(len_of(Term::var("xs", ls)).minus(ivar("n"))),
    );
    let ty = RType::fun_n(vec![("n".into(), RType::nat()), ("xs".into(), arg)], ret);
    Goal::new("drop", env, Schema::forall(vec!["a".into()], ty))
}

fn goal_length() -> Goal {
    // length :: xs: List α → {Int | ν = len xs}
    let env = list_environment();
    let ls = list_sort(Sort::var("a"));
    let ret = RType::refined(BaseType::Int, nu_int().eq(len_of(Term::var("xs", ls))));
    let ty = RType::fun("xs", list_type(RType::tyvar("a")), ret);
    Goal::new("length", env, Schema::forall(vec!["a".into()], ty))
}

fn goal_stutter_head() -> Goal {
    // head-or-default (delete value stand-in within the List group is not
    // transcribed); this benchmark corresponds to "i-th element" simplified
    // to the first element with a default:
    // elem_or :: d: α → xs: List α → {α | len xs = 0 ⇒ ν = d}
    // Components (Table 1): 0, inc, dec, ≤, ≠.
    let mut env = list_environment();
    add_comparison_components(&mut env, Sort::Int);
    let ls = list_sort(Sort::var("a"));
    let ret = RType::refined(
        BaseType::TypeVar("a".into()),
        len_of(Term::var("xs", ls))
            .eq(Term::int(0))
            .implies(Term::value_var(Sort::var("a")).eq(avar("d"))),
    );
    let ty = RType::fun_n(
        vec![
            ("d".into(), RType::tyvar("a")),
            ("xs".into(), list_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("elem_or_default", env, Schema::forall(vec!["a".into()], ty))
}

fn goal_insert_sorted() -> Goal {
    // insert (sorted) :: x: α → xs: IList α →
    //   {IList α | ielems ν = ielems xs + [x]}
    let env = sorting_environment();
    let is = Sort::Data("IList".into(), vec![Sort::var("a")]);
    let es = Sort::var("a");
    let ielems = |t: Term| Term::app("ielems", vec![t], Sort::set(es.clone()));
    let ret = RType::refined(
        BaseType::Data("IList".into(), vec![RType::tyvar("a")]),
        ielems(Term::value_var(is.clone()))
            .eq(ielems(Term::var("xs", is.clone())).union(Term::singleton(es.clone(), avar("x")))),
    );
    let ty = RType::fun_n(
        vec![
            ("x".into(), RType::tyvar("a")),
            ("xs".into(), ilist_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("insert_sorted", env, Schema::forall(vec!["a".into()], ty))
}

fn goal_insertion_sort() -> Goal {
    // sort :: xs: List α → {IList α | ielems ν = elems xs}
    // with insert (sorted) provided as a component.
    let mut env = sorting_environment();
    let es = Sort::var("a");
    let is = Sort::Data("IList".into(), vec![es.clone()]);
    let ielems = |t: Term| Term::app("ielems", vec![t], Sort::set(es.clone()));
    // Component: insert :: x: α → xs: IList α → {IList α | ielems ν = ielems xs + [x]}
    let insert_ret = RType::refined(
        BaseType::Data("IList".into(), vec![RType::tyvar("a")]),
        ielems(Term::value_var(is.clone()))
            .eq(ielems(Term::var("xs", is.clone())).union(Term::singleton(es.clone(), avar("x")))),
    );
    env.add_var(
        "insert",
        Schema::forall(
            vec!["a".into()],
            RType::fun_n(
                vec![
                    ("x".into(), RType::tyvar("a")),
                    ("xs".into(), ilist_type(RType::tyvar("a"))),
                ],
                insert_ret,
            ),
        ),
    );
    let ls = list_sort(es.clone());
    let ret = RType::refined(
        BaseType::Data("IList".into(), vec![RType::tyvar("a")]),
        ielems(Term::value_var(is)).eq(elems_of(Term::var("xs", ls), es)),
    );
    let ty = RType::fun("xs", list_type(RType::tyvar("a")), ret);
    Goal::new("insertion_sort", env, Schema::forall(vec!["a".into()], ty))
}

fn goal_bst_member() -> Goal {
    // member :: x: α → t: BST α → {Bool | ν ⇔ x ∈ keys t}
    let env = bst_environment();
    let es = Sort::var("a");
    let bs = Sort::Data("BST".into(), vec![es.clone()]);
    let keys = |t: Term| Term::app("keys", vec![t], Sort::set(es.clone()));
    let ret = RType::refined(
        BaseType::Bool,
        Term::value_var(Sort::Bool).iff(avar("x").member(keys(Term::var("t", bs)))),
    );
    let ty = RType::fun_n(
        vec![
            ("x".into(), RType::tyvar("a")),
            ("t".into(), bst_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("bst_member", env, Schema::forall(vec!["a".into()], ty))
}

fn goal_bst_insert() -> Goal {
    // insert :: x: α → t: BST α → {BST α | keys ν = keys t + [x]}
    let env = bst_environment();
    let es = Sort::var("a");
    let bs = Sort::Data("BST".into(), vec![es.clone()]);
    let keys = |t: Term| Term::app("keys", vec![t], Sort::set(es.clone()));
    let ret = RType::refined(
        BaseType::Data("BST".into(), vec![RType::tyvar("a")]),
        keys(Term::value_var(bs.clone()))
            .eq(keys(Term::var("t", bs)).union(Term::singleton(es.clone(), avar("x")))),
    );
    let ty = RType::fun_n(
        vec![
            ("x".into(), RType::tyvar("a")),
            ("t".into(), bst_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("bst_insert", env, Schema::forall(vec!["a".into()], ty))
}

// ---------------------------------------------------------------------
// SyGuS benchmarks (Fig. 7)
// ---------------------------------------------------------------------

/// `max_n`: the maximum of `n` integer arguments (Fig. 7, left).
pub fn max_n(n: usize) -> Goal {
    let mut env = base_environment();
    add_comparison_components(&mut env, Sort::Int);
    let args: Vec<(String, RType)> = (1..=n).map(|i| (format!("x{i}"), RType::int())).collect();
    let nu = nu_int();
    let at_least = Term::conjunction((1..=n).map(|i| nu.clone().ge(ivar(&format!("x{i}")))));
    let is_one = Term::disjunction((1..=n).map(|i| nu.clone().eq(ivar(&format!("x{i}")))));
    let ret = RType::refined(BaseType::Int, at_least.and(is_one));
    Goal::new(
        format!("max{n}"),
        env,
        Schema::monotype(RType::fun_n(args, ret)),
    )
}

/// `array_search_n`: find the index of a key in a sorted "array" given as
/// `n` strictly increasing arguments (Fig. 7, right). The result is the
/// number of array elements smaller than the key.
pub fn array_search_n(n: usize) -> Goal {
    let mut env = base_environment();
    add_comparison_components(&mut env, Sort::Int);
    add_int_constants(&mut env, n as i64);
    let mut args: Vec<(String, RType)> = vec![("k".into(), RType::int())];
    for i in 1..=n {
        let refinement = if i == 1 {
            Term::tt()
        } else {
            Term::value_var(Sort::Int).gt(ivar(&format!("x{}", i - 1)))
        };
        args.push((format!("x{i}"), RType::refined(BaseType::Int, refinement)));
    }
    // The key is different from every element (as in the SyGuS benchmark).
    let distinct = Term::conjunction((1..=n).map(|i| ivar("k").neq(ivar(&format!("x{i}")))));
    args[0].1 = RType::refined(BaseType::Int, distinct.substitute_value(&nu_int()));
    // Result: ν = number of elements below k, expressed positionally.
    let nu = nu_int();
    let mut clauses = vec![];
    for r in 0..=n {
        // ν = r ⇔ (x_r < k < x_{r+1}) with the conventions x_0 = -∞, x_{n+1} = +∞.
        let mut cond = Term::tt();
        if r >= 1 {
            cond = cond.and(ivar(&format!("x{r}")).lt(ivar("k")));
        }
        if r < n {
            cond = cond.and(ivar("k").lt(ivar(&format!("x{}", r + 1))));
        }
        clauses.push(nu.clone().eq(Term::int(r as i64)).iff(cond));
    }
    let ret = RType::refined(BaseType::Int, Term::conjunction(clauses));
    Goal::new(
        format!("array_search{n}"),
        env,
        Schema::monotype(RType::fun_n(args, ret)),
    )
}

/// The Fig. 7 benchmark family: `(name, n, goal)` for both `max_n` and
/// `array_search_n`, n = 2..=max_n.
pub fn sygus(max_n_param: usize) -> Vec<(String, usize, Goal)> {
    let mut out = Vec::new();
    for n in 2..=max_n_param {
        out.push((format!("max{n}"), n, max_n(n)));
    }
    for n in 2..=max_n_param {
        out.push((format!("array_search{n}"), n, array_search_n(n)));
    }
    out
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// All 64 rows of Table 1. `goal` is `Some` for the transcribed subset.
pub fn table1() -> Vec<Benchmark> {
    fn row(
        group: &'static str,
        name: &'static str,
        paper_time: f64,
        paper_code_size: usize,
        bounds: (usize, usize),
        goal: Option<fn() -> Goal>,
    ) -> Benchmark {
        Benchmark {
            name,
            group,
            paper_time,
            paper_code_size,
            bounds,
            goal,
        }
    }
    vec![
        row("List", "is empty", 0.02, 6, (1, 1), Some(goal_is_empty)),
        row(
            "List",
            "is member",
            0.11,
            18,
            (2, 1),
            Some(goal_list_member),
        ),
        row(
            "List",
            "duplicate each element",
            0.05,
            16,
            (3, 1),
            Some(goal_duplicate_each),
        ),
        row("List", "replicate", 0.05, 21, (3, 0), Some(goal_replicate)),
        row(
            "List",
            "append two lists",
            0.15,
            15,
            (3, 1),
            Some(goal_append),
        ),
        row("List", "concatenate list of lists", 0.05, 12, (3, 1), None),
        row(
            "List",
            "take first n elements",
            0.12,
            27,
            (2, 1),
            Some(goal_take),
        ),
        row(
            "List",
            "drop first n elements",
            0.10,
            20,
            (2, 1),
            Some(goal_drop),
        ),
        row(
            "List",
            "delete value",
            0.10,
            26,
            (3, 1),
            Some(goal_list_delete),
        ),
        row("List", "map", 0.03, 22, (3, 1), Some(goal_map)),
        row("List", "zip", 0.08, 22, (3, 2), None),
        row("List", "zip with function", 0.07, 33, (3, 2), None),
        row("List", "cartesian product", 0.30, 26, (3, 1), None),
        row(
            "List",
            "i-th element",
            0.05,
            20,
            (2, 1),
            Some(goal_stutter_head),
        ),
        row("List", "index of element", 0.08, 20, (3, 1), None),
        row(
            "List",
            "insert at end",
            0.10,
            19,
            (3, 1),
            Some(goal_insert_at_end),
        ),
        row("List", "reverse", 0.09, 12, (3, 1), Some(goal_reverse)),
        row("List", "foldr", 0.10, 32, (3, 1), None),
        row(
            "List",
            "length using fold",
            0.03,
            17,
            (2, 1),
            Some(goal_length),
        ),
        row("List", "append using fold", 0.04, 20, (3, 0), None),
        row(
            "Unique list",
            "insert",
            0.27,
            26,
            (2, 1),
            Some(goal_unique_insert),
        ),
        row(
            "Unique list",
            "delete",
            0.18,
            22,
            (2, 1),
            Some(goal_unique_delete),
        ),
        row(
            "Unique list",
            "remove duplicates",
            0.36,
            47,
            (2, 1),
            Some(goal_remove_duplicates),
        ),
        row(
            "Unique list",
            "remove adjacent dupl.",
            1.33,
            32,
            (3, 2),
            None,
        ),
        row("Unique list", "integer range", 2.36, 23, (3, 0), None),
        row(
            "Strictly sorted list",
            "insert",
            0.18,
            41,
            (2, 1),
            Some(goal_strict_insert),
        ),
        row(
            "Strictly sorted list",
            "delete",
            0.10,
            29,
            (2, 1),
            Some(goal_strict_delete),
        ),
        row("Strictly sorted list", "intersect", 0.33, 40, (3, 2), None),
        row(
            "Sorting",
            "insert (sorted)",
            0.25,
            34,
            (3, 1),
            Some(goal_insert_sorted),
        ),
        row(
            "Sorting",
            "insertion sort",
            0.06,
            12,
            (2, 1),
            Some(goal_insertion_sort),
        ),
        row("Sorting", "sort by folding", 2.14, 47, (3, 1), None),
        row(
            "Sorting",
            "extract minimum",
            4.28,
            40,
            (2, 1),
            Some(goal_sorted_head),
        ),
        row("Sorting", "selection sort", 0.49, 16, (3, 1), None),
        row("Sorting", "balanced split", 0.96, 33, (3, 2), None),
        row("Sorting", "merge", 2.19, 41, (2, 1), Some(goal_merge)),
        row("Sorting", "merge sort", 2.10, 25, (3, 2), None),
        row("Sorting", "partition", 2.84, 40, (3, 2), None),
        row("Sorting", "append with pivot", 0.22, 22, (3, 1), None),
        row("Sorting", "quick sort", 2.71, 22, (3, 2), None),
        row(
            "Tree",
            "is member",
            0.29,
            28,
            (2, 1),
            Some(goal_tree_member),
        ),
        row(
            "Tree",
            "node count",
            0.20,
            18,
            (2, 1),
            Some(goal_tree_count),
        ),
        row(
            "Tree",
            "preorder",
            0.21,
            18,
            (2, 1),
            Some(goal_tree_preorder),
        ),
        row("Tree", "create balanced", 0.14, 29, (3, 1), None),
        row("BST", "is member", 0.09, 37, (2, 1), Some(goal_bst_member)),
        row("BST", "insert", 0.91, 55, (3, 1), Some(goal_bst_insert)),
        row("BST", "delete", 5.68, 68, (3, 2), None),
        row("BST", "BST sort", 1.38, 115, (3, 2), None),
        row(
            "Binary Heap",
            "is member",
            0.38,
            43,
            (2, 1),
            Some(goal_heap_member),
        ),
        row(
            "Binary Heap",
            "insert",
            0.51,
            55,
            (2, 1),
            Some(goal_heap_insert),
        ),
        row(
            "Binary Heap",
            "1-element constructor",
            0.02,
            8,
            (1, 0),
            Some(goal_heap_singleton),
        ),
        row(
            "Binary Heap",
            "2-element constructor",
            0.08,
            55,
            (2, 0),
            Some(goal_heap_two),
        ),
        row(
            "Binary Heap",
            "3-element constructor",
            2.10,
            246,
            (3, 0),
            None,
        ),
        row("AVL", "rotate left", 11.08, 91, (3, 1), None),
        row("AVL", "rotate right", 19.23, 91, (3, 1), None),
        row("AVL", "balance", 1.56, 119, (3, 1), None),
        row("AVL", "insert", 1.84, 47, (3, 1), None),
        row("AVL", "extract minimum", 1.92, 25, (3, 2), None),
        row("AVL", "delete", 15.67, 63, (3, 2), None),
        row("RBT", "balance left", 5.62, 137, (3, 1), None),
        row("RBT", "balance right", 7.63, 137, (3, 1), None),
        row("RBT", "insert", 8.95, 112, (3, 1), None),
        row("User", "desugar AST", 1.17, 46, (3, 1), None),
        row(
            "User",
            "make address book",
            0.62,
            35,
            (2, 1),
            Some(goal_make_address_book),
        ),
        row(
            "User",
            "merge address books",
            0.35,
            19,
            (2, 1),
            Some(goal_merge_address_books),
        ),
    ]
}

/// The benchmarks of Table 1 whose specifications have been transcribed.
pub fn transcribed() -> Vec<Benchmark> {
    table1().into_iter().filter(|b| b.goal.is_some()).collect()
}

/// One row of Table 2 (comparison with other synthesizers). Competitor
/// numbers are quoted from the respective papers, exactly as Table 2 does.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Competing tool.
    pub tool: &'static str,
    /// Benchmark name as reported by that tool.
    pub benchmark: &'static str,
    /// Specification size (or number of examples) for the competitor.
    pub competitor_spec: Option<usize>,
    /// Running time reported for the competitor (seconds).
    pub competitor_time: f64,
    /// Spec size reported for Synquid in the paper.
    pub synquid_spec: usize,
    /// Synquid time reported in the paper (seconds).
    pub synquid_time: f64,
    /// The corresponding benchmark in [`table1`] (by name), if transcribed.
    pub table1_name: Option<&'static str>,
}

/// All 18 rows of Table 2.
pub fn table2() -> Vec<ComparisonRow> {
    fn row(
        tool: &'static str,
        benchmark: &'static str,
        competitor_spec: Option<usize>,
        competitor_time: f64,
        synquid_spec: usize,
        synquid_time: f64,
        table1_name: Option<&'static str>,
    ) -> ComparisonRow {
        ComparisonRow {
            tool,
            benchmark,
            competitor_spec,
            competitor_time,
            synquid_spec,
            synquid_time,
            table1_name,
        }
    }
    vec![
        row(
            "Leon",
            "strict sorted list delete",
            Some(14),
            15.1,
            8,
            0.10,
            None,
        ),
        row(
            "Leon",
            "strict sorted list insert",
            Some(14),
            14.1,
            8,
            0.18,
            None,
        ),
        row("Leon", "merge sort", Some(9), 14.3, 11, 2.1, None),
        row(
            "Jennisys",
            "BST find",
            Some(51),
            64.8,
            6,
            0.09,
            Some("is member"),
        ),
        row(
            "Jennisys",
            "bin. heap 1-element",
            Some(80),
            61.6,
            5,
            0.02,
            None,
        ),
        row("Jennisys", "bin. heap find", Some(76), 51.9, 6, 0.38, None),
        row(
            "Myth",
            "sorted list insert",
            Some(12),
            0.12,
            8,
            0.25,
            Some("insert (sorted)"),
        ),
        row(
            "Myth",
            "list rm adjacent dupl.",
            Some(13),
            0.07,
            5,
            1.33,
            None,
        ),
        row(
            "Myth",
            "BST insert",
            Some(20),
            0.37,
            8,
            0.91,
            Some("insert"),
        ),
        row(
            "Lambda2",
            "list remove duplicates",
            Some(7),
            231.0,
            13,
            0.36,
            None,
        ),
        row(
            "Lambda2",
            "list drop",
            Some(6),
            316.4,
            11,
            0.1,
            Some("drop first n elements"),
        ),
        row("Lambda2", "tree find", Some(12), 4.7, 6, 0.29, None),
        row("Escher", "list rm adjacent dupl.", None, 1.0, 5, 1.33, None),
        row("Escher", "tree create balanced", None, 0.24, 7, 0.14, None),
        row(
            "Escher",
            "list duplicate each",
            None,
            0.16,
            7,
            0.05,
            Some("duplicate each element"),
        ),
        row("Myth2", "BST insert", None, 1.81, 8, 0.91, Some("insert")),
        row(
            "Myth2",
            "sorted list insert",
            None,
            1.02,
            8,
            0.25,
            Some("insert (sorted)"),
        ),
        row("Myth2", "tree count nodes", None, 0.45, 4, 0.20, None),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_64_rows() {
        let rows = table1();
        assert_eq!(rows.len(), 64);
        let groups: std::collections::BTreeSet<_> = rows.iter().map(|r| r.group).collect();
        assert!(groups.contains("List"));
        assert!(groups.contains("Sorting"));
        assert!(groups.contains("RBT"));
    }

    #[test]
    fn a_meaningful_subset_is_transcribed() {
        let t = transcribed();
        assert!(
            t.len() >= 10,
            "expected at least 10 transcribed goals, got {}",
            t.len()
        );
        for b in &t {
            let goal = (b.goal.unwrap())();
            assert!(!goal.name.is_empty());
        }
    }

    #[test]
    fn table2_has_all_18_rows() {
        assert_eq!(table2().len(), 18);
        assert_eq!(table2().iter().filter(|r| r.tool == "Leon").count(), 3);
    }

    #[test]
    fn sygus_family_generates_both_benchmarks() {
        let family = sygus(4);
        assert_eq!(family.len(), 6);
        assert!(family.iter().any(|(n, _, _)| n == "max2"));
        assert!(family.iter().any(|(n, _, _)| n == "array_search4"));
    }

    #[test]
    fn max_n_goal_has_n_arguments() {
        let goal = max_n(3);
        let (args, _) = goal.schema.ty.uncurry();
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn array_search_arguments_are_sorted_by_refinement() {
        let goal = array_search_n(3);
        let (args, _) = goal.schema.ty.uncurry();
        assert_eq!(args.len(), 4); // k plus 3 elements
        assert!(args[2].1.refinement().to_string().contains('>'));
    }
}
