//! Additional datatype declarations used by the benchmark suite.
//!
//! The core `synquid-types` crate ships the three datatypes that the paper
//! uses in its running examples (`List`, `IList`, `BST`); the remaining
//! benchmark groups of Table 1 need a few more:
//!
//! * [`tree_datatype`] — unlabelled binary trees (`Tree` group);
//! * [`heap_datatype`] — binary min-heaps (`Binary Heap` group);
//! * [`unique_list_datatype`] — lists with pairwise-distinct elements
//!   (`Unique list` group);
//! * [`strict_list_datatype`] — strictly increasing lists
//!   (`Strictly sorted list` group);
//! * [`avl_datatype`] and [`rbt_datatype`] — height-balanced and
//!   red-black trees (`AVL` / `RBT` groups).
//!
//! Each declaration mirrors the refined constructor signatures the paper's
//! benchmark files use: structural measures (`size`, `elems`) plus the
//! representation invariant encoded in the constructor argument types
//! (ordering for heaps and search trees, distinctness for unique lists,
//! height balance for AVL trees).

use synquid_logic::{Sort, Term};
use synquid_types::{BaseType, Constructor, Datatype, Measure, RType, Schema};

fn set_measure(name: &str, datatype: &str, elem: Sort) -> Measure {
    Measure {
        name: name.into(),
        datatype: datatype.into(),
        result: Sort::set(elem),
        non_negative: false,
    }
}

fn nat_measure(name: &str, datatype: &str) -> Measure {
    Measure {
        name: name.into(),
        datatype: datatype.into(),
        result: Sort::Int,
        non_negative: true,
    }
}

/// Binary trees with element-set and size measures:
///
/// ```text
/// termination measure tsize :: Tree α → Nat
/// measure telems :: Tree α → Set α
/// data Tree α where
///   Leaf  :: {Tree α | tsize ν = 0 ∧ telems ν = []}
///   TNode :: x: α → l: Tree α → r: Tree α →
///            {Tree α | tsize ν = tsize l + tsize r + 1
///                    ∧ telems ν = telems l + telems r + [x]}
/// ```
pub fn tree_datatype() -> Datatype {
    let a = "a".to_string();
    let elem = Sort::var(a.clone());
    let base = BaseType::Data("Tree".into(), vec![RType::tyvar(a.clone())]);
    let sort = base.sort();
    let tsize = |t: Term| Term::app("tsize", vec![t], Sort::Int);
    let telems = |t: Term| Term::app("telems", vec![t], Sort::set(elem.clone()));
    let nu = || Term::value_var(sort.clone());

    let leaf = Constructor {
        name: "Leaf".into(),
        schema: Schema::forall(
            vec![a.clone()],
            RType::refined(
                base.clone(),
                tsize(nu())
                    .eq(Term::int(0))
                    .and(telems(nu()).eq(Term::empty_set(elem.clone()))),
            ),
        ),
    };

    let x = Term::var("x", elem.clone());
    let l = Term::var("l", sort.clone());
    let r = Term::var("r", sort.clone());
    let node_refinement = tsize(nu())
        .eq(tsize(l.clone()).plus(tsize(r.clone())).plus(Term::int(1)))
        .and(
            telems(nu()).eq(telems(l)
                .union(telems(r))
                .union(Term::singleton(elem.clone(), x))),
        );
    let node = Constructor {
        name: "TNode".into(),
        schema: Schema::forall(
            vec![a.clone()],
            RType::fun_n(
                vec![
                    ("x".to_string(), RType::tyvar(a.clone())),
                    ("l".to_string(), RType::base(base.clone())),
                    ("r".to_string(), RType::base(base.clone())),
                ],
                RType::refined(base.clone(), node_refinement),
            ),
        ),
    };

    Datatype {
        name: "Tree".into(),
        type_params: vec![a],
        constructors: vec![leaf, node],
        measures: vec![
            nat_measure("tsize", "Tree"),
            set_measure("telems", "Tree", elem),
        ],
        termination_measure: Some("tsize".into()),
    }
}

/// Binary min-heaps: every element of either subtree is at least the root.
///
/// ```text
/// termination measure hsize :: Heap α → Nat
/// measure helems :: Heap α → Set α
/// data Heap α where
///   HEmpty :: {Heap α | hsize ν = 0 ∧ helems ν = []}
///   HNode  :: x: α → l: Heap {α | x ≤ ν} → r: Heap {α | x ≤ ν} →
///             {Heap α | hsize ν = hsize l + hsize r + 1
///                     ∧ helems ν = helems l + helems r + [x]}
/// ```
pub fn heap_datatype() -> Datatype {
    let a = "a".to_string();
    let elem = Sort::var(a.clone());
    let base = BaseType::Data("Heap".into(), vec![RType::tyvar(a.clone())]);
    let sort = base.sort();
    let hsize = |t: Term| Term::app("hsize", vec![t], Sort::Int);
    let helems = |t: Term| Term::app("helems", vec![t], Sort::set(elem.clone()));
    let nu = || Term::value_var(sort.clone());

    let empty = Constructor {
        name: "HEmpty".into(),
        schema: Schema::forall(
            vec![a.clone()],
            RType::refined(
                base.clone(),
                hsize(nu())
                    .eq(Term::int(0))
                    .and(helems(nu()).eq(Term::empty_set(elem.clone()))),
            ),
        ),
    };

    let x = Term::var("x", elem.clone());
    // Subtree element type: {α | x ≤ ν}.
    let bounded_elem = RType::refined(
        BaseType::TypeVar(a.clone()),
        x.clone().le(Term::value_var(elem.clone())),
    );
    let bounded_heap = RType::base(BaseType::Data("Heap".into(), vec![bounded_elem]));
    let l = Term::var("l", sort.clone());
    let r = Term::var("r", sort.clone());
    let node_refinement = hsize(nu())
        .eq(hsize(l.clone()).plus(hsize(r.clone())).plus(Term::int(1)))
        .and(
            helems(nu()).eq(helems(l)
                .union(helems(r))
                .union(Term::singleton(elem.clone(), x))),
        );
    let node = Constructor {
        name: "HNode".into(),
        schema: Schema::forall(
            vec![a.clone()],
            RType::fun_n(
                vec![
                    ("x".to_string(), RType::tyvar(a.clone())),
                    ("l".to_string(), bounded_heap.clone()),
                    ("r".to_string(), bounded_heap),
                ],
                RType::refined(base.clone(), node_refinement),
            ),
        ),
    };

    Datatype {
        name: "Heap".into(),
        type_params: vec![a],
        constructors: vec![empty, node],
        measures: vec![
            nat_measure("hsize", "Heap"),
            set_measure("helems", "Heap", elem),
        ],
        termination_measure: Some("hsize".into()),
    }
}

/// Lists with pairwise distinct elements:
///
/// ```text
/// termination measure ulen :: UList α → Nat
/// measure uelems :: UList α → Set α
/// data UList α where
///   UNil  :: {UList α | ulen ν = 0 ∧ uelems ν = []}
///   UCons :: x: α → xs: {UList α | ¬ (x ∈ uelems ν)} →
///            {UList α | ulen ν = ulen xs + 1 ∧ uelems ν = uelems xs + [x]}
/// ```
pub fn unique_list_datatype() -> Datatype {
    let a = "a".to_string();
    let elem = Sort::var(a.clone());
    let base = BaseType::Data("UList".into(), vec![RType::tyvar(a.clone())]);
    let sort = base.sort();
    let ulen = |t: Term| Term::app("ulen", vec![t], Sort::Int);
    let uelems = |t: Term| Term::app("uelems", vec![t], Sort::set(elem.clone()));
    let nu = || Term::value_var(sort.clone());

    let nil = Constructor {
        name: "UNil".into(),
        schema: Schema::forall(
            vec![a.clone()],
            RType::refined(
                base.clone(),
                ulen(nu())
                    .eq(Term::int(0))
                    .and(uelems(nu()).eq(Term::empty_set(elem.clone()))),
            ),
        ),
    };

    let x = Term::var("x", elem.clone());
    let xs = Term::var("xs", sort.clone());
    // The tail must not contain the head: {UList α | ¬ (x ∈ uelems ν)}.
    let tail_ty = RType::refined(base.clone(), x.clone().member(uelems(nu())).not());
    let cons_refinement = ulen(nu())
        .eq(ulen(xs.clone()).plus(Term::int(1)))
        .and(uelems(nu()).eq(uelems(xs).union(Term::singleton(elem.clone(), x))));
    let cons = Constructor {
        name: "UCons".into(),
        schema: Schema::forall(
            vec![a.clone()],
            RType::fun_n(
                vec![
                    ("x".to_string(), RType::tyvar(a.clone())),
                    ("xs".to_string(), tail_ty),
                ],
                RType::refined(base.clone(), cons_refinement),
            ),
        ),
    };

    Datatype {
        name: "UList".into(),
        type_params: vec![a],
        constructors: vec![nil, cons],
        measures: vec![
            nat_measure("ulen", "UList"),
            set_measure("uelems", "UList", elem),
        ],
        termination_measure: Some("ulen".into()),
    }
}

/// Strictly increasing lists (every element is strictly below the rest):
///
/// ```text
/// termination measure slen :: SList α → Nat
/// measure selems :: SList α → Set α
/// data SList α where
///   SNil  :: {SList α | slen ν = 0 ∧ selems ν = []}
///   SCons :: x: α → xs: SList {α | x < ν} →
///            {SList α | slen ν = slen xs + 1 ∧ selems ν = selems xs + [x]}
/// ```
pub fn strict_list_datatype() -> Datatype {
    let a = "a".to_string();
    let elem = Sort::var(a.clone());
    let base = BaseType::Data("SList".into(), vec![RType::tyvar(a.clone())]);
    let sort = base.sort();
    let slen = |t: Term| Term::app("slen", vec![t], Sort::Int);
    let selems = |t: Term| Term::app("selems", vec![t], Sort::set(elem.clone()));
    let nu = || Term::value_var(sort.clone());

    let nil = Constructor {
        name: "SNil".into(),
        schema: Schema::forall(
            vec![a.clone()],
            RType::refined(
                base.clone(),
                slen(nu())
                    .eq(Term::int(0))
                    .and(selems(nu()).eq(Term::empty_set(elem.clone()))),
            ),
        ),
    };

    let x = Term::var("x", elem.clone());
    let xs = Term::var("xs", sort.clone());
    let tail_elem = RType::refined(
        BaseType::TypeVar(a.clone()),
        x.clone().lt(Term::value_var(elem.clone())),
    );
    let cons_refinement = slen(nu())
        .eq(slen(xs.clone()).plus(Term::int(1)))
        .and(selems(nu()).eq(selems(xs).union(Term::singleton(elem.clone(), x))));
    let cons = Constructor {
        name: "SCons".into(),
        schema: Schema::forall(
            vec![a.clone()],
            RType::fun_n(
                vec![
                    ("x".to_string(), RType::tyvar(a.clone())),
                    (
                        "xs".to_string(),
                        RType::base(BaseType::Data("SList".into(), vec![tail_elem])),
                    ),
                ],
                RType::refined(base.clone(), cons_refinement),
            ),
        ),
    };

    Datatype {
        name: "SList".into(),
        type_params: vec![a],
        constructors: vec![nil, cons],
        measures: vec![
            nat_measure("slen", "SList"),
            set_measure("selems", "SList", elem),
        ],
        termination_measure: Some("slen".into()),
    }
}

/// Height-balanced (AVL) trees. The height is tracked by the `height`
/// measure; the `ANode` constructor requires the subtree heights to differ
/// by at most one and records the node height explicitly.
///
/// ```text
/// termination measure asize  :: AVL α → Nat
/// measure height :: AVL α → Nat
/// measure aelems :: AVL α → Set α
/// data AVL α where
///   ALeaf :: {AVL α | asize ν = 0 ∧ height ν = 0 ∧ aelems ν = []}
///   ANode :: x: α → l: AVL {α | ν < x} → r: {AVL {α | x < ν} |
///              height l - height r ≤ 1 ∧ height r - height l ≤ 1} →
///            {AVL α | asize ν = asize l + asize r + 1
///                   ∧ aelems ν = aelems l + aelems r + [x]
///                   ∧ (height l ≥ height r ⇒ height ν = height l + 1)
///                   ∧ (height r ≥ height l ⇒ height ν = height r + 1)}
/// ```
pub fn avl_datatype() -> Datatype {
    let a = "a".to_string();
    let elem = Sort::var(a.clone());
    let base = BaseType::Data("AVL".into(), vec![RType::tyvar(a.clone())]);
    let sort = base.sort();
    let asize = |t: Term| Term::app("asize", vec![t], Sort::Int);
    let height = |t: Term| Term::app("height", vec![t], Sort::Int);
    let aelems = |t: Term| Term::app("aelems", vec![t], Sort::set(elem.clone()));
    let nu = || Term::value_var(sort.clone());

    let leaf = Constructor {
        name: "ALeaf".into(),
        schema: Schema::forall(
            vec![a.clone()],
            RType::refined(
                base.clone(),
                asize(nu())
                    .eq(Term::int(0))
                    .and(height(nu()).eq(Term::int(0)))
                    .and(aelems(nu()).eq(Term::empty_set(elem.clone()))),
            ),
        ),
    };

    let x = Term::var("x", elem.clone());
    let l = Term::var("l", sort.clone());
    let r = Term::var("r", sort.clone());
    let left_elem = RType::refined(
        BaseType::TypeVar(a.clone()),
        Term::value_var(elem.clone()).lt(x.clone()),
    );
    let right_elem = RType::refined(
        BaseType::TypeVar(a.clone()),
        x.clone().lt(Term::value_var(elem.clone())),
    );
    // The right-subtree binder additionally carries the balance condition
    // relative to the already-bound left subtree.
    let balance = height(l.clone())
        .minus(height(nu()))
        .le(Term::int(1))
        .and(height(nu()).minus(height(l.clone())).le(Term::int(1)));
    let node_refinement = asize(nu())
        .eq(asize(l.clone()).plus(asize(r.clone())).plus(Term::int(1)))
        .and(
            aelems(nu()).eq(aelems(l.clone())
                .union(aelems(r.clone()))
                .union(Term::singleton(elem.clone(), x))),
        )
        .and(
            height(l.clone())
                .ge(height(r.clone()))
                .implies(height(nu()).eq(height(l.clone()).plus(Term::int(1)))),
        )
        .and(
            height(r.clone())
                .ge(height(l))
                .implies(height(nu()).eq(height(r).plus(Term::int(1)))),
        );
    let node = Constructor {
        name: "ANode".into(),
        schema: Schema::forall(
            vec![a.clone()],
            RType::fun_n(
                vec![
                    ("x".to_string(), RType::tyvar(a.clone())),
                    (
                        "l".to_string(),
                        RType::base(BaseType::Data("AVL".into(), vec![left_elem])),
                    ),
                    (
                        "r".to_string(),
                        RType::refined(BaseType::Data("AVL".into(), vec![right_elem]), balance),
                    ),
                ],
                RType::refined(base.clone(), node_refinement),
            ),
        ),
    };

    Datatype {
        name: "AVL".into(),
        type_params: vec![a],
        constructors: vec![leaf, node],
        measures: vec![
            nat_measure("asize", "AVL"),
            nat_measure("height", "AVL"),
            set_measure("aelems", "AVL", elem),
        ],
        termination_measure: Some("asize".into()),
    }
}

/// Red-black trees. Colors are tracked by the integer measure `color`
/// (0 = black, 1 = red) and the black height by `bheight`; red nodes must
/// have black children and the black height of both subtrees must agree.
pub fn rbt_datatype() -> Datatype {
    let a = "a".to_string();
    let elem = Sort::var(a.clone());
    let base = BaseType::Data("RBT".into(), vec![RType::tyvar(a.clone())]);
    let sort = base.sort();
    let rsize = |t: Term| Term::app("rsize", vec![t], Sort::Int);
    let color = |t: Term| Term::app("color", vec![t], Sort::Int);
    let bheight = |t: Term| Term::app("bheight", vec![t], Sort::Int);
    let relems = |t: Term| Term::app("relems", vec![t], Sort::set(elem.clone()));
    let nu = || Term::value_var(sort.clone());

    let leaf = Constructor {
        name: "RLeaf".into(),
        schema: Schema::forall(
            vec![a.clone()],
            RType::refined(
                base.clone(),
                rsize(nu())
                    .eq(Term::int(0))
                    .and(color(nu()).eq(Term::int(0)))
                    .and(bheight(nu()).eq(Term::int(0)))
                    .and(relems(nu()).eq(Term::empty_set(elem.clone()))),
            ),
        ),
    };

    let x = Term::var("x", elem.clone());
    let c = Term::var("c", Sort::Int);
    let l = Term::var("l", sort.clone());
    let r = Term::var("r", sort.clone());
    let left_elem = RType::refined(
        BaseType::TypeVar(a.clone()),
        Term::value_var(elem.clone()).lt(x.clone()),
    );
    let right_elem = RType::refined(
        BaseType::TypeVar(a.clone()),
        x.clone().lt(Term::value_var(elem.clone())),
    );
    // c ∈ {0, 1}; a red node (c = 1) must have black children; black
    // heights of the two subtrees agree.
    let color_arg = RType::refined(
        BaseType::Int,
        Term::value_var(Sort::Int)
            .ge(Term::int(0))
            .and(Term::value_var(Sort::Int).le(Term::int(1))),
    );
    let left_ok = RType::base(BaseType::Data("RBT".into(), vec![left_elem]));
    let right_constraint = bheight(nu()).eq(bheight(l.clone())).and(
        c.clone().eq(Term::int(1)).implies(
            color(l.clone())
                .eq(Term::int(0))
                .and(color(nu()).eq(Term::int(0))),
        ),
    );
    let right_ok = RType::refined(
        BaseType::Data("RBT".into(), vec![right_elem]),
        right_constraint,
    );
    let node_refinement = rsize(nu())
        .eq(rsize(l.clone()).plus(rsize(r.clone())).plus(Term::int(1)))
        .and(color(nu()).eq(c.clone()))
        .and(bheight(nu()).eq(bheight(l.clone()).plus(c.clone().eq(Term::int(0)).ite_int())))
        .and(
            relems(nu()).eq(relems(l)
                .union(relems(r))
                .union(Term::singleton(elem.clone(), x))),
        );
    let node = Constructor {
        name: "RNode".into(),
        schema: Schema::forall(
            vec![a.clone()],
            RType::fun_n(
                vec![
                    ("c".to_string(), color_arg),
                    ("x".to_string(), RType::tyvar(a.clone())),
                    ("l".to_string(), left_ok),
                    ("r".to_string(), right_ok),
                ],
                RType::refined(base.clone(), node_refinement),
            ),
        ),
    };

    Datatype {
        name: "RBT".into(),
        type_params: vec![a],
        constructors: vec![leaf, node],
        measures: vec![
            nat_measure("rsize", "RBT"),
            nat_measure("color", "RBT"),
            nat_measure("bheight", "RBT"),
            set_measure("relems", "RBT", elem),
        ],
        termination_measure: Some("rsize".into()),
    }
}

/// A tiny "address book" datatype for the `User` group of Table 1: an
/// address book is a list of entries, each of which is either private or
/// business; the measures count the two kinds of entries.
pub fn address_book_datatype() -> Datatype {
    let a = "a".to_string();
    let elem = Sort::var(a.clone());
    let base = BaseType::Data("Book".into(), vec![RType::tyvar(a.clone())]);
    let sort = base.sort();
    let bsize = |t: Term| Term::app("bsize", vec![t], Sort::Int);
    let bpriv = |t: Term| Term::app("bpriv", vec![t], Sort::Int);
    let bbus = |t: Term| Term::app("bbus", vec![t], Sort::Int);
    let nu = || Term::value_var(sort.clone());
    let _ = elem;

    let empty = Constructor {
        name: "BEmpty".into(),
        schema: Schema::forall(
            vec![a.clone()],
            RType::refined(
                base.clone(),
                bsize(nu())
                    .eq(Term::int(0))
                    .and(bpriv(nu()).eq(Term::int(0)))
                    .and(bbus(nu()).eq(Term::int(0))),
            ),
        ),
    };

    let xs = Term::var("xs", sort.clone());
    let p = Term::var("p", Sort::Bool);
    // BAdd :: x: α → p: Bool → xs: Book α → {Book α | … counts updated}
    let add_refinement = bsize(nu())
        .eq(bsize(xs.clone()).plus(Term::int(1)))
        .and(
            p.clone().implies(
                bpriv(nu())
                    .eq(bpriv(xs.clone()).plus(Term::int(1)))
                    .and(bbus(nu()).eq(bbus(xs.clone()))),
            ),
        )
        .and(
            p.clone().not().implies(
                bbus(nu())
                    .eq(bbus(xs.clone()).plus(Term::int(1)))
                    .and(bpriv(nu()).eq(bpriv(xs.clone()))),
            ),
        );
    let add = Constructor {
        name: "BAdd".into(),
        schema: Schema::forall(
            vec![a.clone()],
            RType::fun_n(
                vec![
                    ("x".to_string(), RType::tyvar(a.clone())),
                    ("p".to_string(), RType::bool()),
                    ("xs".to_string(), RType::base(base.clone())),
                ],
                RType::refined(base.clone(), add_refinement),
            ),
        ),
    };

    Datatype {
        name: "Book".into(),
        type_params: vec![a],
        constructors: vec![empty, add],
        measures: vec![
            nat_measure("bsize", "Book"),
            nat_measure("bpriv", "Book"),
            nat_measure("bbus", "Book"),
        ],
        termination_measure: Some("bsize".into()),
    }
}

/// Helper: the `ite_int` conversion used by the red-black tree black
/// height (`1` when the condition holds, `0` otherwise). Defined as an
/// extension trait so the datatype builder above reads naturally.
trait IteInt {
    fn ite_int(self) -> Term;
}

impl IteInt for Term {
    fn ite_int(self) -> Term {
        Term::ite(self, Term::int(1), Term::int(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_has_scalar_leaf_and_ternary_node() {
        let t = tree_datatype();
        assert!(t.constructor("Leaf").unwrap().is_scalar());
        assert_eq!(t.constructor("TNode").unwrap().arity(), 3);
        assert_eq!(t.termination().unwrap().name, "tsize");
    }

    #[test]
    fn heap_subtrees_are_bounded_below_by_the_root() {
        let h = heap_datatype();
        let node = h.constructor("HNode").unwrap();
        let (args, _) = node.schema.ty.uncurry();
        for (_, subtree) in &args[1..] {
            match subtree.base_type().unwrap() {
                BaseType::Data(_, params) => {
                    assert!(params[0].refinement().to_string().contains("<="));
                }
                other => panic!("expected a Heap argument, got {other}"),
            }
        }
    }

    #[test]
    fn unique_list_tail_excludes_the_head() {
        let u = unique_list_datatype();
        let cons = u.constructor("UCons").unwrap();
        let (args, _) = cons.schema.ty.uncurry();
        let tail = &args[1].1;
        assert!(tail.refinement().to_string().contains("in"));
    }

    #[test]
    fn strict_list_tail_elements_exceed_the_head() {
        let s = strict_list_datatype();
        let cons = s.constructor("SCons").unwrap();
        let (args, _) = cons.schema.ty.uncurry();
        match args[1].1.base_type().unwrap() {
            BaseType::Data(_, params) => {
                assert!(params[0].refinement().to_string().contains("<"));
            }
            other => panic!("expected SList argument, got {other}"),
        }
    }

    #[test]
    fn avl_tracks_both_size_and_height() {
        let avl = avl_datatype();
        assert!(avl.measure("height").is_some());
        assert!(avl.measure("asize").is_some());
        assert!(avl.measure("height").unwrap().non_negative);
        let node = avl.constructor("ANode").unwrap();
        assert_eq!(node.arity(), 3);
    }

    #[test]
    fn rbt_nodes_carry_a_color_argument() {
        let rbt = rbt_datatype();
        let node = rbt.constructor("RNode").unwrap();
        assert_eq!(node.arity(), 4);
        assert!(rbt.measure("color").is_some());
        assert!(rbt.measure("bheight").is_some());
    }

    #[test]
    fn address_book_counts_private_and_business_entries() {
        let book = address_book_datatype();
        assert_eq!(book.constructors.len(), 2);
        assert!(book.measure("bpriv").is_some());
        assert!(book.measure("bbus").is_some());
        let add = book.constructor("BAdd").unwrap();
        assert_eq!(add.arity(), 3);
    }

    #[test]
    fn all_extra_datatypes_have_scalar_constructors_for_match_abduction() {
        for dt in [
            tree_datatype(),
            heap_datatype(),
            unique_list_datatype(),
            strict_list_datatype(),
            avl_datatype(),
            rbt_datatype(),
            address_book_datatype(),
        ] {
            assert!(
                dt.has_scalar_constructor(),
                "{} should have a scalar constructor",
                dt.name
            );
        }
    }
}
