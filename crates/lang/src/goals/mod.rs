//! Additional transcribed synthesis goals for Table 1.
//!
//! The first transcription pass (in [`crate::benchmarks`]) covered the
//! paper's running examples; the modules below transcribe the remaining
//! benchmark groups that are expressible with the component libraries of
//! [`crate::components`] and the datatypes of [`crate::datatypes`]:
//!
//! * [`lists`] — the rest of the `List` group (membership, take, delete,
//!   map, insert-at-end, reverse);
//! * [`unique`] — the `Unique list` and `Strictly sorted list` groups;
//! * [`trees`] — the `Tree` group (membership, node count, preorder);
//! * [`heaps`] — the `Binary Heap` group (membership, constructors,
//!   insertion);
//! * [`sorting`] — the remaining `Sorting` goals (merging sorted lists);
//! * [`user`] — the `User` group (address books).
//!
//! Each function returns a fresh [`Goal`](synquid_core::Goal); the
//! benchmark table wires them into the Table 1 rows by name.

pub mod heaps;
pub mod lists;
pub mod sorting;
pub mod trees;
pub mod unique;
pub mod user;

pub use heaps::*;
pub use lists::*;
pub use sorting::*;
pub use trees::*;
pub use unique::*;
pub use user::*;
