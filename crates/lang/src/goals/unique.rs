//! Transcriptions of the `Unique list` and `Strictly sorted list` groups.

use crate::components::{
    elems_of, list_type, selems_of, slist_type, strict_list_environment, uelems_of, ulist_type,
    unique_list_environment,
};
use synquid_core::Goal;
use synquid_logic::{Sort, Term};
use synquid_types::{BaseType, RType, Schema};

fn elem_sort() -> Sort {
    Sort::var("a")
}

fn avar(n: &str) -> Term {
    Term::var(n, elem_sort())
}

fn ulist_sort() -> Sort {
    Sort::Data("UList".into(), vec![elem_sort()])
}

fn slist_sort() -> Sort {
    Sort::Data("SList".into(), vec![elem_sort()])
}

/// `unique insert :: x: α → xs: UList α →
///  {UList α | uelems ν = uelems xs + [x]}` (components: `=`, `≠`).
pub fn goal_unique_insert() -> Goal {
    let env = unique_list_environment();
    let ret = RType::refined(
        BaseType::Data("UList".into(), vec![RType::tyvar("a")]),
        uelems_of(Term::value_var(ulist_sort()), elem_sort()).eq(uelems_of(
            Term::var("xs", ulist_sort()),
            elem_sort(),
        )
        .union(Term::singleton(elem_sort(), avar("x")))),
    );
    let ty = RType::fun_n(
        vec![
            ("x".into(), RType::tyvar("a")),
            ("xs".into(), ulist_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("unique_insert", env, Schema::forall(vec!["a".into()], ty))
}

/// `unique delete :: x: α → xs: UList α →
///  {UList α | uelems ν = uelems xs − [x]}` (components: `=`, `≠`).
pub fn goal_unique_delete() -> Goal {
    let env = unique_list_environment();
    let ret = RType::refined(
        BaseType::Data("UList".into(), vec![RType::tyvar("a")]),
        uelems_of(Term::value_var(ulist_sort()), elem_sort()).eq(uelems_of(
            Term::var("xs", ulist_sort()),
            elem_sort(),
        )
        .set_diff(Term::singleton(elem_sort(), avar("x")))),
    );
    let ty = RType::fun_n(
        vec![
            ("x".into(), RType::tyvar("a")),
            ("xs".into(), ulist_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("unique_delete", env, Schema::forall(vec!["a".into()], ty))
}

/// `remove duplicates :: xs: List α → {UList α | uelems ν = elems xs}`,
/// with list membership (`is member`) provided as a component — exactly
/// the decomposition the paper uses (the membership test is the other
/// synthesis goal of this row).
pub fn goal_remove_duplicates() -> Goal {
    let mut env = unique_list_environment();
    // Component: member :: x: α → xs: UList α → {Bool | ν ⇔ x ∈ uelems xs}.
    let member_ret = RType::refined(
        BaseType::Bool,
        Term::value_var(Sort::Bool)
            .iff(avar("x").member(uelems_of(Term::var("xs", ulist_sort()), elem_sort()))),
    );
    env.add_var(
        "umember",
        Schema::forall(
            vec!["a".into()],
            RType::fun_n(
                vec![
                    ("x".into(), RType::tyvar("a")),
                    ("xs".into(), ulist_type(RType::tyvar("a"))),
                ],
                member_ret,
            ),
        ),
    );
    let list_sort = Sort::Data("List".into(), vec![elem_sort()]);
    let ret = RType::refined(
        BaseType::Data("UList".into(), vec![RType::tyvar("a")]),
        uelems_of(Term::value_var(ulist_sort()), elem_sort())
            .eq(elems_of(Term::var("xs", list_sort), elem_sort())),
    );
    let ty = RType::fun("xs", list_type(RType::tyvar("a")), ret);
    Goal::new(
        "remove_duplicates",
        env,
        Schema::forall(vec!["a".into()], ty),
    )
}

/// `strictly sorted insert :: x: α → xs: SList α →
///  {SList α | selems ν = selems xs + [x]}` (components: `<`).
pub fn goal_strict_insert() -> Goal {
    let env = strict_list_environment();
    let ret = RType::refined(
        BaseType::Data("SList".into(), vec![RType::tyvar("a")]),
        selems_of(Term::value_var(slist_sort()), elem_sort()).eq(selems_of(
            Term::var("xs", slist_sort()),
            elem_sort(),
        )
        .union(Term::singleton(elem_sort(), avar("x")))),
    );
    let ty = RType::fun_n(
        vec![
            ("x".into(), RType::tyvar("a")),
            ("xs".into(), slist_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("strict_insert", env, Schema::forall(vec!["a".into()], ty))
}

/// `strictly sorted delete :: x: α → xs: SList α →
///  {SList α | selems ν = selems xs − [x]}` (components: `<`).
pub fn goal_strict_delete() -> Goal {
    let env = strict_list_environment();
    let ret = RType::refined(
        BaseType::Data("SList".into(), vec![RType::tyvar("a")]),
        selems_of(Term::value_var(slist_sort()), elem_sort()).eq(selems_of(
            Term::var("xs", slist_sort()),
            elem_sort(),
        )
        .set_diff(Term::singleton(elem_sort(), avar("x")))),
    );
    let ty = RType::fun_n(
        vec![
            ("x".into(), RType::tyvar("a")),
            ("xs".into(), slist_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("strict_delete", env, Schema::forall(vec!["a".into()], ty))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_and_strict_goals_are_well_formed() {
        for goal in [
            goal_unique_insert(),
            goal_unique_delete(),
            goal_remove_duplicates(),
            goal_strict_insert(),
            goal_strict_delete(),
        ] {
            assert!(goal.schema.ty.is_function());
            let (_, ret) = goal.schema.ty.uncurry();
            assert!(ret.is_scalar());
            assert!(
                !ret.refinement().is_true(),
                "{} has a trivial goal",
                goal.name
            );
        }
    }

    #[test]
    fn remove_duplicates_provides_a_membership_component() {
        let goal = goal_remove_duplicates();
        assert!(goal.env.lookup("umember").is_some());
        assert!(goal.env.datatype("List").is_some());
        assert!(goal.env.datatype("UList").is_some());
    }

    #[test]
    fn strict_goals_use_the_slist_measures() {
        let goal = goal_strict_insert();
        let (_, ret) = goal.schema.ty.uncurry();
        assert!(ret.refinement().to_string().contains("selems"));
    }
}
