//! Transcriptions of the remaining `List`-group benchmarks of Table 1.

use crate::components::{
    add_bool_components, add_comparison_components, elems_of, len_of, list_environment, list_type,
};
use synquid_core::Goal;
use synquid_logic::{Sort, Term};
use synquid_types::{BaseType, RType, Schema};

fn elem_sort() -> Sort {
    Sort::var("a")
}

fn list_sort() -> Sort {
    Sort::Data("List".into(), vec![elem_sort()])
}

fn nu_list() -> Term {
    Term::value_var(list_sort())
}

fn avar(n: &str) -> Term {
    Term::var(n, elem_sort())
}

fn lvar(n: &str) -> Term {
    Term::var(n, list_sort())
}

/// `is member :: x: α → xs: List α → {Bool | ν ⇔ x ∈ elems xs}`
/// (components: `true`, `false`, `=`, `≠`).
pub fn goal_list_member() -> Goal {
    let mut env = list_environment();
    add_bool_components(&mut env);
    add_comparison_components(&mut env, elem_sort());
    let ret = RType::refined(
        BaseType::Bool,
        Term::value_var(Sort::Bool).iff(avar("x").member(elems_of(lvar("xs"), elem_sort()))),
    );
    let ty = RType::fun_n(
        vec![
            ("x".into(), RType::tyvar("a")),
            ("xs".into(), list_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("list_member", env, Schema::forall(vec!["a".into()], ty))
}

/// `take first n elements :: n: Nat → xs: {List α | len ν ≥ n} →
///  {List α | len ν = n}` (components: `0`, `inc`, `dec`, `≤`, `≠`).
pub fn goal_take() -> Goal {
    let mut env = list_environment();
    add_comparison_components(&mut env, Sort::Int);
    let arg = RType::refined(
        BaseType::Data("List".into(), vec![RType::tyvar("a")]),
        len_of(nu_list()).ge(Term::var("n", Sort::Int)),
    );
    let ret = RType::refined(
        BaseType::Data("List".into(), vec![RType::tyvar("a")]),
        len_of(nu_list()).eq(Term::var("n", Sort::Int)),
    );
    let ty = RType::fun_n(vec![("n".into(), RType::nat()), ("xs".into(), arg)], ret);
    Goal::new("take", env, Schema::forall(vec!["a".into()], ty))
}

/// `delete value :: x: α → xs: List α → {List α | elems ν = elems xs − [x]}`
/// (components: `=`, `≠`).
pub fn goal_list_delete() -> Goal {
    let mut env = list_environment();
    add_comparison_components(&mut env, elem_sort());
    let ret =
        RType::refined(
            BaseType::Data("List".into(), vec![RType::tyvar("a")]),
            elems_of(nu_list(), elem_sort())
                .eq(elems_of(lvar("xs"), elem_sort())
                    .set_diff(Term::singleton(elem_sort(), avar("x")))),
        );
    let ty = RType::fun_n(
        vec![
            ("x".into(), RType::tyvar("a")),
            ("xs".into(), list_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("list_delete", env, Schema::forall(vec!["a".into()], ty))
}

/// `map :: f: (α → β) → xs: List α → {List β | len ν = len xs}`.
///
/// The output element type is a different type variable, so the only way
/// to produce elements is to apply `f`; the length refinement forces one
/// application per input element.
pub fn goal_map() -> Goal {
    let env = list_environment();
    let b_list_sort = Sort::Data("List".into(), vec![Sort::var("b")]);
    let ret = RType::refined(
        BaseType::Data("List".into(), vec![RType::tyvar("b")]),
        Term::app("len", vec![Term::value_var(b_list_sort)], Sort::Int).eq(len_of(lvar("xs"))),
    );
    let f_ty = RType::fun("y", RType::tyvar("a"), RType::tyvar("b"));
    let ty = RType::fun_n(
        vec![
            ("f".into(), f_ty),
            ("xs".into(), list_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("map", env, Schema::forall(vec!["a".into(), "b".into()], ty))
}

/// `insert at end :: xs: List α → x: α →
///  {List α | len ν = len xs + 1 ∧ elems ν = elems xs + [x]}` (the `snoc`
/// auxiliary used by `reverse`).
pub fn goal_insert_at_end() -> Goal {
    let env = list_environment();
    let ret = RType::refined(
        BaseType::Data("List".into(), vec![RType::tyvar("a")]),
        len_of(nu_list())
            .eq(len_of(lvar("xs")).plus(Term::int(1)))
            .and(elems_of(nu_list(), elem_sort()).eq(
                elems_of(lvar("xs"), elem_sort()).union(Term::singleton(elem_sort(), avar("x"))),
            )),
    );
    let ty = RType::fun_n(
        vec![
            ("xs".into(), list_type(RType::tyvar("a"))),
            ("x".into(), RType::tyvar("a")),
        ],
        ret,
    );
    Goal::new("insert_at_end", env, Schema::forall(vec!["a".into()], ty))
}

/// The `snoc` component used by `reverse`: insertion at the end of a list,
/// with the same signature as [`goal_insert_at_end`].
fn snoc_schema() -> Schema {
    let ret = RType::refined(
        BaseType::Data("List".into(), vec![RType::tyvar("a")]),
        len_of(nu_list())
            .eq(len_of(lvar("xs")).plus(Term::int(1)))
            .and(elems_of(nu_list(), elem_sort()).eq(
                elems_of(lvar("xs"), elem_sort()).union(Term::singleton(elem_sort(), avar("x"))),
            )),
    );
    Schema::forall(
        vec!["a".into()],
        RType::fun_n(
            vec![
                ("xs".into(), list_type(RType::tyvar("a"))),
                ("x".into(), RType::tyvar("a")),
            ],
            ret,
        ),
    )
}

/// `reverse :: xs: List α → {List α | len ν = len xs ∧ elems ν = elems xs}`
/// with `snoc` (insert at end) provided as a component.
///
/// The paper's version uses abstract refinements to additionally state the
/// order reversal; this reproduction uses the measure-expressible part of
/// the specification (length and element-set preservation), which is the
/// documented substitution for abstract refinements (DESIGN.md §6).
pub fn goal_reverse() -> Goal {
    let mut env = list_environment();
    env.add_var("snoc", snoc_schema());
    let ret = RType::refined(
        BaseType::Data("List".into(), vec![RType::tyvar("a")]),
        len_of(nu_list())
            .eq(len_of(lvar("xs")))
            .and(elems_of(nu_list(), elem_sort()).eq(elems_of(lvar("xs"), elem_sort()))),
    );
    let ty = RType::fun("xs", list_type(RType::tyvar("a")), ret);
    Goal::new("reverse", env, Schema::forall(vec!["a".into()], ty))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_goals_build_well_formed_schemas() {
        for goal in [
            goal_list_member(),
            goal_take(),
            goal_list_delete(),
            goal_map(),
            goal_insert_at_end(),
            goal_reverse(),
        ] {
            assert!(!goal.name.is_empty());
            assert!(
                goal.schema.ty.is_function(),
                "{} should be a function goal",
                goal.name
            );
            let (args, ret) = goal.schema.ty.uncurry();
            assert!(!args.is_empty());
            assert!(ret.is_scalar());
        }
    }

    #[test]
    fn map_is_polymorphic_in_two_variables() {
        let goal = goal_map();
        assert_eq!(goal.schema.type_vars.len(), 2);
        let (args, _) = goal.schema.ty.uncurry();
        assert!(
            args[0].1.is_function(),
            "first argument of map is higher-order"
        );
    }

    #[test]
    fn reverse_has_the_snoc_component() {
        let goal = goal_reverse();
        assert!(goal.env.lookup("snoc").is_some());
    }

    #[test]
    fn member_goal_environment_has_generic_equality() {
        let goal = goal_list_member();
        assert!(goal.env.lookup("eqg").is_some());
        assert!(goal.env.lookup("true").is_some());
    }
}
