//! Transcriptions of the `User` group of Table 1 (custom datatypes).

use crate::components::{book_environment, len_of, list_type};
use synquid_core::Goal;
use synquid_logic::{Sort, Term};
use synquid_types::{list_datatype, BaseType, RType, Schema};

fn elem_sort() -> Sort {
    Sort::var("a")
}

fn book_sort() -> Sort {
    Sort::Data("Book".into(), vec![elem_sort()])
}

fn book_ty() -> RType {
    RType::base(BaseType::Data("Book".into(), vec![RType::tyvar("a")]))
}

fn bsize(t: Term) -> Term {
    Term::app("bsize", vec![t], Sort::Int)
}

/// `make address book :: xs: List α → {Book α | bsize ν = len xs}`,
/// with `is_private : α → Bool` provided as a component (the paper's
/// benchmark classifies each entry as private or business).
pub fn goal_make_address_book() -> Goal {
    let mut env = book_environment();
    env.add_datatype(list_datatype());
    env.add_var(
        "is_private",
        Schema::forall(
            vec!["a".into()],
            RType::fun("x", RType::tyvar("a"), RType::bool()),
        ),
    );
    let ret = RType::refined(
        BaseType::Data("Book".into(), vec![RType::tyvar("a")]),
        bsize(Term::value_var(book_sort())).eq(len_of(Term::var(
            "xs",
            Sort::Data("List".into(), vec![elem_sort()]),
        ))),
    );
    let ty = RType::fun("xs", list_type(RType::tyvar("a")), ret);
    Goal::new(
        "make_address_book",
        env,
        Schema::forall(vec!["a".into()], ty),
    )
}

/// `merge address books :: b1: Book α → b2: Book α →
///  {Book α | bsize ν = bsize b1 + bsize b2}`.
pub fn goal_merge_address_books() -> Goal {
    let env = book_environment();
    let ret = RType::refined(
        BaseType::Data("Book".into(), vec![RType::tyvar("a")]),
        bsize(Term::value_var(book_sort()))
            .eq(bsize(Term::var("b1", book_sort())).plus(bsize(Term::var("b2", book_sort())))),
    );
    let ty = RType::fun_n(
        vec![("b1".into(), book_ty()), ("b2".into(), book_ty())],
        ret,
    );
    Goal::new(
        "merge_address_books",
        env,
        Schema::forall(vec!["a".into()], ty),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_book_goals_are_well_formed() {
        for goal in [goal_make_address_book(), goal_merge_address_books()] {
            assert!(goal.schema.ty.is_function());
            assert!(goal.env.datatype("Book").is_some());
        }
    }

    #[test]
    fn make_address_book_classifies_entries_with_a_component() {
        let goal = goal_make_address_book();
        assert!(goal.env.lookup("is_private").is_some());
        assert!(goal.env.datatype("List").is_some());
    }
}
