//! Transcriptions of the remaining `Sorting` goals of Table 1.

use crate::components::{ilist_type, sorting_environment};
use synquid_core::Goal;
use synquid_logic::{Sort, Term};
use synquid_types::{BaseType, RType, Schema};

fn elem_sort() -> Sort {
    Sort::var("a")
}

fn ilist_sort() -> Sort {
    Sort::Data("IList".into(), vec![elem_sort()])
}

fn ielems(t: Term) -> Term {
    Term::app("ielems", vec![t], Sort::set(elem_sort()))
}

fn ilen(t: Term) -> Term {
    Term::app("ilen", vec![t], Sort::Int)
}

/// `merge :: xs: IList α → ys: IList α →
///  {IList α | ielems ν = ielems xs + ielems ys}` (components: `≤`, `≠`).
///
/// The paper's merge benchmark uses a lexicographic termination order over
/// both arguments; this reproduction's termination discipline descends on
/// the first measured argument only (DESIGN.md §6), so the goal is
/// transcribed and reported honestly even where synthesis does not
/// complete within the budget.
pub fn goal_merge() -> Goal {
    let env = sorting_environment();
    let ret = RType::refined(
        BaseType::Data("IList".into(), vec![RType::tyvar("a")]),
        ielems(Term::value_var(ilist_sort()))
            .eq(ielems(Term::var("xs", ilist_sort())).union(ielems(Term::var("ys", ilist_sort())))),
    );
    let ty = RType::fun_n(
        vec![
            ("xs".into(), ilist_type(RType::tyvar("a"))),
            ("ys".into(), ilist_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("merge", env, Schema::forall(vec!["a".into()], ty))
}

/// `extract minimum (simplified) :: xs: {IList α | ilen ν > 0} →
///  {α | ν ∈ ielems xs}`: the head of a non-empty sorted list is an
/// element of the list (the full benchmark also returns the remaining
/// list, which requires pairs).
pub fn goal_sorted_head() -> Goal {
    let env = sorting_environment();
    let arg = RType::refined(
        BaseType::Data("IList".into(), vec![RType::tyvar("a")]),
        ilen(Term::value_var(ilist_sort())).gt(Term::int(0)),
    );
    let ret = RType::refined(
        BaseType::TypeVar("a".into()),
        Term::value_var(elem_sort()).member(ielems(Term::var("xs", ilist_sort()))),
    );
    let ty = RType::fun("xs", arg, ret);
    Goal::new("sorted_head", env, Schema::forall(vec!["a".into()], ty))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_two_sorted_lists() {
        let goal = goal_merge();
        let (args, ret) = goal.schema.ty.uncurry();
        assert_eq!(args.len(), 2);
        assert!(ret.refinement().to_string().contains("ielems"));
    }

    #[test]
    fn sorted_head_requires_a_non_empty_argument() {
        let goal = goal_sorted_head();
        let (args, _) = goal.schema.ty.uncurry();
        assert!(args[0].1.refinement().to_string().contains('>'));
    }
}
