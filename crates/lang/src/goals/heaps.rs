//! Transcriptions of the `Binary Heap` group of Table 1.

use crate::components::{heap_environment, heap_type, helems_of};
use synquid_core::Goal;
use synquid_logic::{Sort, Term};
use synquid_types::{BaseType, RType, Schema};

fn elem_sort() -> Sort {
    Sort::var("a")
}

fn heap_sort() -> Sort {
    Sort::Data("Heap".into(), vec![elem_sort()])
}

fn avar(n: &str) -> Term {
    Term::var(n, elem_sort())
}

fn hvar(n: &str) -> Term {
    Term::var(n, heap_sort())
}

/// `heap is member :: x: α → h: Heap α → {Bool | ν ⇔ x ∈ helems h}`
/// (components: `false`, `not`, `or`, `≤`, `≠`).
pub fn goal_heap_member() -> Goal {
    let env = heap_environment();
    let ret = RType::refined(
        BaseType::Bool,
        Term::value_var(Sort::Bool).iff(avar("x").member(helems_of(hvar("h"), elem_sort()))),
    );
    let ty = RType::fun_n(
        vec![
            ("x".into(), RType::tyvar("a")),
            ("h".into(), heap_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("heap_member", env, Schema::forall(vec!["a".into()], ty))
}

/// `1-element constructor :: x: α → {Heap α | helems ν = [x]}`.
pub fn goal_heap_singleton() -> Goal {
    let env = heap_environment();
    let ret = RType::refined(
        BaseType::Data("Heap".into(), vec![RType::tyvar("a")]),
        helems_of(Term::value_var(heap_sort()), elem_sort())
            .eq(Term::singleton(elem_sort(), avar("x"))),
    );
    let ty = RType::fun("x", RType::tyvar("a"), ret);
    Goal::new("heap_singleton", env, Schema::forall(vec!["a".into()], ty))
}

/// `2-element constructor :: x: α → y: α → {Heap α | helems ν = [x, y]}`.
///
/// The min-heap invariant (both subtrees bounded below by the root) forces
/// the synthesizer to compare `x` and `y` and put the smaller one at the
/// root, which is exactly the branching behaviour the paper reports for
/// this row.
pub fn goal_heap_two() -> Goal {
    let env = heap_environment();
    let ret = RType::refined(
        BaseType::Data("Heap".into(), vec![RType::tyvar("a")]),
        helems_of(Term::value_var(heap_sort()), elem_sort()).eq(Term::singleton(
            elem_sort(),
            avar("x"),
        )
        .union(Term::singleton(elem_sort(), avar("y")))),
    );
    let ty = RType::fun_n(
        vec![
            ("x".into(), RType::tyvar("a")),
            ("y".into(), RType::tyvar("a")),
        ],
        ret,
    );
    Goal::new("heap_two", env, Schema::forall(vec!["a".into()], ty))
}

/// `heap insert :: x: α → h: Heap α → {Heap α | helems ν = helems h + [x]}`
/// (components: `≤`, `≠`).
pub fn goal_heap_insert() -> Goal {
    let env = heap_environment();
    let ret = RType::refined(
        BaseType::Data("Heap".into(), vec![RType::tyvar("a")]),
        helems_of(Term::value_var(heap_sort()), elem_sort())
            .eq(helems_of(hvar("h"), elem_sort()).union(Term::singleton(elem_sort(), avar("x")))),
    );
    let ty = RType::fun_n(
        vec![
            ("x".into(), RType::tyvar("a")),
            ("h".into(), heap_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("heap_insert", env, Schema::forall(vec!["a".into()], ty))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_goals_are_well_formed() {
        for goal in [
            goal_heap_member(),
            goal_heap_singleton(),
            goal_heap_two(),
            goal_heap_insert(),
        ] {
            assert!(goal.schema.ty.is_function());
            assert!(goal.env.datatype("Heap").is_some());
            let (_, ret) = goal.schema.ty.uncurry();
            assert!(!ret.refinement().is_true());
        }
    }

    #[test]
    fn constructors_specify_the_exact_element_set() {
        let one = goal_heap_singleton();
        let (_, ret) = one.schema.ty.uncurry();
        assert!(ret.refinement().to_string().contains("helems"));
        let two = goal_heap_two();
        let (args, _) = two.schema.ty.uncurry();
        assert_eq!(args.len(), 2);
    }
}
