//! Transcriptions of the `Tree` group of Table 1.

use crate::components::{
    add_arith_components, elems_of, len_of, telems_of, tree_environment, tree_type, tsize_of,
};
use synquid_core::Goal;
use synquid_logic::{Sort, Term};
use synquid_types::{list_datatype, BaseType, RType, Schema};

fn elem_sort() -> Sort {
    Sort::var("a")
}

fn tree_sort() -> Sort {
    Sort::Data("Tree".into(), vec![elem_sort()])
}

fn avar(n: &str) -> Term {
    Term::var(n, elem_sort())
}

fn tvar(n: &str) -> Term {
    Term::var(n, tree_sort())
}

/// `tree is member :: x: α → t: Tree α → {Bool | ν ⇔ x ∈ telems t}`
/// (components: `false`, `not`, `or`, `=`).
pub fn goal_tree_member() -> Goal {
    let env = tree_environment();
    let ret = RType::refined(
        BaseType::Bool,
        Term::value_var(Sort::Bool).iff(avar("x").member(telems_of(tvar("t"), elem_sort()))),
    );
    let ty = RType::fun_n(
        vec![
            ("x".into(), RType::tyvar("a")),
            ("t".into(), tree_type(RType::tyvar("a"))),
        ],
        ret,
    );
    Goal::new("tree_member", env, Schema::forall(vec!["a".into()], ty))
}

/// `node count :: t: Tree α → {Int | ν = tsize t}` (components: `0`, `1`,
/// `+`).
pub fn goal_tree_count() -> Goal {
    let mut env = tree_environment();
    add_arith_components(&mut env);
    let ret = RType::refined(
        BaseType::Int,
        Term::value_var(Sort::Int).eq(tsize_of(tvar("t"))),
    );
    let ty = RType::fun("t", tree_type(RType::tyvar("a")), ret);
    Goal::new("tree_count", env, Schema::forall(vec!["a".into()], ty))
}

/// `preorder :: t: Tree α → {List α | elems ν = telems t ∧ len ν = tsize t}`
/// with list `append` provided as a component.
pub fn goal_tree_preorder() -> Goal {
    let mut env = tree_environment();
    env.add_datatype(list_datatype());
    // Component: append :: xs: List α → ys: List α →
    //   {List α | len ν = len xs + len ys ∧ elems ν = elems xs + elems ys}.
    let ls = Sort::Data("List".into(), vec![elem_sort()]);
    let nu = Term::value_var(ls.clone());
    let append_ret = RType::refined(
        BaseType::Data("List".into(), vec![RType::tyvar("a")]),
        len_of(nu.clone())
            .eq(len_of(Term::var("xs", ls.clone())).plus(len_of(Term::var("ys", ls.clone()))))
            .and(
                elems_of(nu.clone(), elem_sort()).eq(elems_of(
                    Term::var("xs", ls.clone()),
                    elem_sort(),
                )
                .union(elems_of(Term::var("ys", ls.clone()), elem_sort()))),
            ),
    );
    env.add_var(
        "append",
        Schema::forall(
            vec!["a".into()],
            RType::fun_n(
                vec![
                    (
                        "xs".into(),
                        RType::base(BaseType::Data("List".into(), vec![RType::tyvar("a")])),
                    ),
                    (
                        "ys".into(),
                        RType::base(BaseType::Data("List".into(), vec![RType::tyvar("a")])),
                    ),
                ],
                append_ret,
            ),
        ),
    );
    let ret = RType::refined(
        BaseType::Data("List".into(), vec![RType::tyvar("a")]),
        elems_of(Term::value_var(ls.clone()), elem_sort())
            .eq(telems_of(tvar("t"), elem_sort()))
            .and(len_of(Term::value_var(ls)).eq(tsize_of(tvar("t")))),
    );
    let ty = RType::fun("t", tree_type(RType::tyvar("a")), ret);
    Goal::new("tree_preorder", env, Schema::forall(vec!["a".into()], ty))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_goals_are_well_formed() {
        for goal in [goal_tree_member(), goal_tree_count(), goal_tree_preorder()] {
            assert!(goal.schema.ty.is_function());
            assert!(goal.env.datatype("Tree").is_some());
        }
    }

    #[test]
    fn tree_count_has_arithmetic_components() {
        let goal = goal_tree_count();
        assert!(goal.env.lookup("plus").is_some());
        assert!(goal.env.lookup("one").is_some());
    }

    #[test]
    fn preorder_bridges_trees_and_lists() {
        let goal = goal_tree_preorder();
        assert!(goal.env.datatype("List").is_some());
        assert!(goal.env.lookup("append").is_some());
        let (_, ret) = goal.schema.ty.uncurry();
        assert!(ret.refinement().to_string().contains("telems"));
    }
}
