//! Loading `.sq` specification files (the textual counterpart of the
//! programmatic goal builders in [`crate::benchmarks`] and
//! [`crate::goals`]).
//!
//! This module is a thin convenience layer over [`synquid_parser`]: it
//! locates the repository's `specs/` corpus, loads individual files, and
//! looks goals up by name across the corpus. The parity between the two
//! paths — a `.sq` file and the programmatic builder for the same
//! benchmark must produce structurally identical [`Goal`]s — is enforced
//! by `tests/spec_parity.rs`.

use std::path::{Path, PathBuf};
use synquid_core::Goal;
pub use synquid_parser::{load_file, load_named_str, load_str, SpecError, SpecOutput};

/// Locates the `specs/` corpus directory, looking both next to the
/// workspace root and relative to this crate (so the helper works from
/// the facade crate's tests as well as from `crates/lang`).
pub fn corpus_dir() -> Option<PathBuf> {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    [manifest.join("specs"), manifest.join("../../specs")]
        .into_iter()
        .find(|candidate| candidate.is_dir())
}

/// Lists the `.sq` files of the corpus in filename order.
pub fn corpus_files() -> Vec<PathBuf> {
    let Some(dir) = corpus_dir() else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "sq"))
        .collect();
    files.sort();
    files
}

/// Loads one corpus file by stem (`"replicate"` loads
/// `specs/replicate.sq`).
pub fn load_corpus_file(stem: &str) -> Result<SpecOutput, Box<dyn std::error::Error>> {
    let dir = corpus_dir().ok_or("specs/ corpus directory not found")?;
    load_file(dir.join(format!("{stem}.sq")))
}

/// Searches the whole corpus for a goal with the given name.
pub fn goal_from_corpus(name: &str) -> Option<Goal> {
    for file in corpus_files() {
        if let Ok(out) = load_file(&file) {
            if let Some(goal) = out.goals.into_iter().find(|g| g.name == name) {
                return Some(goal);
            }
        }
    }
    None
}

/// Loads a spec file and returns its goals, rendering any diagnostics
/// into the error message.
pub fn goals_from_path(path: impl AsRef<Path>) -> Result<Vec<Goal>, Box<dyn std::error::Error>> {
    Ok(load_file(path)?.goals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_corpus_is_present_and_loads() {
        let files = corpus_files();
        assert!(
            files.len() >= 5,
            "expected at least five corpus files, found {files:?}"
        );
        for file in files {
            let out = load_file(&file)
                .unwrap_or_else(|e| panic!("{} failed to load:\n{e}", file.display()));
            assert!(
                !out.goals.is_empty(),
                "{} declares no goals",
                file.display()
            );
        }
    }

    #[test]
    fn goals_can_be_found_by_name() {
        let goal = goal_from_corpus("replicate").expect("replicate.sq in corpus");
        assert_eq!(goal.name, "replicate");
        assert_eq!(goal.schema.type_vars, vec!["a".to_string()]);
    }
}
