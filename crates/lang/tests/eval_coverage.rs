//! Audits that the interpreter has executable semantics for every
//! component the benchmark suite can emit: any name the enumerator can
//! put into a synthesized program must resolve in `Evaluator`, or the
//! runtime oracle cannot execute the result.

use synquid_core::Evaluator;
use synquid_lang::{sygus, table1, transcribed};

fn audit(goal: &synquid_core::Goal, eval: &Evaluator) {
    for name in goal.env.var_names() {
        assert!(
            eval.covers(name),
            "goal {}: component `{name}` has no evaluator semantics",
            goal.name
        );
    }
    for dt in goal.env.datatypes().values() {
        for ctor in &dt.constructors {
            assert!(
                eval.covers(&ctor.name),
                "goal {}: constructor `{}` not resolvable",
                goal.name,
                ctor.name
            );
        }
    }
}

#[test]
fn every_table1_component_is_executable() {
    let eval = Evaluator::default();
    for bench in table1().iter().chain(transcribed().iter()) {
        if let Some(build) = bench.goal {
            audit(&build(), &eval);
        }
    }
}

#[test]
fn every_sygus_component_is_executable() {
    let eval = Evaluator::default();
    for (_, _, goal) in sygus(6) {
        audit(&goal, &eval);
    }
}
