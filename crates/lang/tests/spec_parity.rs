//! Parity between the textual and the programmatic specification paths:
//! every single-goal `.sq` file in the `specs/` corpus must desugar to a
//! [`Goal`] that is *structurally identical* to the one built by the
//! corresponding programmatic builder in `synquid_lang::benchmarks` /
//! `synquid_lang::goals` — same schema (compared with `PartialEq`) and
//! same environment (compared through the `Debug` rendering, since
//! `Environment` intentionally does not implement `PartialEq`).

use synquid_core::Goal;
use synquid_lang::benchmarks::table1;
use synquid_lang::spec::load_corpus_file;

/// (spec file stem, Table 1 group, Table 1 benchmark name).
const PARITY: &[(&str, &str, &str)] = &[
    ("replicate", "List", "replicate"),
    ("is_empty", "List", "is empty"),
    ("append", "List", "append two lists"),
    ("double", "List", "duplicate each element"),
    ("drop", "List", "drop first n elements"),
    ("take", "List", "take first n elements"),
    ("length", "List", "length using fold"),
    ("elem", "List", "is member"),
    ("delete", "List", "delete value"),
    ("reverse", "List", "reverse"),
    ("insert_at_end", "List", "insert at end"),
    ("insert_sorted", "Sorting", "insert (sorted)"),
    ("tree_count", "Tree", "node count"),
    ("tree_member", "Tree", "is member"),
    ("heap_singleton", "Binary Heap", "1-element constructor"),
    ("bst_member", "BST", "is member"),
    ("bst_insert", "BST", "insert"),
];

fn programmatic_goal(group: &str, name: &str) -> Goal {
    let bench = table1()
        .into_iter()
        .find(|b| b.group == group && b.name == name)
        .unwrap_or_else(|| panic!("unknown Table 1 row {group}/{name}"));
    (bench
        .goal
        .unwrap_or_else(|| panic!("{group}/{name} is not transcribed")))()
}

fn assert_goal_parity(stem: &str, parsed: &Goal, built: &Goal) {
    assert_eq!(parsed.name, built.name, "{stem}: goal name differs");
    assert_eq!(
        parsed.schema, built.schema,
        "{stem}: goal schema differs\n  parsed: {}\n  built:  {}",
        parsed.schema, built.schema
    );
    let parsed_env = format!("{:#?}", parsed.env);
    let built_env = format!("{:#?}", built.env);
    if parsed_env != built_env {
        // Point at the first differing line to keep failures readable.
        let diff = parsed_env
            .lines()
            .zip(built_env.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        panic!(
            "{stem}: environment differs from the programmatic builder\nfirst differing line: {:?}",
            diff
        );
    }
}

#[test]
fn corpus_goals_match_their_programmatic_builders() {
    assert!(
        PARITY.len() >= 5,
        "the parity table must cover at least five Table 1 goals"
    );
    for (stem, group, name) in PARITY {
        let out = load_corpus_file(stem)
            .unwrap_or_else(|e| panic!("specs/{stem}.sq failed to load:\n{e}"));
        let built = programmatic_goal(group, name);
        let parsed = out
            .goals
            .iter()
            .find(|g| g.name == built.name)
            .unwrap_or_else(|| panic!("specs/{stem}.sq declares no goal named {}", built.name));
        assert_goal_parity(stem, parsed, &built);
    }
}

#[test]
fn parity_covers_list_sorting_tree_and_heap_groups() {
    let groups: std::collections::BTreeSet<&str> = PARITY.iter().map(|(_, g, _)| *g).collect();
    for required in ["List", "Sorting", "Tree", "Binary Heap"] {
        assert!(
            groups.contains(required),
            "no parity coverage for {required}"
        );
    }
}

#[test]
fn showcase_file_reuses_the_same_component_library() {
    // specs/list.sq is the CLI demo: two goals over one shared library.
    let out = load_corpus_file("list").expect("specs/list.sq loads");
    assert_eq!(out.goals.len(), 2);
    let names: Vec<&str> = out.goals.iter().map(|g| g.name.as_str()).collect();
    assert_eq!(names, ["is_empty", "length"]);
    for goal in &out.goals {
        assert!(goal.env.datatype("List").is_some());
        assert!(goal.env.lookup("zero").is_some());
    }
}
