//! The shared solver context: what a batch of synthesis runs has in
//! common.
//!
//! The single-goal [`Synthesizer`](crate::Synthesizer) historically
//! constructed its own SMT backend per run, which made every validity
//! check start cold. [`SolverContext`] is the seam the parallel engine
//! (and any future server frontend) plugs into instead: it carries the
//! [`SharedValidityCache`] that all workers populate together and the
//! [`CancellationToken`] that lets a portfolio winner stop its siblings.
//! Constructing a context is cheap; cloning one shares the underlying
//! cache and token.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use synquid_solver::{SharedValidityCache, Smt};

/// A cooperative cancellation flag shared between the thread driving a
/// synthesis run and whoever may want to stop it early (the portfolio
/// scheduler cancels losing rungs; a frontend may cancel on user
/// interrupt). Cancellation is observed at the synthesizer's deadline
/// checks and surfaces as a timeout.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    cancelled: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancellationToken {
        CancellationToken::default()
    }

    /// Requests cancellation; all clones of the token observe it.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](CancellationToken::cancel) has been called on
    /// any clone.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// Shared state for a family of synthesis runs: the validity cache all
/// their SMT instances feed, and the cancellation token they observe.
#[derive(Debug, Clone, Default)]
pub struct SolverContext {
    /// The cross-run validity cache; `None` runs every backend cold
    /// (the pre-engine behaviour).
    pub cache: Option<SharedValidityCache>,
    /// Cooperative cancellation observed by deadline checks.
    pub cancel: CancellationToken,
}

impl SolverContext {
    /// A context with no cache and a fresh token — equivalent to the
    /// standalone behaviour of [`Synthesizer::new`](crate::Synthesizer::new).
    pub fn new() -> SolverContext {
        SolverContext::default()
    }

    /// A context whose runs share the given validity cache.
    pub fn with_cache(cache: SharedValidityCache) -> SolverContext {
        SolverContext {
            cache: Some(cache),
            cancel: CancellationToken::new(),
        }
    }

    /// Derives a context that shares this one's cache but has its own
    /// cancellation token (one portfolio rung each, for example).
    pub fn child(&self) -> SolverContext {
        SolverContext {
            cache: self.cache.clone(),
            cancel: CancellationToken::new(),
        }
    }

    /// Builds an SMT backend wired to the shared cache (if any).
    pub fn make_smt(&self) -> Smt {
        match &self.cache {
            Some(cache) => Smt::with_cache(cache.clone()),
            None => Smt::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancellation_is_visible_through_clones() {
        let token = CancellationToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn child_contexts_share_the_cache_but_not_the_token() {
        let ctx = SolverContext::with_cache(SharedValidityCache::new());
        let child = ctx.child();
        assert!(child.cache.is_some());
        child.cancel.cancel();
        assert!(!ctx.cancel.is_cancelled());
    }

    #[test]
    fn make_smt_attaches_the_cache() {
        let ctx = SolverContext::with_cache(SharedValidityCache::new());
        assert!(ctx.make_smt().shared_cache().is_some());
        assert!(SolverContext::new().make_smt().shared_cache().is_none());
    }
}
