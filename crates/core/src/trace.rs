//! Deprecated ad-hoc tracing shim, kept for source compatibility.
//!
//! The original `trace!` macro wrote `[synquid] …` lines to stderr when
//! `SYNQUID_TRACE=1` was set. Structured tracing now lives in
//! [`synquid_telemetry::events`]: call sites emit typed events
//! (candidate accept/reject, cache hit/miss, …) and the sink renders
//! them as JSON Lines (`--trace-out` / `SYNQUID_TRACE_OUT`) or — when
//! only `SYNQUID_TRACE=1` is set — as the same human-readable stderr
//! lines as before. This module forwards to the sink so existing
//! `trace!` users keep working, but new code should emit typed events
//! directly.

/// True if any event sink is configured (`SYNQUID_TRACE=1`,
/// `SYNQUID_TRACE_OUT`, or an explicit `--trace-out`).
#[deprecated(note = "use synquid_telemetry::events::events_enabled")]
pub fn enabled() -> bool {
    synquid_telemetry::events::events_enabled()
}

/// Forwards a formatted line to the event sink as a `message` event.
/// The closure only runs when a sink is configured.
#[doc(hidden)]
pub fn emit_message(text: impl FnOnce() -> String) {
    synquid_telemetry::events::emit(|| {
        synquid_telemetry::events::Event::new("message").str("text", text())
    });
}

/// Emits an untyped trace line through the structured event sink.
#[deprecated(note = "emit a typed synquid_telemetry::events::Event instead of a formatted message")]
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        $crate::trace::emit_message(|| format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    #[test]
    #[allow(deprecated)]
    fn enabled_is_stable_across_calls() {
        let first = super::enabled();
        assert_eq!(first, super::enabled());
    }
}
