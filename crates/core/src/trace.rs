//! Lightweight synthesis tracing, enabled with `SYNQUID_TRACE=1`.
//!
//! The synthesizer explores a large search space; when a goal unexpectedly
//! fails or takes too long, the trace shows which candidates were
//! enumerated, why they were rejected, and where the time went. Tracing is
//! off by default and costs a single atomic load per call site when
//! disabled.

use std::sync::atomic::{AtomicU8, Ordering};

static ENABLED: AtomicU8 = AtomicU8::new(2); // 2 = not yet read from env

/// True if `SYNQUID_TRACE` is set to a non-empty, non-"0" value.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let on = std::env::var("SYNQUID_TRACE")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            ENABLED.store(u8::from(on), Ordering::Relaxed);
            on
        }
    }
}

/// Emits a trace line (to stderr) when tracing is enabled.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if $crate::trace::enabled() {
            eprintln!("[synquid] {}", format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_is_stable_across_calls() {
        let first = super::enabled();
        assert_eq!(first, super::enabled());
    }
}
