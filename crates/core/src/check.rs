//! Round-trip type *checking* of complete programs (Fig. 4 of the paper).
//!
//! The synthesizer in [`crate::synthesis`] interleaves these rules with
//! enumeration; this module exposes them as a standalone checker so that
//!
//! * users can verify a hand-written (or previously synthesized) program
//!   against a refinement type without running synthesis, and
//! * the test suite can independently validate every program the
//!   synthesizer returns.
//!
//! The checker follows the round-trip discipline: I-terms (abstractions,
//! fixpoints, conditionals, matches) are handled by *checking* rules that
//! decompose the goal type, while E-terms (variables and applications) are
//! handled by *strengthening* rules that check each sub-term against an
//! over-approximate goal and propagate the precise type back up.

use crate::ast::{Case, Program};
use crate::synthesis::Goal;
use synquid_horn::FixpointConfig;
use synquid_logic::{Sort, Substitution, Term};
use synquid_solver::Smt;
use synquid_telemetry::events::{self, Event};
use synquid_types::{
    weaken_for_recursion, BaseType, ConstraintSolver, Environment, RType, Schema, TypeError,
};

/// A standalone round-trip type checker.
#[derive(Debug)]
pub struct TypeChecker {
    /// The SMT backend shared across all checks.
    pub smt: Smt,
    fresh_counter: usize,
    /// Derivation-node ids for the checking judgment, mirroring the
    /// synthesizer's scheme: preorder allocation over the `check` call
    /// tree, reset per top-level check, `current_node` = frame on the
    /// stack (0 = root's parent sentinel). Ids land on the `check_step` /
    /// `check_step_finish` trace events.
    node_counter: u64,
    current_node: u64,
}

impl Default for TypeChecker {
    fn default() -> Self {
        TypeChecker::new()
    }
}

impl TypeChecker {
    /// Creates a checker with default budgets.
    pub fn new() -> TypeChecker {
        TypeChecker {
            smt: Smt::new(),
            fresh_counter: 0,
            node_counter: 0,
            current_node: 0,
        }
    }

    /// Creates a checker whose SMT backend is wired into a shared solver
    /// context, so re-validation of synthesized programs reuses the
    /// validity verdicts the synthesis runs already paid for.
    pub fn with_context(context: &crate::context::SolverContext) -> TypeChecker {
        TypeChecker {
            smt: context.make_smt(),
            fresh_counter: 0,
            node_counter: 0,
            current_node: 0,
        }
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        let n = self.fresh_counter;
        self.fresh_counter += 1;
        format!("__chk_{prefix}{n}")
    }

    /// Checks a complete program against a synthesis goal (the goal's
    /// environment provides the components and datatypes the program may
    /// reference).
    ///
    /// # Errors
    ///
    /// Returns the first [`TypeError`] encountered; the error message names
    /// the sub-term and the constraint that failed.
    pub fn check_goal(&mut self, goal: &Goal, program: &Program) -> Result<(), TypeError> {
        self.node_counter = 0;
        self.current_node = 0;
        if !program.is_complete() {
            return Err(TypeError::new("program contains holes"));
        }
        let mut env = goal.env.clone();
        env.add_qualifiers_from_type(&goal.schema.ty);
        let mut solver = ConstraintSolver::new(FixpointConfig::default());

        // A fixpoint at the top level introduces the recursive binding with
        // a termination-weakened type (rule FIX); the goal's own argument
        // names provide the "smaller than" reference points.
        let body = match program {
            Program::Fix(name, body) => {
                let (args, _) = goal.schema.ty.uncurry();
                let arg_names: Vec<String> = args.iter().map(|(n, _)| n.clone()).collect();
                let weakened =
                    weaken_for_recursion(&env, &goal.schema, &arg_names).ok_or_else(|| {
                        TypeError::new(format!(
                            "recursive program {name} has no argument with a termination metric"
                        ))
                    })?;
                env.add_var(name.clone(), weakened);
                body.as_ref()
            }
            other => other,
        };
        self.check(&env, &mut solver, body, &goal.schema.ty)
    }

    /// Checks a program against an environment and plain type (rule set of
    /// Fig. 4 without the top-level FIX handling of [`Self::check_goal`]).
    pub fn check_program(
        &mut self,
        env: &Environment,
        program: &Program,
        ty: &RType,
    ) -> Result<(), TypeError> {
        self.node_counter = 0;
        self.current_node = 0;
        let mut solver = ConstraintSolver::new(FixpointConfig::default());
        self.check(env, &mut solver, program, ty)
    }

    // -----------------------------------------------------------------
    // Checking judgment  Γ ⊢ t ↓ T
    // -----------------------------------------------------------------

    /// One derivation node per checking-judgment frame: allocates the node
    /// id, brackets the frame with `check_step` / `check_step_finish`
    /// events, and dispatches to [`TypeChecker::check_node`].
    fn check(
        &mut self,
        env: &Environment,
        solver: &mut ConstraintSolver,
        program: &Program,
        goal: &RType,
    ) -> Result<(), TypeError> {
        let parent = self.current_node;
        self.node_counter += 1;
        let node = self.node_counter;
        self.current_node = node;
        events::emit(|| {
            Event::new("check_step")
                .uint("node", node)
                .uint("parent", parent)
                .str("rule", check_rule(program))
                .str("term", program.to_string())
                .str("ty", goal.to_string())
        });
        let result = self.check_node(env, solver, program, goal);
        events::emit(|| {
            Event::new("check_step_finish")
                .uint("node", node)
                .str("status", if result.is_ok() { "ok" } else { "error" })
        });
        self.current_node = parent;
        result
    }

    fn check_node(
        &mut self,
        env: &Environment,
        solver: &mut ConstraintSolver,
        program: &Program,
        goal: &RType,
    ) -> Result<(), TypeError> {
        match program {
            // Rule ABS: λy.t against x:Tx → T checks t against [y/x]T with
            // y:Tx in scope.
            Program::Abs(y, body) => {
                let resolved = solver.resolve(goal);
                let RType::Function { arg_name, arg, ret } = resolved else {
                    return Err(TypeError::new(format!(
                        "abstraction \\{y} checked against non-function type {goal}"
                    )));
                };
                let mut inner = env.clone();
                inner.add_var(y.clone(), (*arg).clone());
                let renamed = if arg.is_scalar() {
                    ret.substitute_var(&arg_name, &Term::var(y.clone(), arg.sort()))
                } else {
                    (*ret).clone()
                };
                self.check(&inner, solver, body, &renamed)
            }
            // Rule FIX (nested fixpoints): bind the recursive name with a
            // termination-weakened type.
            Program::Fix(name, body) => {
                let schema = Schema::monotype(goal.clone());
                let (args, _) = goal.uncurry();
                let arg_names: Vec<String> = args.iter().map(|(n, _)| n.clone()).collect();
                let mut inner = env.clone();
                match weaken_for_recursion(env, &schema, &arg_names) {
                    Some(weakened) => inner.add_var(name.clone(), weakened),
                    None => {
                        return Err(TypeError::new(format!(
                            "fixpoint {name} has no argument with a termination metric"
                        )))
                    }
                }
                self.check(&inner, solver, body, goal)
            }
            // Rule IF: infer the guard's strengthened type, then check the
            // branches under the corresponding path conditions.
            Program::If(cond, then_branch, else_branch) => {
                let (cond_env, cond_ty) = self.infer(env, solver, cond, &RType::bool())?;
                let psi = cond_ty.refinement();
                let then_fact = psi.substitute_value(&Term::tt());
                let else_fact = psi.substitute_value(&Term::ff());
                let mut then_env = cond_env.clone();
                then_env.add_path_condition(then_fact);
                self.check(&then_env, solver, then_branch, goal)?;
                let mut else_env = cond_env;
                else_env.add_path_condition(else_fact);
                self.check(&else_env, solver, else_branch, goal)
            }
            // Rule MATCH: infer the scrutinee, bind each constructor's
            // arguments, add the constructor refinement as a path fact.
            Program::Match(scrutinee, cases) => {
                self.check_match(env, solver, scrutinee, cases, goal)
            }
            // Rule IE: an E-term is checked by the strengthening judgment.
            eterm => {
                let _ = self.infer(env, solver, eterm, goal)?;
                Ok(())
            }
        }
    }

    fn check_match(
        &mut self,
        env: &Environment,
        solver: &mut ConstraintSolver,
        scrutinee: &Program,
        cases: &[Case],
        goal: &RType,
    ) -> Result<(), TypeError> {
        // Infer the scrutinee against top (its shape is not known from the
        // goal); we then need a program variable standing for it so that
        // constructor refinements can be stated about it.
        let (scrut_env, scrut_ty) = self.infer(env, solver, scrutinee, &RType::Any)?;
        let resolved = solver.resolve(&scrut_ty);
        let Some(BaseType::Data(dt_name, targs)) = resolved.base_type().cloned() else {
            return Err(TypeError::new(format!(
                "match scrutinee {scrutinee} has non-datatype type {resolved}"
            )));
        };
        let datatype = env
            .datatype(&dt_name)
            .cloned()
            .ok_or_else(|| TypeError::new(format!("unknown datatype {dt_name}")))?;
        let scrut_sort = Sort::Data(dt_name.clone(), targs.iter().map(|t| t.sort()).collect());
        let (mut match_env, scrut_var) = match scrutinee {
            Program::Var(name) => (scrut_env.clone(), name.clone()),
            _ => {
                let name = self.fresh_name("scrut");
                let mut e = scrut_env.clone();
                e.add_var(name.clone(), resolved.clone());
                (e, name)
            }
        };
        match_env.add_path_condition(resolved.refinement_for(&scrut_var));

        // Every constructor must be covered exactly once.
        for ctor in &datatype.constructors {
            if !cases.iter().any(|c| c.constructor == ctor.name) {
                return Err(TypeError::new(format!(
                    "match on {scrut_var} does not cover constructor {}",
                    ctor.name
                )));
            }
        }
        for case in cases {
            let ctor = datatype.constructor(&case.constructor).ok_or_else(|| {
                TypeError::new(format!(
                    "{} is not a constructor of {dt_name}",
                    case.constructor
                ))
            })?;
            let con_ty = ctor.schema.instantiate(&targs);
            let (cargs, cret) = con_ty.uncurry();
            if cargs.len() != case.binders.len() {
                return Err(TypeError::new(format!(
                    "constructor {} expects {} arguments, the match binds {}",
                    case.constructor,
                    cargs.len(),
                    case.binders.len()
                )));
            }
            let mut case_env = match_env.clone();
            let mut rename = Substitution::new();
            for ((formal, ty), binder) in cargs.iter().zip(&case.binders) {
                let bound_ty = ty.substitute(&rename);
                rename.insert(formal.clone(), Term::var(binder.clone(), bound_ty.sort()));
                case_env.add_var(binder.clone(), bound_ty);
            }
            let fact = cret
                .refinement()
                .substitute(&rename)
                .substitute_value(&Term::var(scrut_var.clone(), scrut_sort.clone()));
            case_env.add_path_condition(fact);
            self.check(&case_env, solver, &case.body, goal)?;
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Strengthening judgment  Γ ⊢ e ↓ T ↑ T'
    // -----------------------------------------------------------------

    /// Infers the strengthened type of an E-term while checking it against
    /// the goal. Returns the environment extended with bindings for the
    /// intermediate results of applications (the contextual part of the
    /// paper's `let C in T'`) together with the strengthened type.
    fn infer(
        &mut self,
        env: &Environment,
        solver: &mut ConstraintSolver,
        eterm: &Program,
        goal: &RType,
    ) -> Result<(Environment, RType), TypeError> {
        match eterm {
            Program::IntLit(n) => {
                let ty =
                    RType::refined(BaseType::Int, Term::value_var(Sort::Int).eq(Term::int(*n)));
                solver.subtype(env, &ty, goal, &mut self.smt, &format!("literal {n}"))?;
                Ok((env.clone(), ty))
            }
            Program::BoolLit(b) => {
                let ty = RType::refined(
                    BaseType::Bool,
                    Term::value_var(Sort::Bool).iff(Term::BoolLit(*b)),
                );
                solver.subtype(env, &ty, goal, &mut self.smt, &format!("literal {b}"))?;
                Ok((env.clone(), ty))
            }
            // Rules VARSC / VAR∀.
            Program::Var(name) => {
                let schema = env
                    .lookup(name)
                    .cloned()
                    .ok_or_else(|| TypeError::new(format!("unbound variable {name}")))?;
                let instantiated = solver.instantiate_schema(&schema);
                let strengthened = if instantiated.is_scalar() {
                    env.singleton_type(name, &instantiated)
                } else {
                    instantiated
                };
                solver.subtype(env, &strengthened, goal, &mut self.smt, name)?;
                Ok((env.clone(), strengthened))
            }
            // Rules APPFO / APPHO: check the head against an
            // over-approximate function goal, then the arguments, then the
            // instantiated result against the goal.
            Program::App(_, _) => self.infer_application(env, solver, eterm, goal),
            Program::Abs(_, _) | Program::Fix(_, _) => Err(TypeError::new(format!(
                "function term {eterm} used where an E-term is required"
            ))),
            other => Err(TypeError::new(format!(
                "{other} is not an E-term (branching terms cannot appear inside applications)"
            ))),
        }
    }

    fn infer_application(
        &mut self,
        env: &Environment,
        solver: &mut ConstraintSolver,
        eterm: &Program,
        goal: &RType,
    ) -> Result<(Environment, RType), TypeError> {
        // Flatten the application spine: head and argument list.
        let mut args = Vec::new();
        let mut head = eterm;
        while let Program::App(f, a) = head {
            args.push(a.as_ref());
            head = f.as_ref();
        }
        args.reverse();
        let Program::Var(head_name) = head else {
            return Err(TypeError::new(format!(
                "application head {head} must be a variable (β-normal form)"
            )));
        };
        let schema = env
            .lookup(head_name)
            .cloned()
            .ok_or_else(|| TypeError::new(format!("unbound function {head_name}")))?;
        let head_ty = solver.instantiate_schema(&schema);
        let (fargs, fret) = head_ty.uncurry();
        if args.len() > fargs.len() {
            return Err(TypeError::new(format!(
                "{head_name} applied to {} arguments but takes {}",
                args.len(),
                fargs.len()
            )));
        }

        let mut app_env = env.clone();
        let mut subst = Substitution::new();
        for ((formal, formal_ty), actual) in fargs.iter().zip(&args) {
            let expected = solver.resolve(&formal_ty.substitute(&subst));
            if expected.is_function() {
                // Higher-order argument (rule APPHO): the result type cannot
                // depend on it, so it is checked against the expected type.
                self.check(&app_env, solver, actual, &expected)?;
                continue;
            }
            let (arg_env, arg_ty) = self.infer(&app_env, solver, actual, &expected)?;
            let binder = self.fresh_name("a");
            app_env = arg_env;
            app_env.add_var(binder.clone(), arg_ty.clone());
            subst.insert(formal.clone(), Term::var(binder, arg_ty.sort()));
        }

        // Partial application: the remaining arguments stay abstracted.
        let remaining: Vec<(String, RType)> = fargs.iter().skip(args.len()).cloned().collect();
        let result = RType::fun_n(remaining, fret).substitute(&subst);
        if result.is_scalar() || matches!(goal, RType::Any | RType::Bot) || goal.is_function() {
            solver.subtype(
                &app_env,
                &result,
                goal,
                &mut self.smt,
                &format!("{head_name}(..)"),
            )?;
        }
        Ok((app_env, result))
    }
}

/// The Fig. 4 rule a checking-judgment frame dispatches to, for the
/// `check_step` trace event.
fn check_rule(program: &Program) -> &'static str {
    match program {
        Program::Abs(_, _) => "ABS",
        Program::Fix(_, _) => "FIX",
        Program::If(_, _, _) => "IF",
        Program::Match(_, _) => "MATCH",
        _ => "IE",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::Goal;
    use synquid_logic::Qualifier;
    use synquid_types::list_datatype;

    fn int_env() -> Environment {
        let mut env = Environment::new();
        env.add_qualifiers(Qualifier::standard(Sort::Int));
        env.add_var(
            "zero",
            RType::refined(BaseType::Int, Term::value_var(Sort::Int).eq(Term::int(0))),
        );
        env.add_var(
            "inc",
            RType::fun(
                "x",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("x", Sort::Int).plus(Term::int(1))),
                ),
            ),
        );
        env.add_var(
            "dec",
            RType::fun(
                "x",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("x", Sort::Int).minus(Term::int(1))),
                ),
            ),
        );
        env.add_var(
            "leq",
            RType::fun_n(
                vec![("x".into(), RType::int()), ("y".into(), RType::int())],
                RType::refined(
                    BaseType::Bool,
                    Term::value_var(Sort::Bool)
                        .iff(Term::var("x", Sort::Int).le(Term::var("y", Sort::Int))),
                ),
            ),
        );
        env
    }

    fn id_goal() -> Goal {
        Goal::new(
            "id",
            int_env(),
            Schema::monotype(RType::fun(
                "n",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int)),
                ),
            )),
        )
    }

    #[test]
    fn identity_checks_against_its_type() {
        let mut checker = TypeChecker::new();
        let program = Program::lambda("n", Program::var("n"));
        assert!(checker.check_goal(&id_goal(), &program).is_ok());
    }

    #[test]
    fn wrong_body_is_rejected() {
        let mut checker = TypeChecker::new();
        let program = Program::lambda("n", Program::var("zero"));
        let err = checker.check_goal(&id_goal(), &program).unwrap_err();
        assert!(err.message.contains("zero"));
    }

    #[test]
    fn literals_check_against_exact_types() {
        let mut checker = TypeChecker::new();
        let env = int_env();
        let ty = RType::refined(BaseType::Int, Term::value_var(Sort::Int).eq(Term::int(3)));
        assert!(checker
            .check_program(&env, &Program::IntLit(3), &ty)
            .is_ok());
        assert!(checker
            .check_program(&env, &Program::IntLit(4), &ty)
            .is_err());
        let bty = RType::refined(BaseType::Bool, Term::value_var(Sort::Bool).iff(Term::tt()));
        assert!(checker
            .check_program(&env, &Program::BoolLit(true), &bty)
            .is_ok());
        assert!(checker
            .check_program(&env, &Program::BoolLit(false), &bty)
            .is_err());
    }

    #[test]
    fn application_strengthens_through_components() {
        // inc (inc n) : {Int | ν = n + 2}
        let mut checker = TypeChecker::new();
        let env = {
            let mut e = int_env();
            e.add_var("n", RType::int());
            e
        };
        let two_more = RType::refined(
            BaseType::Int,
            Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int).plus(Term::int(2))),
        );
        let good = Program::apply("inc", vec![Program::apply("inc", vec![Program::var("n")])]);
        assert!(checker.check_program(&env, &good, &two_more).is_ok());
        let bad = Program::apply("inc", vec![Program::var("n")]);
        assert!(checker.check_program(&env, &bad, &two_more).is_err());
    }

    #[test]
    fn conditional_uses_guard_refinement_as_path_condition() {
        // if leq n zero then zero else n  :  {Int | ν >= 0}
        let mut checker = TypeChecker::new();
        let env = {
            let mut e = int_env();
            e.add_var("n", RType::int());
            e
        };
        let program = Program::ite(
            Program::apply("leq", vec![Program::var("n"), Program::var("zero")]),
            Program::var("zero"),
            Program::var("n"),
        );
        assert!(checker.check_program(&env, &program, &RType::nat()).is_ok());
        // Swapping the branches breaks the check: in the "then" branch only
        // n ≤ 0 is known, so returning n does not give ν ≥ 0.
        let swapped = Program::ite(
            Program::apply("leq", vec![Program::var("n"), Program::var("zero")]),
            Program::var("n"),
            Program::var("zero"),
        );
        assert!(checker
            .check_program(&env, &swapped, &RType::nat())
            .is_err());
    }

    #[test]
    fn fig1_replicate_type_checks() {
        // The program of Fig. 1, checked against its refinement type.
        let mut env = int_env();
        env.add_datatype(list_datatype());
        let list_sort = Sort::data("List", vec![Sort::var("a")]);
        let len_v = Term::app("len", vec![Term::value_var(list_sort)], Sort::Int);
        let goal_ty = RType::fun_n(
            vec![("n".into(), RType::nat()), ("x".into(), RType::tyvar("a"))],
            RType::refined(
                BaseType::Data("List".into(), vec![RType::tyvar("a")]),
                len_v.eq(Term::var("n", Sort::Int)),
            ),
        );
        let goal = Goal::new("replicate", env, Schema::forall(vec!["a".into()], goal_ty));
        let body = Program::ite(
            Program::apply("leq", vec![Program::var("n"), Program::var("zero")]),
            Program::var("Nil"),
            Program::apply(
                "Cons",
                vec![
                    Program::var("x"),
                    Program::apply(
                        "replicate",
                        vec![
                            Program::apply("dec", vec![Program::var("n")]),
                            Program::var("x"),
                        ],
                    ),
                ],
            ),
        );
        let program = Program::Fix(
            "replicate".into(),
            Box::new(Program::lambda("n", Program::lambda("x", body))),
        );
        let mut checker = TypeChecker::new();
        checker
            .check_goal(&goal, &program)
            .expect("Fig. 1 replicate should type-check");

        // A non-terminating variant (recursing on n instead of dec n) is
        // rejected by the termination-weakened recursive signature.
        let bad_body = Program::ite(
            Program::apply("leq", vec![Program::var("n"), Program::var("zero")]),
            Program::var("Nil"),
            Program::apply(
                "Cons",
                vec![
                    Program::var("x"),
                    Program::apply("replicate", vec![Program::var("n"), Program::var("x")]),
                ],
            ),
        );
        let bad = Program::Fix(
            "replicate".into(),
            Box::new(Program::lambda("n", Program::lambda("x", bad_body))),
        );
        let mut checker = TypeChecker::new();
        assert!(checker.check_goal(&goal, &bad).is_err());
    }

    #[test]
    fn match_checks_each_case_under_its_constructor_fact() {
        // is_empty as a match: Nil -> true | Cons h t -> false.
        let mut env = Environment::new();
        env.add_qualifiers(Qualifier::standard(Sort::Int));
        env.add_datatype(list_datatype());
        let list_sort = Sort::data("List", vec![Sort::var("a")]);
        env.add_var(
            "xs",
            RType::base(BaseType::Data("List".into(), vec![RType::tyvar("a")])),
        );
        let goal_ty = RType::refined(
            BaseType::Bool,
            Term::value_var(Sort::Bool).iff(
                Term::app("len", vec![Term::var("xs", list_sort)], Sort::Int).eq(Term::int(0)),
            ),
        );
        let program = Program::Match(
            Box::new(Program::var("xs")),
            vec![
                Case {
                    constructor: "Nil".into(),
                    binders: vec![],
                    body: Program::BoolLit(true),
                },
                Case {
                    constructor: "Cons".into(),
                    binders: vec!["h".into(), "t".into()],
                    body: Program::BoolLit(false),
                },
            ],
        );
        let mut checker = TypeChecker::new();
        assert!(checker.check_program(&env, &program, &goal_ty).is_ok());

        // Swapping the case bodies is a type error.
        let wrong = Program::Match(
            Box::new(Program::var("xs")),
            vec![
                Case {
                    constructor: "Nil".into(),
                    binders: vec![],
                    body: Program::BoolLit(false),
                },
                Case {
                    constructor: "Cons".into(),
                    binders: vec!["h".into(), "t".into()],
                    body: Program::BoolLit(true),
                },
            ],
        );
        let mut checker = TypeChecker::new();
        assert!(checker.check_program(&env, &wrong, &goal_ty).is_err());
    }

    #[test]
    fn missing_match_case_is_reported() {
        let mut env = Environment::new();
        env.add_datatype(list_datatype());
        env.add_var(
            "xs",
            RType::base(BaseType::Data("List".into(), vec![RType::tyvar("a")])),
        );
        let program = Program::Match(
            Box::new(Program::var("xs")),
            vec![Case {
                constructor: "Nil".into(),
                binders: vec![],
                body: Program::BoolLit(true),
            }],
        );
        let mut checker = TypeChecker::new();
        let err = checker
            .check_program(&env, &program, &RType::bool())
            .unwrap_err();
        assert!(err.message.contains("Cons"));
    }

    #[test]
    fn holes_are_rejected_up_front() {
        let mut checker = TypeChecker::new();
        let goal = id_goal();
        let program = Program::lambda("n", Program::Hole);
        let err = checker.check_goal(&goal, &program).unwrap_err();
        assert!(err.message.contains("hole"));
    }

    #[test]
    fn unbound_names_are_reported() {
        let mut checker = TypeChecker::new();
        let env = int_env();
        let err = checker
            .check_program(&env, &Program::var("nope"), &RType::int())
            .unwrap_err();
        assert!(err.message.contains("nope"));
    }
}
