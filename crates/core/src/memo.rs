//! Memoized E-term enumeration (the §4 performance machinery).
//!
//! Enumeration is split into two stages:
//!
//! 1. **goal-blind generation** — all well-shaped, argument-valid E-terms
//!    of a given base-type *shape* in a given environment, up to an
//!    application depth. Generation validates arguments against the
//!    head's declared types (so termination and precondition obligations
//!    are enforced), but never looks at the goal refinement, which makes
//!    its result a pure function of `(environment, shape, depth)`;
//! 2. **per-goal checking** — each generated candidate is checked against
//!    the current goal type under the current liquid-abduction unknown
//!    (see [`crate::synthesis`]).
//!
//! Stage 1 is what this module memoizes: an [`EnumerationCache`] maps
//! `(environment fingerprint, shape key, depth)` to the candidate set, so
//! the set is built once and reused across the synthesizer's deepening
//! iterations, abduction rounds, guard syntheses — and, when the cache is
//! shared through a [`SolverContext`](crate::SolverContext), across the
//! portfolio rungs and worker threads of a whole batch. Sharing is safe
//! because entries are deterministic functions of their key: a cache hit
//! changes *when* a candidate set is computed, never *what* it contains.

use crate::ast::Program;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use synquid_logic::Term;
use synquid_types::{BaseType, RType};

/// One memoized enumeration result: a well-shaped candidate program
/// together with everything the per-goal check needs to replay it under a
/// fresh constraint solver.
#[derive(Debug, Clone)]
pub struct ShapedCandidate {
    /// The candidate program (may contain [`Program::Hole`] at deferred
    /// higher-order argument positions).
    pub program: Program,
    /// `program.size()`, precomputed for candidate ordering.
    pub size: usize,
    /// The candidate's strengthened (finalized) type. Free unification
    /// type variables are local to the producing enumeration and must be
    /// renamed on consumption (see `ConstraintSolver::import_type`).
    pub ty: RType,
    /// Bindings for intermediate results (application-valued arguments),
    /// in binding order; `ty`'s refinement may mention them. Binder names
    /// are derived deterministically from the candidate's position in the
    /// enumeration, so identical keys yield byte-identical entries
    /// whichever worker computes them first.
    pub extras: Vec<(String, RType)>,
    /// The argument-side condition abduced while validating arguments
    /// (e.g. `n >= 1` for `dec n` at type `Nat`); `true` when the
    /// arguments validate unconditionally. The per-goal check replays it
    /// against the goal's branch-condition unknown.
    pub condition: Term,
    /// Deferred higher-order arguments: `(argument index, function
    /// type)`, synthesized only after the candidate's return type has
    /// been unified with a concrete goal.
    pub pending: Vec<(usize, RType)>,
}

/// Counters of one [`EnumerationCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumerationCacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to run generation.
    pub misses: usize,
    /// Entries currently stored.
    pub entries: usize,
    /// Entries dropped by epoch GC or overflow sweeps (monotone).
    pub evicted: usize,
    /// GC epochs advanced since the cache was created.
    pub epoch: usize,
}

impl EnumerationCacheStats {
    /// Hit rate in `[0, 1]`; `0` when no lookups were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counters accumulated since an earlier snapshot of the same cache
    /// (see `ValidityCacheStats::since` in the solver crate). Gauges
    /// (`entries`, `epoch`) keep their end-of-run values.
    pub fn since(&self, earlier: &EnumerationCacheStats) -> EnumerationCacheStats {
        EnumerationCacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            entries: self.entries,
            evicted: self.evicted - earlier.evicted,
            epoch: self.epoch,
        }
    }
}

/// One stored generation result: the candidate set together with whether
/// it *grew* relative to the set one application-depth level below.
///
/// The growth bit is what lets the engine's budget ledger prove a deeper
/// portfolio rung redundant: generation at depth `d` extends the depth
/// `d − 1` set, so `grew == false` at every site a failed run touched at
/// its maximum depth means a rerun with a larger depth bound would
/// enumerate — and therefore check — exactly the same candidates.
#[derive(Debug, Clone)]
pub struct GenerationEntry {
    /// The memoized candidate set.
    pub set: Arc<Vec<ShapedCandidate>>,
    /// True if this set is strictly larger than the set at `depth − 1`
    /// (always true at depth 0: a deeper bound enables applications that
    /// depth 0 cannot contain).
    pub grew: bool,
}

/// One stored set stamped with the epoch that last used it (resident
/// sessions GC entries cold for two full epochs; see
/// [`EnumerationCache::advance_epoch`]).
#[derive(Debug)]
struct Stored {
    entry: GenerationEntry,
    epoch: u32,
}

#[derive(Debug, Default)]
struct EnumInner {
    map: HashMap<(String, String, usize), Stored>,
    epoch: u32,
    evicted: usize,
    /// Epoch of the last overflow sweep (see
    /// [`EnumerationCache::insert`]).
    swept_epoch: Option<u32>,
}

/// A concurrent memo table for goal-blind E-term generation, keyed by
/// `(environment fingerprint, shape key, depth)`. Cloning shares the
/// underlying table (like the solver's validity cache).
#[derive(Debug, Clone)]
pub struct EnumerationCache {
    inner: Arc<Mutex<EnumInner>>,
    hits: Arc<AtomicUsize>,
    misses: Arc<AtomicUsize>,
    max_entries: usize,
}

impl Default for EnumerationCache {
    fn default() -> EnumerationCache {
        EnumerationCache::with_max_entries(Self::MAX_ENTRIES)
    }
}

impl EnumerationCache {
    /// Creates an empty cache with the default size bound.
    pub fn new() -> EnumerationCache {
        EnumerationCache::default()
    }

    /// Creates an empty cache bounded to `max_entries` stored sets (at
    /// least 1).
    pub fn with_max_entries(max_entries: usize) -> EnumerationCache {
        EnumerationCache {
            inner: Arc::default(),
            hits: Arc::default(),
            misses: Arc::default(),
            max_entries: max_entries.max(1),
        }
    }

    /// Looks up a candidate set. A hit stamps the entry with the current
    /// epoch, keeping it alive across epoch GCs.
    pub fn lookup(&self, key: &(String, String, usize)) -> Option<GenerationEntry> {
        let found = {
            let mut inner = self.inner.lock().expect("enumeration cache poisoned");
            let epoch = inner.epoch;
            inner.map.get_mut(key).map(|stored| {
                stored.epoch = epoch;
                stored.entry.clone()
            })
        };
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Default bound on stored candidate sets. Environment fingerprints
    /// are multi-KB strings and every match arm / else-branch mints new
    /// keys, so without a bound a long batch accumulates memory without
    /// limit (the validity cache bounds itself the same way). Refusing
    /// further inserts keeps determinism — a skipped insert only means
    /// the set is regenerated (to the identical value) on the next
    /// request.
    pub const MAX_ENTRIES: usize = 4096;

    /// Stores a complete candidate set. Sets must only be inserted when
    /// generation ran to completion (a deadline abort mid-generation must
    /// not publish a truncated set). At the size bound, one sweep per
    /// epoch evicts entries not touched this epoch; if the table is
    /// still full the insert is dropped.
    pub fn insert(&self, key: (String, String, usize), value: GenerationEntry) {
        let mut inner = self.inner.lock().expect("enumeration cache poisoned");
        let epoch = inner.epoch;
        if inner.map.len() >= self.max_entries && !inner.map.contains_key(&key) {
            if inner.swept_epoch == Some(epoch) {
                return;
            }
            inner.swept_epoch = Some(epoch);
            let before = inner.map.len();
            inner.map.retain(|_, stored| stored.epoch >= epoch);
            inner.evicted += before - inner.map.len();
            if inner.map.len() >= self.max_entries {
                return;
            }
        }
        inner.map.insert(
            key,
            Stored {
                entry: value,
                epoch,
            },
        );
    }

    /// Closes one GC epoch: entries not touched for two full epochs are
    /// dropped. Called by resident sessions at batch-run boundaries;
    /// eviction is sound because entries are deterministic functions of
    /// their keys.
    pub fn advance_epoch(&self) {
        let mut inner = self.inner.lock().expect("enumeration cache poisoned");
        let epoch = inner.epoch;
        let before = inner.map.len();
        inner.map.retain(|_, stored| stored.epoch + 1 >= epoch);
        inner.evicted += before - inner.map.len();
        inner.swept_epoch = None;
        inner.epoch = epoch + 1;
    }

    /// Current counters.
    pub fn stats(&self) -> EnumerationCacheStats {
        let inner = self.inner.lock().expect("enumeration cache poisoned");
        EnumerationCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: inner.map.len(),
            evicted: inner.evicted,
            epoch: inner.epoch as usize,
        }
    }
}

/// The canonical shape key of a type: its base-type structure with all
/// refinements erased and free unification type variables normalized by
/// first occurrence (`%0`, `%1`, …), so shapes that differ only in the
/// producing solver's fresh-variable numbering share a cache entry.
pub fn shape_key(ty: &RType) -> String {
    let mut out = String::new();
    let mut seen: Vec<String> = Vec::new();
    write_shape(ty, &mut out, &mut seen);
    out
}

fn write_shape(ty: &RType, out: &mut String, seen: &mut Vec<String>) {
    match ty {
        RType::Scalar { base, .. } => write_base_shape(base, out, seen),
        RType::Function { arg, ret, .. } => {
            out.push('(');
            write_shape(arg, out, seen);
            out.push_str(")->");
            write_shape(ret, out, seen);
        }
        RType::Any => out.push_str("top"),
        RType::Bot => out.push_str("bot"),
    }
}

fn write_base_shape(base: &BaseType, out: &mut String, seen: &mut Vec<String>) {
    match base {
        BaseType::Bool => out.push_str("Bool"),
        BaseType::Int => out.push_str("Int"),
        BaseType::TypeVar(name) if synquid_types::is_free_type_var(name) => {
            let idx = match seen.iter().position(|s| s == name) {
                Some(i) => i,
                None => {
                    seen.push(name.clone());
                    seen.len() - 1
                }
            };
            out.push('%');
            out.push_str(&idx.to_string());
        }
        BaseType::TypeVar(name) => out.push_str(name),
        BaseType::Data(name, args) => {
            out.push_str(name);
            for a in args {
                out.push(' ');
                out.push('(');
                write_shape(a, out, seen);
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_keys_normalize_free_type_variables() {
        let a = RType::base(BaseType::Data(
            "List".into(),
            vec![RType::tyvar("'t0"), RType::tyvar("'t0")],
        ));
        let b = RType::base(BaseType::Data(
            "List".into(),
            vec![RType::tyvar("'t7"), RType::tyvar("'t7")],
        ));
        assert_eq!(shape_key(&a), shape_key(&b));
        let c = RType::base(BaseType::Data(
            "List".into(),
            vec![RType::tyvar("'t0"), RType::tyvar("'t1")],
        ));
        assert_ne!(shape_key(&a), shape_key(&c));
        // Rigid variables keep their names.
        assert_ne!(shape_key(&RType::tyvar("a")), shape_key(&RType::tyvar("b")));
    }

    #[test]
    fn shape_keys_erase_refinements() {
        use synquid_logic::Sort;
        let refined = RType::refined(BaseType::Int, Term::value_var(Sort::Int).ge(Term::int(0)));
        assert_eq!(shape_key(&refined), shape_key(&RType::int()));
        assert_ne!(shape_key(&RType::int()), shape_key(&RType::bool()));
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = EnumerationCache::new();
        let key = ("env".to_string(), "Int".to_string(), 1);
        assert!(cache.lookup(&key).is_none());
        cache.insert(
            key.clone(),
            GenerationEntry {
                set: Arc::new(Vec::new()),
                grew: false,
            },
        );
        assert!(cache.lookup(&key).is_some());
        let clone = cache.clone();
        assert!(clone.lookup(&key).is_some(), "clones share the table");
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    fn entry() -> GenerationEntry {
        GenerationEntry {
            set: Arc::new(Vec::new()),
            grew: false,
        }
    }

    #[test]
    fn epoch_gc_drops_two_cold_entries() {
        let cache = EnumerationCache::new();
        let hot = ("env".to_string(), "Int".to_string(), 0);
        let cold = ("env".to_string(), "Bool".to_string(), 0);
        cache.insert(hot.clone(), entry());
        cache.insert(cold.clone(), entry());
        cache.advance_epoch();
        cache.lookup(&hot); // touched in epoch 1
        cache.advance_epoch();
        assert_eq!(cache.stats().entries, 2, "one cold epoch survives");
        cache.advance_epoch();
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "two cold epochs evict");
        assert_eq!(stats.evicted, 1);
        assert!(cache.lookup(&hot).is_some());
        assert!(cache.lookup(&cold).is_none());
    }

    #[test]
    fn tiny_bound_sweeps_cold_entries_then_refuses() {
        let cache = EnumerationCache::with_max_entries(1);
        let a = ("env".to_string(), "Int".to_string(), 0);
        let b = ("env".to_string(), "Bool".to_string(), 0);
        cache.insert(a.clone(), entry());
        cache.insert(b.clone(), entry());
        assert!(cache.lookup(&b).is_none(), "full of hot entries: refused");
        cache.advance_epoch();
        cache.insert(b.clone(), entry());
        assert!(cache.lookup(&b).is_some(), "cold sweep made room");
        assert_eq!(cache.stats().entries, 1);
    }
}
