//! Memoized E-term enumeration (the §4 performance machinery).
//!
//! Enumeration is split into two stages:
//!
//! 1. **goal-blind generation** — all well-shaped, argument-valid E-terms
//!    of a given base-type *shape* in a given environment, up to an
//!    application depth. Generation validates arguments against the
//!    head's declared types (so termination and precondition obligations
//!    are enforced), but never looks at the goal refinement, which makes
//!    its result a pure function of `(environment, shape, depth)`;
//! 2. **per-goal checking** — each generated candidate is checked against
//!    the current goal type under the current liquid-abduction unknown
//!    (see [`crate::synthesis`]).
//!
//! Stage 1 is what this module memoizes: an [`EnumerationCache`] maps
//! `(environment fingerprint, shape key, depth)` to the candidate set, so
//! the set is built once and reused across the synthesizer's deepening
//! iterations, abduction rounds, guard syntheses — and, when the cache is
//! shared through a [`SolverContext`](crate::SolverContext), across the
//! portfolio rungs and worker threads of a whole batch. Sharing is safe
//! because entries are deterministic functions of their key: a cache hit
//! changes *when* a candidate set is computed, never *what* it contains.

use crate::ast::Program;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use synquid_logic::Term;
use synquid_types::{BaseType, RType};

/// One memoized enumeration result: a well-shaped candidate program
/// together with everything the per-goal check needs to replay it under a
/// fresh constraint solver.
#[derive(Debug, Clone)]
pub struct ShapedCandidate {
    /// The candidate program (may contain [`Program::Hole`] at deferred
    /// higher-order argument positions).
    pub program: Program,
    /// `program.size()`, precomputed for candidate ordering.
    pub size: usize,
    /// The candidate's strengthened (finalized) type. Free unification
    /// type variables are local to the producing enumeration and must be
    /// renamed on consumption (see `ConstraintSolver::import_type`).
    pub ty: RType,
    /// Bindings for intermediate results (application-valued arguments),
    /// in binding order; `ty`'s refinement may mention them. Binder names
    /// are derived deterministically from the candidate's position in the
    /// enumeration, so identical keys yield byte-identical entries
    /// whichever worker computes them first.
    pub extras: Vec<(String, RType)>,
    /// The argument-side condition abduced while validating arguments
    /// (e.g. `n >= 1` for `dec n` at type `Nat`); `true` when the
    /// arguments validate unconditionally. The per-goal check replays it
    /// against the goal's branch-condition unknown.
    pub condition: Term,
    /// Deferred higher-order arguments: `(argument index, function
    /// type)`, synthesized only after the candidate's return type has
    /// been unified with a concrete goal.
    pub pending: Vec<(usize, RType)>,
}

/// Counters of one [`EnumerationCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumerationCacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to run generation.
    pub misses: usize,
    /// Entries currently stored.
    pub entries: usize,
}

/// One stored generation result: the candidate set together with whether
/// it *grew* relative to the set one application-depth level below.
///
/// The growth bit is what lets the engine's budget ledger prove a deeper
/// portfolio rung redundant: generation at depth `d` extends the depth
/// `d − 1` set, so `grew == false` at every site a failed run touched at
/// its maximum depth means a rerun with a larger depth bound would
/// enumerate — and therefore check — exactly the same candidates.
#[derive(Debug, Clone)]
pub struct GenerationEntry {
    /// The memoized candidate set.
    pub set: Arc<Vec<ShapedCandidate>>,
    /// True if this set is strictly larger than the set at `depth − 1`
    /// (always true at depth 0: a deeper bound enables applications that
    /// depth 0 cannot contain).
    pub grew: bool,
}

/// A concurrent memo table for goal-blind E-term generation, keyed by
/// `(environment fingerprint, shape key, depth)`. Cloning shares the
/// underlying table (like the solver's validity cache).
#[derive(Debug, Clone, Default)]
pub struct EnumerationCache {
    #[allow(clippy::type_complexity)]
    map: Arc<Mutex<HashMap<(String, String, usize), GenerationEntry>>>,
    hits: Arc<AtomicUsize>,
    misses: Arc<AtomicUsize>,
}

impl EnumerationCache {
    /// Creates an empty cache.
    pub fn new() -> EnumerationCache {
        EnumerationCache::default()
    }

    /// Looks up a candidate set.
    pub fn lookup(&self, key: &(String, String, usize)) -> Option<GenerationEntry> {
        let found = self
            .map
            .lock()
            .expect("enumeration cache poisoned")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Hard bound on stored candidate sets. Environment fingerprints are
    /// multi-KB strings and every match arm / else-branch mints new keys,
    /// so without a bound a long batch accumulates memory without limit
    /// (the validity cache bounds itself the same way). Refusing further
    /// inserts keeps determinism — a skipped insert only means the set is
    /// regenerated (to the identical value) on the next request.
    pub const MAX_ENTRIES: usize = 4096;

    /// Stores a complete candidate set. Sets must only be inserted when
    /// generation ran to completion (a deadline abort mid-generation must
    /// not publish a truncated set); once [`Self::MAX_ENTRIES`] sets are
    /// stored, further inserts are dropped.
    pub fn insert(&self, key: (String, String, usize), value: GenerationEntry) {
        let mut map = self.map.lock().expect("enumeration cache poisoned");
        if map.len() < Self::MAX_ENTRIES || map.contains_key(&key) {
            map.insert(key, value);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> EnumerationCacheStats {
        EnumerationCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("enumeration cache poisoned").len(),
        }
    }
}

/// The canonical shape key of a type: its base-type structure with all
/// refinements erased and free unification type variables normalized by
/// first occurrence (`%0`, `%1`, …), so shapes that differ only in the
/// producing solver's fresh-variable numbering share a cache entry.
pub fn shape_key(ty: &RType) -> String {
    let mut out = String::new();
    let mut seen: Vec<String> = Vec::new();
    write_shape(ty, &mut out, &mut seen);
    out
}

fn write_shape(ty: &RType, out: &mut String, seen: &mut Vec<String>) {
    match ty {
        RType::Scalar { base, .. } => write_base_shape(base, out, seen),
        RType::Function { arg, ret, .. } => {
            out.push('(');
            write_shape(arg, out, seen);
            out.push_str(")->");
            write_shape(ret, out, seen);
        }
        RType::Any => out.push_str("top"),
        RType::Bot => out.push_str("bot"),
    }
}

fn write_base_shape(base: &BaseType, out: &mut String, seen: &mut Vec<String>) {
    match base {
        BaseType::Bool => out.push_str("Bool"),
        BaseType::Int => out.push_str("Int"),
        BaseType::TypeVar(name) if synquid_types::is_free_type_var(name) => {
            let idx = match seen.iter().position(|s| s == name) {
                Some(i) => i,
                None => {
                    seen.push(name.clone());
                    seen.len() - 1
                }
            };
            out.push('%');
            out.push_str(&idx.to_string());
        }
        BaseType::TypeVar(name) => out.push_str(name),
        BaseType::Data(name, args) => {
            out.push_str(name);
            for a in args {
                out.push(' ');
                out.push('(');
                write_shape(a, out, seen);
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_keys_normalize_free_type_variables() {
        let a = RType::base(BaseType::Data(
            "List".into(),
            vec![RType::tyvar("'t0"), RType::tyvar("'t0")],
        ));
        let b = RType::base(BaseType::Data(
            "List".into(),
            vec![RType::tyvar("'t7"), RType::tyvar("'t7")],
        ));
        assert_eq!(shape_key(&a), shape_key(&b));
        let c = RType::base(BaseType::Data(
            "List".into(),
            vec![RType::tyvar("'t0"), RType::tyvar("'t1")],
        ));
        assert_ne!(shape_key(&a), shape_key(&c));
        // Rigid variables keep their names.
        assert_ne!(shape_key(&RType::tyvar("a")), shape_key(&RType::tyvar("b")));
    }

    #[test]
    fn shape_keys_erase_refinements() {
        use synquid_logic::Sort;
        let refined = RType::refined(BaseType::Int, Term::value_var(Sort::Int).ge(Term::int(0)));
        assert_eq!(shape_key(&refined), shape_key(&RType::int()));
        assert_ne!(shape_key(&RType::int()), shape_key(&RType::bool()));
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = EnumerationCache::new();
        let key = ("env".to_string(), "Int".to_string(), 1);
        assert!(cache.lookup(&key).is_none());
        cache.insert(
            key.clone(),
            GenerationEntry {
                set: Arc::new(Vec::new()),
                grew: false,
            },
        );
        assert!(cache.lookup(&key).is_some());
        let clone = cache.clone();
        assert!(clone.lookup(&key).is_some(), "clones share the table");
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }
}
