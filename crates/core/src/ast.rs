//! Program terms (Fig. 2 of the paper) and pretty-printing.
//!
//! Programs are split into E-terms (variables and applications, which
//! propagate type information bottom-up) and I-terms (branching and
//! function terms, which propagate type information top-down). The
//! synthesis procedure only ever builds programs in this normal form.

use std::fmt;

/// A program term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Program {
    /// A variable or component reference (E-term).
    Var(String),
    /// Application of an E-term to a term (E-term).
    App(Box<Program>, Box<Program>),
    /// Lambda abstraction (function I-term).
    Abs(String, Box<Program>),
    /// Fixpoint: a recursive definition bound to a name (function I-term).
    Fix(String, Box<Program>),
    /// Conditional (branching I-term).
    If(Box<Program>, Box<Program>, Box<Program>),
    /// Pattern match (branching I-term).
    Match(Box<Program>, Vec<Case>),
    /// An integer literal (treated as a nullary component).
    IntLit(i64),
    /// A boolean literal.
    BoolLit(bool),
    /// A hole: a not-yet-synthesized subterm. Complete programs returned by
    /// the synthesizer never contain holes.
    Hole,
}

/// One branch of a pattern match.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Case {
    /// Constructor name.
    pub constructor: String,
    /// Names bound to the constructor's arguments.
    pub binders: Vec<String>,
    /// The branch body.
    pub body: Program,
}

impl Program {
    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Program {
        Program::Var(name.into())
    }

    /// Applies `self` to an argument.
    pub fn app(self, arg: Program) -> Program {
        Program::App(Box::new(self), Box::new(arg))
    }

    /// Applies a named component to several arguments.
    pub fn apply(name: impl Into<String>, args: Vec<Program>) -> Program {
        args.into_iter()
            .fold(Program::var(name), |acc, a| acc.app(a))
    }

    /// Wraps the body in a lambda.
    pub fn lambda(arg: impl Into<String>, body: Program) -> Program {
        Program::Abs(arg.into(), Box::new(body))
    }

    /// A conditional.
    pub fn ite(cond: Program, then: Program, els: Program) -> Program {
        Program::If(Box::new(cond), Box::new(then), Box::new(els))
    }

    /// True if the term is an E-term (variable or application chain).
    pub fn is_eterm(&self) -> bool {
        match self {
            Program::Var(_) | Program::IntLit(_) | Program::BoolLit(_) => true,
            Program::App(f, a) => f.is_eterm() && (a.is_eterm() || a.is_function_term()),
            _ => false,
        }
    }

    /// True if the term is a function term (abstraction or fixpoint).
    pub fn is_function_term(&self) -> bool {
        matches!(self, Program::Abs(_, _) | Program::Fix(_, _))
    }

    /// True if the program contains no holes.
    pub fn is_complete(&self) -> bool {
        match self {
            Program::Hole => false,
            Program::Var(_) | Program::IntLit(_) | Program::BoolLit(_) => true,
            Program::App(f, a) => f.is_complete() && a.is_complete(),
            Program::Abs(_, b) | Program::Fix(_, b) => b.is_complete(),
            Program::If(c, t, e) => c.is_complete() && t.is_complete() && e.is_complete(),
            Program::Match(s, cases) => {
                s.is_complete() && cases.iter().all(|c| c.body.is_complete())
            }
        }
    }

    /// The number of AST nodes (used to report solution sizes as in
    /// Table 1 of the paper).
    pub fn size(&self) -> usize {
        match self {
            Program::Var(_) | Program::IntLit(_) | Program::BoolLit(_) | Program::Hole => 1,
            Program::App(f, a) => 1 + f.size() + a.size(),
            Program::Abs(_, b) | Program::Fix(_, b) => 1 + b.size(),
            Program::If(c, t, e) => 1 + c.size() + t.size() + e.size(),
            Program::Match(s, cases) => {
                1 + s.size() + cases.iter().map(|c| 1 + c.body.size()).sum::<usize>()
            }
        }
    }

    /// The depth of nested applications in this E-term (0 for variables).
    pub fn app_depth(&self) -> usize {
        match self {
            Program::App(f, a) => 1 + f.app_depth().max(a.app_depth()),
            _ => 0,
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Program::If(c, t, e) => {
                writeln!(f, "if {c}")?;
                write!(f, "{pad}  then ")?;
                t.fmt_indented(f, indent + 2)?;
                writeln!(f)?;
                write!(f, "{pad}  else ")?;
                e.fmt_indented(f, indent + 2)
            }
            Program::Match(s, cases) => {
                writeln!(f, "match {s} with")?;
                for (i, case) in cases.iter().enumerate() {
                    write!(f, "{pad}  | {} ", case.constructor)?;
                    for b in &case.binders {
                        write!(f, "{b} ")?;
                    }
                    write!(f, "-> ")?;
                    case.body.fmt_indented(f, indent + 2)?;
                    if i + 1 < cases.len() {
                        writeln!(f)?;
                    }
                }
                Ok(())
            }
            Program::Abs(x, b) => {
                write!(f, "\\{x} . ")?;
                b.fmt_indented(f, indent)
            }
            Program::Fix(x, b) => {
                write!(f, "fix {x} . ")?;
                b.fmt_indented(f, indent)
            }
            other => write!(f, "{other}"),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Program::Var(name) => write!(f, "{name}"),
            Program::IntLit(n) => write!(f, "{n}"),
            Program::BoolLit(b) => write!(f, "{b}"),
            Program::Hole => write!(f, "??"),
            Program::App(fun, arg) => {
                write!(f, "{fun} ")?;
                match arg.as_ref() {
                    Program::App(_, _) | Program::Abs(_, _) | Program::Fix(_, _) => {
                        write!(f, "({arg})")
                    }
                    _ => write!(f, "{arg}"),
                }
            }
            Program::Abs(_, _)
            | Program::Fix(_, _)
            | Program::If(_, _, _)
            | Program::Match(_, _) => self.fmt_indented(f, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replicate_body() -> Program {
        Program::ite(
            Program::apply("leq", vec![Program::var("n"), Program::var("zero")]),
            Program::var("Nil"),
            Program::apply(
                "Cons",
                vec![
                    Program::var("x"),
                    Program::apply(
                        "replicate",
                        vec![
                            Program::apply("dec", vec![Program::var("n")]),
                            Program::var("x"),
                        ],
                    ),
                ],
            ),
        )
    }

    #[test]
    fn application_builder_curries_left() {
        let p = Program::apply("f", vec![Program::var("a"), Program::var("b")]);
        assert_eq!(p.to_string(), "f a b");
        assert_eq!(p.app_depth(), 2);
        assert!(p.is_eterm());
    }

    #[test]
    fn size_counts_ast_nodes() {
        assert_eq!(Program::var("x").size(), 1);
        let p = Program::apply("f", vec![Program::var("a")]);
        assert_eq!(p.size(), 3);
        assert!(replicate_body().size() > 10);
    }

    #[test]
    fn completeness_detects_holes() {
        assert!(replicate_body().is_complete());
        let with_hole = Program::ite(Program::var("c"), Program::Hole, Program::var("x"));
        assert!(!with_hole.is_complete());
    }

    #[test]
    fn pretty_printing_resembles_the_paper() {
        let program = Program::Fix(
            "replicate".into(),
            Box::new(Program::lambda("n", Program::lambda("x", replicate_body()))),
        );
        let s = program.to_string();
        assert!(s.contains("\\n . "));
        assert!(s.contains("if leq n zero"));
        assert!(s.contains("then"));
        assert!(s.contains("Cons x (replicate (dec n) x)"));
    }

    #[test]
    fn branching_terms_are_not_eterms() {
        assert!(!replicate_body().is_eterm());
        assert!(Program::var("x").is_eterm());
        assert!(!Program::lambda("x", Program::var("x")).is_eterm());
    }

    #[test]
    fn match_printing_lists_cases() {
        let m = Program::Match(
            Box::new(Program::var("xs")),
            vec![
                Case {
                    constructor: "Nil".into(),
                    binders: vec![],
                    body: Program::var("Nil"),
                },
                Case {
                    constructor: "Cons".into(),
                    binders: vec!["h".into(), "t".into()],
                    body: Program::var("t"),
                },
            ],
        );
        let s = m.to_string();
        assert!(s.contains("match xs with"));
        assert!(s.contains("| Cons h t -> t"));
    }
}
