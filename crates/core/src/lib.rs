//! # synquid-core
//!
//! The synthesis engine of the Synquid reproduction: program terms
//! (Fig. 2), round-trip type checking embedded in E-term enumeration
//! (Fig. 4, Sec. 3.7), liquid abduction for conditionals (IF-ABD), match
//! synthesis, termination-aware recursion, and the ablation switches
//! evaluated in the paper.
//!
//! ## Example: synthesizing `replicate`
//!
//! The quickstart example in the repository root (`examples/quickstart.rs`)
//! synthesizes the paper's Fig. 1 program from the signature
//! `n: Nat → x: α → {List α | len ν = n}` using this crate's
//! [`Synthesizer`] together with the component environment assembled by
//! `synquid-lang`.

pub mod ast;
pub mod check;
pub mod context;
pub mod eval;
pub mod memo;
pub mod options;
pub mod synthesis;

pub use ast::{Case, Program};
pub use check::TypeChecker;
pub use context::{CancellationToken, SolverContext};
pub use eval::{EvalError, Evaluator, Value};
pub use memo::{EnumerationCache, EnumerationCacheStats, GenerationEntry};
pub use options::SynthesisConfig;
pub use synthesis::{Goal, SynthesisError, SynthesisStats, Synthesized, Synthesizer};
