//! Synthesizer configuration, including the ablation switches evaluated in
//! the paper (Table 1: T-nrt, T-ncc, T-nmus) and exploration bounds
//! (Sec. 4.2: T-all vs T-def).

use std::time::Duration;

/// Configuration of the synthesis procedure.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Maximum nesting depth of applications in enumerated E-terms.
    pub max_app_depth: usize,
    /// Maximum nesting depth of pattern matches.
    pub max_match_depth: usize,
    /// Maximum nesting depth of conditionals (the paper imposes no a-priori
    /// bound; this is a safety bound well above what any benchmark needs).
    pub max_branch_depth: usize,
    /// Maximum application depth when synthesizing branch guards.
    pub guard_depth: usize,
    /// Enable round-trip type checking (early subtyping checks on partial
    /// applications). Disabling reproduces the T-nrt ablation.
    pub round_trip: bool,
    /// Enable type-consistency checks on partial applications. Disabling
    /// reproduces the T-ncc ablation.
    pub consistency: bool,
    /// Use MUSFIX for fixpoint strengthening. Disabling switches to the
    /// naive breadth-first backend (the T-nmus ablation).
    pub use_musfix: bool,
    /// Memoize E-term generation in the run's `EnumerationCache` so
    /// candidate sets are built once per `(environment, shape, depth)`
    /// and reused across deepening iterations, abduction rounds, guard
    /// syntheses, and (through a shared `SolverContext`) portfolio rungs.
    /// Disabling regenerates every set from scratch; results are
    /// byte-identical either way, only slower.
    pub memoize: bool,
    /// Persist learned theory conflicts in the SMT backend across
    /// queries (incremental DPLL(T)). Disabling re-solves every query
    /// from scratch. Persisted lemmas are sound theory facts, so no
    /// `Sat`/`Unsat` verdict can differ; the one asymmetry is a query
    /// that would exhaust its DPLL(T)-iteration or LIA-branch budget
    /// from scratch — replayed lemmas can prune enough models to decide
    /// it (`Unknown` → `Unsat`), making strictly *more* proofs succeed,
    /// never fewer.
    pub incremental_smt: bool,
    /// Keep one warm simplex tableau per DPLL(T) query in the LIA
    /// backend (bounds asserted/retracted over a push/pop stack instead
    /// of rebuilding the tableau for every theory check), plus the
    /// shared-encoding MUS oracle that rides on it. Disabling gives the
    /// from-scratch per-check baseline. Verdicts are identical either
    /// way — backtracking restores exactly the bounds each check
    /// asserted — so this flag exists for the differential fuzz oracle
    /// and A/B benchmarking, not for correctness workarounds.
    pub incremental_lia: bool,
    /// Wall-clock timeout for one synthesis goal.
    pub timeout: Duration,
    /// Cap on the number of candidates returned by one E-term enumeration.
    pub max_candidates: usize,
    /// Cap on the number of argument candidates explored per argument
    /// position.
    pub max_arg_candidates: usize,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            max_app_depth: 3,
            max_match_depth: 1,
            max_branch_depth: 3,
            guard_depth: 2,
            round_trip: true,
            consistency: true,
            use_musfix: true,
            memoize: true,
            incremental_smt: true,
            incremental_lia: true,
            timeout: Duration::from_secs(120),
            max_candidates: 64,
            max_arg_candidates: 24,
        }
    }
}

impl SynthesisConfig {
    /// The default configuration with a different timeout.
    pub fn with_timeout(timeout: Duration) -> SynthesisConfig {
        SynthesisConfig {
            timeout,
            ..SynthesisConfig::default()
        }
    }

    /// The T-nrt ablation: bidirectional checking only (no early subtyping
    /// checks on partial applications).
    pub fn without_round_trip(mut self) -> SynthesisConfig {
        self.round_trip = false;
        self
    }

    /// The T-ncc ablation: no type-consistency checks.
    pub fn without_consistency(mut self) -> SynthesisConfig {
        self.consistency = false;
        self
    }

    /// The T-nmus ablation: naive breadth-first strengthening instead of
    /// MUSFIX.
    pub fn without_musfix(mut self) -> SynthesisConfig {
        self.use_musfix = false;
        self
    }

    /// Disables the E-term enumeration memo (every candidate set is
    /// regenerated from scratch). Used by the regression tests to prove
    /// memoization changes timing only, never results.
    pub fn without_memoization(mut self) -> SynthesisConfig {
        self.memoize = false;
        self
    }

    /// Disables incremental DPLL(T) (cross-query theory-conflict
    /// persistence in the SMT backend). Used by the regression tests to
    /// check incremental solving against from-scratch solving on goals
    /// whose queries are decided within budget (where the results must
    /// be byte-identical; see [`SynthesisConfig::incremental_smt`] for
    /// the budget-boundary asymmetry).
    pub fn without_incremental_smt(mut self) -> SynthesisConfig {
        self.incremental_smt = false;
        self
    }

    /// Disables the warm incremental-LIA tableau (every theory check
    /// rebuilds the simplex tableau from scratch). Used by the
    /// differential fuzz oracle and the solver microbenchmarks to pin
    /// warm-vs-cold verdict equivalence and speedups; see
    /// [`SynthesisConfig::incremental_lia`].
    pub fn without_incremental_lia(mut self) -> SynthesisConfig {
        self.incremental_lia = false;
        self
    }

    /// Per-benchmark exploration bounds (the T-all column of Table 1 uses
    /// minimal bounds per benchmark; T-def shares bounds per group).
    pub fn with_bounds(mut self, app_depth: usize, match_depth: usize) -> SynthesisConfig {
        self.max_app_depth = app_depth;
        self.max_match_depth = match_depth;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_features() {
        let c = SynthesisConfig::default();
        assert!(c.round_trip && c.consistency && c.use_musfix);
    }

    #[test]
    fn ablation_builders_flip_single_flags() {
        let c = SynthesisConfig::default().without_round_trip();
        assert!(!c.round_trip && c.consistency && c.use_musfix);
        let c = SynthesisConfig::default().without_consistency();
        assert!(c.round_trip && !c.consistency && c.use_musfix);
        let c = SynthesisConfig::default().without_musfix();
        assert!(c.round_trip && c.consistency && !c.use_musfix);
    }

    #[test]
    fn bounds_builder_sets_depths() {
        let c = SynthesisConfig::default().with_bounds(5, 2);
        assert_eq!(c.max_app_depth, 5);
        assert_eq!(c.max_match_depth, 2);
    }
}
