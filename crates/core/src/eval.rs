//! A big-step interpreter for synthesized programs.
//!
//! The paper's guarantee is static — synthesized programs are correct by
//! construction of their typing derivation — but being able to *run* the
//! results is invaluable for testing this reproduction: the integration
//! tests execute synthesized programs on concrete inputs and compare the
//! observable behaviour against a reference implementation, catching any
//! mismatch between the type system and the intended semantics.
//!
//! The interpreter understands the program forms of Fig. 2 (variables,
//! applications, abstractions, fixpoints, conditionals, matches) plus the
//! standard component library of `synquid-lang` (integer arithmetic,
//! comparisons, boolean connectives), and treats any other capitalized
//! name as a datatype constructor.

use crate::ast::Program;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A (possibly partially applied) datatype constructor.
    Ctor(String, Vec<Value>),
    /// A closure: formal argument, body, captured bindings.
    Closure(String, Rc<Program>, Bindings),
    /// A recursive closure introduced by `fix`.
    Fixpoint(String, Rc<Program>, Bindings),
    /// A partially applied built-in component.
    Builtin(String, Vec<Value>),
}

/// Variable bindings (environments are persistent maps: cloning is cheap
/// enough for the program sizes the synthesizer produces).
pub type Bindings = BTreeMap<String, Value>;

impl Value {
    /// Builds a `List` value (`Cons`/`Nil`) from a vector of values.
    pub fn list(items: Vec<Value>) -> Value {
        items
            .into_iter()
            .rev()
            .fold(Value::Ctor("Nil".into(), vec![]), |acc, x| {
                Value::Ctor("Cons".into(), vec![x, acc])
            })
    }

    /// Converts a `List` value back into a vector; `None` if the value is
    /// not a proper list.
    pub fn as_list(&self) -> Option<Vec<Value>> {
        let mut out = Vec::new();
        let mut current = self;
        loop {
            match current {
                Value::Ctor(name, args) if name == "Nil" && args.is_empty() => return Some(out),
                Value::Ctor(name, args) if name == "Cons" && args.len() == 2 => {
                    out.push(args[0].clone());
                    current = &args[1];
                }
                _ => return None,
            }
        }
    }

    /// The integer payload, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Ctor(name, args) if args.is_empty() => write!(f, "{name}"),
            Value::Ctor(name, args) => {
                write!(f, "({name}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
            Value::Closure(arg, _, _) => write!(f, "<closure \\{arg}>"),
            Value::Fixpoint(name, _, _) => write!(f, "<fix {name}>"),
            Value::Builtin(name, args) => write!(f, "<builtin {name}/{}>", args.len()),
        }
    }
}

/// An evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Human-readable description.
    pub message: String,
}

impl EvalError {
    fn new(message: impl Into<String>) -> EvalError {
        EvalError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

type BuiltinFn = Rc<dyn Fn(&[Value]) -> Result<Value, EvalError>>;

/// The interpreter.
#[derive(Clone)]
pub struct Evaluator {
    builtins: BTreeMap<String, (usize, BuiltinFn)>,
    /// Remaining evaluation steps before the interpreter gives up (guards
    /// against accidentally non-terminating inputs).
    pub fuel: u64,
}

impl fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Evaluator")
            .field("builtins", &self.builtins.keys().collect::<Vec<_>>())
            .field("fuel", &self.fuel)
            .finish()
    }
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator::with_standard_components()
    }
}

impl Evaluator {
    /// An evaluator with no built-in components (constructors still work).
    pub fn new() -> Evaluator {
        Evaluator {
            builtins: BTreeMap::new(),
            fuel: 1_000_000,
        }
    }

    /// An evaluator pre-loaded with the semantics of the standard component
    /// library of `synquid-lang` (`zero`, `inc`, `dec`, `plus`, comparisons
    /// over integers and over ordered opaque values, boolean connectives).
    pub fn with_standard_components() -> Evaluator {
        let mut eval = Evaluator::new();
        eval.register_const("zero", Value::Int(0));
        eval.register_const("one", Value::Int(1));
        eval.register_const("true", Value::Bool(true));
        eval.register_const("false", Value::Bool(false));
        eval.register("inc", 1, |args| int_op(args, |a, _| a + 1));
        eval.register("dec", 1, |args| int_op(args, |a, _| a - 1));
        eval.register("neg", 1, |args| int_op(args, |a, _| -a));
        eval.register("plus", 2, |args| int_op2(args, |a, b| a + b));
        eval.register("minus", 2, |args| int_op2(args, |a, b| a - b));
        eval.register("not", 1, |args| {
            let b = args[0]
                .as_bool()
                .ok_or_else(|| EvalError::new("not expects a boolean"))?;
            Ok(Value::Bool(!b))
        });
        eval.register("and", 2, |args| bool_op2(args, |a, b| a && b));
        eval.register("or", 2, |args| bool_op2(args, |a, b| a || b));
        for (name, generic) in [
            ("leq", false),
            ("lt", false),
            ("eq", false),
            ("neq", false),
            ("leqg", true),
            ("ltg", true),
            ("eqg", true),
            ("neqg", true),
        ] {
            let base = name.trim_end_matches('g').to_string();
            let _ = generic;
            eval.register(name, 2, move |args| compare(&base, args));
        }
        for i in 0..=8 {
            eval.register_const(format!("c{i}"), Value::Int(i));
        }
        eval
    }

    /// Registers a built-in component with the given arity.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        f: impl Fn(&[Value]) -> Result<Value, EvalError> + 'static,
    ) {
        self.builtins.insert(name.into(), (arity, Rc::new(f)));
    }

    /// Registers a nullary component with a constant value.
    pub fn register_const(&mut self, name: impl Into<String>, value: Value) {
        self.builtins
            .insert(name.into(), (0, Rc::new(move |_| Ok(value.clone()))));
    }

    /// Evaluates a closed program (typically a synthesized function) and
    /// applies it to the given argument values.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] for unbound names, arity mismatches,
    /// non-exhaustive matches, or fuel exhaustion.
    pub fn run(&mut self, program: &Program, args: &[Value]) -> Result<Value, EvalError> {
        let mut value = self.eval(program, &Bindings::new())?;
        for arg in args {
            value = self.apply(value, arg.clone())?;
        }
        Ok(value)
    }

    /// Evaluates a program under the given bindings.
    pub fn eval(&mut self, program: &Program, bindings: &Bindings) -> Result<Value, EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::new("evaluation fuel exhausted"));
        }
        self.fuel -= 1;
        match program {
            Program::IntLit(n) => Ok(Value::Int(*n)),
            Program::BoolLit(b) => Ok(Value::Bool(*b)),
            Program::Hole => Err(EvalError::new("cannot evaluate a hole")),
            Program::Var(name) => self.lookup(name, bindings),
            Program::Abs(arg, body) => Ok(Value::Closure(
                arg.clone(),
                Rc::new(body.as_ref().clone()),
                bindings.clone(),
            )),
            Program::Fix(name, body) => Ok(Value::Fixpoint(
                name.clone(),
                Rc::new(body.as_ref().clone()),
                bindings.clone(),
            )),
            Program::App(f, a) => {
                let fv = self.eval(f, bindings)?;
                let av = self.eval(a, bindings)?;
                self.apply(fv, av)
            }
            Program::If(c, t, e) => {
                let cv = self.eval(c, bindings)?;
                match cv {
                    Value::Bool(true) => self.eval(t, bindings),
                    Value::Bool(false) => self.eval(e, bindings),
                    other => Err(EvalError::new(format!(
                        "condition evaluated to non-boolean {other}"
                    ))),
                }
            }
            Program::Match(scrutinee, cases) => {
                let sv = self.eval(scrutinee, bindings)?;
                let Value::Ctor(name, args) = sv else {
                    return Err(EvalError::new(format!(
                        "match scrutinee is not a constructor value: {sv}"
                    )));
                };
                let case = cases
                    .iter()
                    .find(|c| c.constructor == name)
                    .ok_or_else(|| EvalError::new(format!("non-exhaustive match: {name}")))?;
                if case.binders.len() != args.len() {
                    return Err(EvalError::new(format!(
                        "constructor {name} carries {} values but the pattern binds {}",
                        args.len(),
                        case.binders.len()
                    )));
                }
                let mut inner = bindings.clone();
                for (binder, value) in case.binders.iter().zip(args) {
                    inner.insert(binder.clone(), value);
                }
                self.eval(&case.body, &inner)
            }
        }
    }

    fn lookup(&mut self, name: &str, bindings: &Bindings) -> Result<Value, EvalError> {
        if let Some(v) = bindings.get(name) {
            return Ok(v.clone());
        }
        if let Some((arity, f)) = self.builtins.get(name).cloned() {
            if arity == 0 {
                return f(&[]);
            }
            return Ok(Value::Builtin(name.to_string(), Vec::new()));
        }
        if name.chars().next().is_some_and(char::is_uppercase) {
            return Ok(Value::Ctor(name.to_string(), Vec::new()));
        }
        Err(EvalError::new(format!("unbound variable {name}")))
    }

    /// Applies a function value to an argument value.
    pub fn apply(&mut self, function: Value, arg: Value) -> Result<Value, EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::new("evaluation fuel exhausted"));
        }
        self.fuel -= 1;
        match function {
            Value::Closure(formal, body, mut captured) => {
                captured.insert(formal, arg);
                self.eval(&body, &captured)
            }
            Value::Fixpoint(name, body, captured) => {
                let mut recursive = captured.clone();
                recursive.insert(name.clone(), Value::Fixpoint(name, body.clone(), captured));
                let unfolded = self.eval(&body, &recursive)?;
                self.apply(unfolded, arg)
            }
            Value::Builtin(name, mut args) => {
                args.push(arg);
                let (arity, f) = self
                    .builtins
                    .get(&name)
                    .cloned()
                    .ok_or_else(|| EvalError::new(format!("unknown builtin {name}")))?;
                if args.len() == arity {
                    f(&args)
                } else {
                    Ok(Value::Builtin(name, args))
                }
            }
            Value::Ctor(name, mut args) => {
                args.push(arg);
                Ok(Value::Ctor(name, args))
            }
            other => Err(EvalError::new(format!("cannot apply non-function {other}"))),
        }
    }
}

fn int_op(args: &[Value], f: impl Fn(i64, i64) -> i64) -> Result<Value, EvalError> {
    let a = args[0]
        .as_int()
        .ok_or_else(|| EvalError::new("expected an integer argument"))?;
    Ok(Value::Int(f(a, 0)))
}

fn int_op2(args: &[Value], f: impl Fn(i64, i64) -> i64) -> Result<Value, EvalError> {
    let a = args[0]
        .as_int()
        .ok_or_else(|| EvalError::new("expected an integer argument"))?;
    let b = args[1]
        .as_int()
        .ok_or_else(|| EvalError::new("expected an integer argument"))?;
    Ok(Value::Int(f(a, b)))
}

fn bool_op2(args: &[Value], f: impl Fn(bool, bool) -> bool) -> Result<Value, EvalError> {
    let a = args[0]
        .as_bool()
        .ok_or_else(|| EvalError::new("expected a boolean argument"))?;
    let b = args[1]
        .as_bool()
        .ok_or_else(|| EvalError::new("expected a boolean argument"))?;
    Ok(Value::Bool(f(a, b)))
}

/// Generic comparison used by both the integer components (`leq`, …) and
/// their generic counterparts (`leqg`, …): integers compare numerically,
/// booleans and constructors compare structurally where an order exists.
fn compare(op: &str, args: &[Value]) -> Result<Value, EvalError> {
    let result = match (&args[0], &args[1]) {
        (Value::Int(a), Value::Int(b)) => match op {
            "leq" => a <= b,
            "lt" => a < b,
            "eq" => a == b,
            "neq" => a != b,
            _ => return Err(EvalError::new(format!("unknown comparison {op}"))),
        },
        (a, b) => match op {
            "eq" => a == b,
            "neq" => a != b,
            _ => {
                return Err(EvalError::new(format!(
                    "ordered comparison {op} on non-integer values {a} and {b}"
                )))
            }
        },
    };
    Ok(Value::Bool(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Case;

    fn replicate_program() -> Program {
        let body = Program::ite(
            Program::apply("leq", vec![Program::var("n"), Program::var("zero")]),
            Program::var("Nil"),
            Program::apply(
                "Cons",
                vec![
                    Program::var("x"),
                    Program::apply(
                        "replicate",
                        vec![
                            Program::apply("dec", vec![Program::var("n")]),
                            Program::var("x"),
                        ],
                    ),
                ],
            ),
        );
        Program::Fix(
            "replicate".into(),
            Box::new(Program::lambda("n", Program::lambda("x", body))),
        )
    }

    #[test]
    fn literals_and_arithmetic_evaluate() {
        let mut eval = Evaluator::default();
        let p = Program::apply("plus", vec![Program::IntLit(2), Program::IntLit(3)]);
        assert_eq!(eval.run(&p, &[]), Ok(Value::Int(5)));
        let p = Program::apply("inc", vec![Program::apply("dec", vec![Program::IntLit(7)])]);
        assert_eq!(eval.run(&p, &[]), Ok(Value::Int(7)));
    }

    #[test]
    fn closures_capture_their_environment() {
        let mut eval = Evaluator::default();
        // (\x . \y . plus x y) 2 40
        let p = Program::lambda(
            "x",
            Program::lambda(
                "y",
                Program::apply("plus", vec![Program::var("x"), Program::var("y")]),
            ),
        );
        assert_eq!(
            eval.run(&p, &[Value::Int(2), Value::Int(40)]),
            Ok(Value::Int(42))
        );
    }

    #[test]
    fn fig1_replicate_produces_n_copies() {
        let mut eval = Evaluator::default();
        let result = eval
            .run(&replicate_program(), &[Value::Int(3), Value::Int(9)])
            .expect("replicate evaluates");
        let items = result.as_list().expect("result is a list");
        assert_eq!(items, vec![Value::Int(9); 3]);
        // Zero and negative counts produce the empty list.
        let mut eval = Evaluator::default();
        let empty = eval
            .run(&replicate_program(), &[Value::Int(0), Value::Int(1)])
            .unwrap();
        assert_eq!(empty.as_list().unwrap().len(), 0);
    }

    #[test]
    fn match_destructures_constructor_values() {
        let mut eval = Evaluator::default();
        // match xs with Nil -> 0 | Cons h t -> h
        let program = Program::lambda(
            "xs",
            Program::Match(
                Box::new(Program::var("xs")),
                vec![
                    Case {
                        constructor: "Nil".into(),
                        binders: vec![],
                        body: Program::IntLit(0),
                    },
                    Case {
                        constructor: "Cons".into(),
                        binders: vec!["h".into(), "t".into()],
                        body: Program::var("h"),
                    },
                ],
            ),
        );
        let list = Value::list(vec![Value::Int(5), Value::Int(6)]);
        assert_eq!(eval.run(&program, &[list]), Ok(Value::Int(5)));
        let mut eval = Evaluator::default();
        assert_eq!(
            eval.run(&program, &[Value::list(vec![])]),
            Ok(Value::Int(0))
        );
    }

    #[test]
    fn generic_equality_works_on_constructor_values() {
        let mut eval = Evaluator::default();
        let p = Program::apply("eqg", vec![Program::var("Nil"), Program::var("Nil")]);
        assert_eq!(eval.run(&p, &[]), Ok(Value::Bool(true)));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut eval = Evaluator::default();
        assert!(eval.run(&Program::var("nope"), &[]).is_err());
        assert!(eval.run(&Program::Hole, &[]).is_err());
        let bad_if = Program::ite(Program::IntLit(3), Program::IntLit(1), Program::IntLit(2));
        assert!(eval.run(&bad_if, &[]).is_err());
    }

    #[test]
    fn fuel_bounds_runaway_recursion() {
        // fix loop . \n . loop n
        let looping = Program::Fix(
            "loop".into(),
            Box::new(Program::lambda(
                "n",
                Program::apply("loop", vec![Program::var("n")]),
            )),
        );
        // Keep the bound small: the interpreter is not tail-recursive, so a
        // large fuel budget on a divergent program would exhaust the test
        // thread's stack before it exhausts the fuel.
        let mut eval = Evaluator {
            fuel: 500,
            ..Evaluator::default()
        };
        let err = eval.run(&looping, &[Value::Int(1)]).unwrap_err();
        assert!(err.message.contains("fuel"));
    }

    #[test]
    fn list_round_trip_helpers() {
        let v = Value::list(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(v.as_list().unwrap().len(), 2);
        assert_eq!(v.to_string(), "(Cons 1 (Cons 2 Nil))");
        assert!(Value::Int(3).as_list().is_none());
    }
}
