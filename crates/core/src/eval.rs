//! A big-step interpreter for synthesized programs.
//!
//! The paper's guarantee is static — synthesized programs are correct by
//! construction of their typing derivation — but being able to *run* the
//! results is invaluable for testing this reproduction: the runtime
//! soundness oracle (`synquid-oracle`) executes synthesized programs on
//! generated inputs and checks the postcondition refinement with the
//! measure interpreter, catching any mismatch between the type system and
//! the intended semantics.
//!
//! The interpreter understands the program forms of Fig. 2 (variables,
//! applications, abstractions, fixpoints, conditionals, matches) plus the
//! standard component library of `synquid-lang` (integer arithmetic,
//! comparisons, boolean connectives, and the goal-local list helpers
//! `snoc`, `append`, `insert`, `umember`), and treats any other
//! capitalized name as a datatype constructor.

use crate::ast::Program;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A (possibly partially applied) datatype constructor.
    Ctor(String, Vec<Value>),
    /// A closure: formal argument, body, captured bindings.
    Closure(String, Rc<Program>, Bindings),
    /// A recursive closure introduced by `fix`.
    Fixpoint(String, Rc<Program>, Bindings),
    /// A partially applied built-in component.
    Builtin(String, Vec<Value>),
}

/// Variable bindings (environments are persistent maps: cloning is cheap
/// enough for the program sizes the synthesizer produces).
pub type Bindings = BTreeMap<String, Value>;

impl Value {
    /// Builds a `List` value (`Cons`/`Nil`) from a vector of values.
    pub fn list(items: Vec<Value>) -> Value {
        items
            .into_iter()
            .rev()
            .fold(Value::Ctor("Nil".into(), vec![]), |acc, x| {
                Value::Ctor("Cons".into(), vec![x, acc])
            })
    }

    /// Converts a `List` value back into a vector; `None` if the value is
    /// not a proper list.
    pub fn as_list(&self) -> Option<Vec<Value>> {
        self.as_cons_chain("Nil", "Cons")
    }

    /// Converts any nil/cons-shaped value (e.g. `List`, `IList`, `UList`)
    /// into a vector of its elements; `None` if the spine does not consist
    /// of exactly the given constructors.
    pub fn as_cons_chain(&self, nil: &str, cons: &str) -> Option<Vec<Value>> {
        let mut out = Vec::new();
        let mut current = self;
        loop {
            match current {
                Value::Ctor(name, args) if name == nil && args.is_empty() => return Some(out),
                Value::Ctor(name, args) if name == cons && args.len() == 2 => {
                    out.push(args[0].clone());
                    current = &args[1];
                }
                _ => return None,
            }
        }
    }

    /// The integer payload, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short description of the value's shape, used in error messages.
    fn shape(&self) -> String {
        match self {
            Value::Int(_) => "an integer".into(),
            Value::Bool(_) => "a boolean".into(),
            Value::Ctor(name, _) => format!("constructor {name}"),
            Value::Closure(..) => "a closure".into(),
            Value::Fixpoint(..) => "a fixpoint".into(),
            Value::Builtin(name, _) => format!("builtin {name}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Ctor(name, args) if args.is_empty() => write!(f, "{name}"),
            Value::Ctor(name, args) => {
                write!(f, "({name}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
            Value::Closure(arg, _, _) => write!(f, "<closure \\{arg}>"),
            Value::Fixpoint(name, _, _) => write!(f, "<fix {name}>"),
            Value::Builtin(name, args) => write!(f, "<builtin {name}/{}>", args.len()),
        }
    }
}

/// A typed evaluation error. Every malformed program or value is reported
/// as one of these variants — the interpreter never panics on bad input,
/// which the fuzzing oracle relies on to distinguish "the synthesized
/// program is wrong" from "the harness fed it garbage".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable was not bound and is not a builtin or constructor.
    UnboundVariable(String),
    /// A `Value::Builtin` named a component that is not registered.
    UnknownBuiltin(String),
    /// A builtin was invoked with the wrong number of arguments.
    ArityMismatch {
        /// The builtin's name.
        name: String,
        /// Its registered arity.
        expected: usize,
        /// The number of arguments it received.
        got: usize,
    },
    /// A builtin received a value of the wrong shape.
    SortMismatch {
        /// The builtin's name.
        name: String,
        /// What it expected (e.g. "an integer").
        expected: &'static str,
        /// What it got, rendered.
        got: String,
    },
    /// An `if` condition evaluated to a non-boolean.
    NonBooleanCondition(String),
    /// A `match` scrutinee evaluated to a non-constructor value.
    BadScrutinee(String),
    /// No case matched the scrutinee's constructor.
    NonExhaustiveMatch(String),
    /// A pattern binds a different number of values than the constructor
    /// carries.
    PatternArity {
        /// The constructor's name.
        constructor: String,
        /// How many values it carries.
        carries: usize,
        /// How many the pattern binds.
        binds: usize,
    },
    /// A non-function value was applied to an argument.
    NotAFunction(String),
    /// The program contains a hole.
    Hole,
    /// The step budget was exhausted (guards against divergence).
    FuelExhausted,
}

impl EvalError {
    fn sort(name: &str, expected: &'static str, got: &Value) -> EvalError {
        EvalError::SortMismatch {
            name: name.to_string(),
            expected,
            got: got.shape(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: ")?;
        match self {
            EvalError::UnboundVariable(name) => write!(f, "unbound variable {name}"),
            EvalError::UnknownBuiltin(name) => write!(f, "unknown builtin {name}"),
            EvalError::ArityMismatch {
                name,
                expected,
                got,
            } => write!(f, "{name} expects {expected} argument(s), got {got}"),
            EvalError::SortMismatch {
                name,
                expected,
                got,
            } => write!(f, "{name} expects {expected}, got {got}"),
            EvalError::NonBooleanCondition(v) => {
                write!(f, "condition evaluated to non-boolean {v}")
            }
            EvalError::BadScrutinee(v) => {
                write!(f, "match scrutinee is not a constructor value: {v}")
            }
            EvalError::NonExhaustiveMatch(name) => write!(f, "non-exhaustive match: {name}"),
            EvalError::PatternArity {
                constructor,
                carries,
                binds,
            } => write!(
                f,
                "constructor {constructor} carries {carries} values but the pattern binds {binds}"
            ),
            EvalError::NotAFunction(v) => write!(f, "cannot apply non-function {v}"),
            EvalError::Hole => write!(f, "cannot evaluate a hole"),
            EvalError::FuelExhausted => write!(f, "evaluation fuel exhausted"),
        }
    }
}

impl std::error::Error for EvalError {}

type BuiltinFn = Rc<dyn Fn(&[Value]) -> Result<Value, EvalError>>;

/// The interpreter.
#[derive(Clone)]
pub struct Evaluator {
    builtins: BTreeMap<String, (usize, BuiltinFn)>,
    /// Remaining evaluation steps before the interpreter gives up (guards
    /// against accidentally non-terminating inputs).
    pub fuel: u64,
}

impl fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Evaluator")
            .field("builtins", &self.builtins.keys().collect::<Vec<_>>())
            .field("fuel", &self.fuel)
            .finish()
    }
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator::with_standard_components()
    }
}

impl Evaluator {
    /// An evaluator with no built-in components (constructors still work).
    pub fn new() -> Evaluator {
        Evaluator {
            builtins: BTreeMap::new(),
            fuel: 1_000_000,
        }
    }

    /// An evaluator pre-loaded with the semantics of every component the
    /// benchmark environments of `synquid-lang` can emit: the standard
    /// library (`zero`, `inc`, `dec`, `plus`, comparisons over integers and
    /// over ordered opaque values, boolean connectives, `c<n>` constants)
    /// plus the goal-local helper components (`snoc`, `append`, `insert`,
    /// `umember`, `is_private`).
    pub fn with_standard_components() -> Evaluator {
        let mut eval = Evaluator::new();
        eval.register_const("zero", Value::Int(0));
        eval.register_const("one", Value::Int(1));
        eval.register_const("true", Value::Bool(true));
        eval.register_const("false", Value::Bool(false));
        eval.register("inc", 1, |args| int_op("inc", args, |a| a + 1));
        eval.register("dec", 1, |args| int_op("dec", args, |a| a - 1));
        eval.register("neg", 1, |args| int_op("neg", args, |a| -a));
        eval.register("plus", 2, |args| int_op2("plus", args, |a, b| a + b));
        eval.register("minus", 2, |args| int_op2("minus", args, |a, b| a - b));
        eval.register("not", 1, |args| {
            expect_arity("not", args, 1)?;
            let b = args[0]
                .as_bool()
                .ok_or_else(|| EvalError::sort("not", "a boolean", &args[0]))?;
            Ok(Value::Bool(!b))
        });
        eval.register("and", 2, |args| bool_op2("and", args, |a, b| a && b));
        eval.register("or", 2, |args| bool_op2("or", args, |a, b| a || b));
        for name in ["leq", "lt", "eq", "neq", "leqg", "ltg", "eqg", "neqg"] {
            let base = name.trim_end_matches('g').to_string();
            eval.register(name, 2, move |args| compare(&base, args));
        }
        // Goal-local components from the Table-1 transcriptions.
        eval.register("snoc", 2, |args| {
            expect_arity("snoc", args, 2)?;
            let mut items = args[0]
                .as_list()
                .ok_or_else(|| EvalError::sort("snoc", "a list", &args[0]))?;
            items.push(args[1].clone());
            Ok(Value::list(items))
        });
        eval.register("append", 2, |args| {
            expect_arity("append", args, 2)?;
            let mut xs = args[0]
                .as_list()
                .ok_or_else(|| EvalError::sort("append", "a list", &args[0]))?;
            let ys = args[1]
                .as_list()
                .ok_or_else(|| EvalError::sort("append", "a list", &args[1]))?;
            xs.extend(ys);
            Ok(Value::list(xs))
        });
        eval.register("insert", 2, |args| {
            // insert :: x: α → xs: IList α → IList α, keeping the list sorted.
            expect_arity("insert", args, 2)?;
            let x = args[0]
                .as_int()
                .ok_or_else(|| EvalError::sort("insert", "an integer", &args[0]))?;
            let mut items = args[1]
                .as_cons_chain("INil", "ICons")
                .ok_or_else(|| EvalError::sort("insert", "an increasing list", &args[1]))?;
            let pos = items
                .iter()
                .position(|v| v.as_int().is_none_or(|n| x <= n))
                .unwrap_or(items.len());
            items.insert(pos, Value::Int(x));
            Ok(items
                .into_iter()
                .rev()
                .fold(Value::Ctor("INil".into(), vec![]), |acc, v| {
                    Value::Ctor("ICons".into(), vec![v, acc])
                }))
        });
        eval.register("umember", 2, |args| {
            expect_arity("umember", args, 2)?;
            let items = args[1]
                .as_cons_chain("UNil", "UCons")
                .ok_or_else(|| EvalError::sort("umember", "a unique list", &args[1]))?;
            Ok(Value::Bool(items.contains(&args[0])))
        });
        eval.register("is_private", 1, |args| {
            // The address-book benchmarks only require *some* deterministic
            // classifier α → Bool; negative integers are "private".
            expect_arity("is_private", args, 1)?;
            Ok(Value::Bool(match &args[0] {
                Value::Int(n) => *n < 0,
                Value::Bool(b) => *b,
                _ => false,
            }))
        });
        eval
    }

    /// Registers a built-in component with the given arity.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        f: impl Fn(&[Value]) -> Result<Value, EvalError> + 'static,
    ) {
        self.builtins.insert(name.into(), (arity, Rc::new(f)));
    }

    /// Registers a nullary component with a constant value.
    pub fn register_const(&mut self, name: impl Into<String>, value: Value) {
        self.builtins
            .insert(name.into(), (0, Rc::new(move |_| Ok(value.clone()))));
    }

    /// Whether the evaluator has executable semantics for the named
    /// component: a registered builtin, an integer constant `c<n>` (the
    /// SyGuS benchmarks declare these up to arbitrary `n`), or a
    /// capitalized name (treated as a datatype constructor).
    pub fn covers(&self, name: &str) -> bool {
        self.builtins.contains_key(name)
            || int_constant(name).is_some()
            || name.chars().next().is_some_and(char::is_uppercase)
    }

    /// The names of all registered builtins, in sorted order.
    pub fn builtin_names(&self) -> Vec<&str> {
        self.builtins.keys().map(String::as_str).collect()
    }

    /// Evaluates a closed program (typically a synthesized function) and
    /// applies it to the given argument values.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] for unbound names, arity mismatches,
    /// non-exhaustive matches, or fuel exhaustion.
    pub fn run(&mut self, program: &Program, args: &[Value]) -> Result<Value, EvalError> {
        let mut value = self.eval(program, &Bindings::new())?;
        for arg in args {
            value = self.apply(value, arg.clone())?;
        }
        Ok(value)
    }

    /// Evaluates a program under the given bindings.
    pub fn eval(&mut self, program: &Program, bindings: &Bindings) -> Result<Value, EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::FuelExhausted);
        }
        self.fuel -= 1;
        match program {
            Program::IntLit(n) => Ok(Value::Int(*n)),
            Program::BoolLit(b) => Ok(Value::Bool(*b)),
            Program::Hole => Err(EvalError::Hole),
            Program::Var(name) => self.lookup(name, bindings),
            Program::Abs(arg, body) => Ok(Value::Closure(
                arg.clone(),
                Rc::new(body.as_ref().clone()),
                bindings.clone(),
            )),
            Program::Fix(name, body) => Ok(Value::Fixpoint(
                name.clone(),
                Rc::new(body.as_ref().clone()),
                bindings.clone(),
            )),
            Program::App(f, a) => {
                let fv = self.eval(f, bindings)?;
                let av = self.eval(a, bindings)?;
                self.apply(fv, av)
            }
            Program::If(c, t, e) => {
                let cv = self.eval(c, bindings)?;
                match cv {
                    Value::Bool(true) => self.eval(t, bindings),
                    Value::Bool(false) => self.eval(e, bindings),
                    other => Err(EvalError::NonBooleanCondition(other.to_string())),
                }
            }
            Program::Match(scrutinee, cases) => {
                let sv = self.eval(scrutinee, bindings)?;
                let Value::Ctor(name, args) = sv else {
                    return Err(EvalError::BadScrutinee(sv.to_string()));
                };
                let case = cases
                    .iter()
                    .find(|c| c.constructor == name)
                    .ok_or_else(|| EvalError::NonExhaustiveMatch(name.clone()))?;
                if case.binders.len() != args.len() {
                    return Err(EvalError::PatternArity {
                        constructor: name,
                        carries: args.len(),
                        binds: case.binders.len(),
                    });
                }
                let mut inner = bindings.clone();
                for (binder, value) in case.binders.iter().zip(args) {
                    inner.insert(binder.clone(), value);
                }
                self.eval(&case.body, &inner)
            }
        }
    }

    fn lookup(&mut self, name: &str, bindings: &Bindings) -> Result<Value, EvalError> {
        if let Some(v) = bindings.get(name) {
            return Ok(v.clone());
        }
        if let Some((arity, f)) = self.builtins.get(name).cloned() {
            if arity == 0 {
                return f(&[]);
            }
            return Ok(Value::Builtin(name.to_string(), Vec::new()));
        }
        // The SyGuS benchmarks declare `c0 … cn` for arbitrary `n`; resolve
        // them dynamically instead of pre-registering a fixed prefix.
        if let Some(n) = int_constant(name) {
            return Ok(Value::Int(n));
        }
        if name.chars().next().is_some_and(char::is_uppercase) {
            return Ok(Value::Ctor(name.to_string(), Vec::new()));
        }
        Err(EvalError::UnboundVariable(name.to_string()))
    }

    /// Applies a function value to an argument value.
    pub fn apply(&mut self, function: Value, arg: Value) -> Result<Value, EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::FuelExhausted);
        }
        self.fuel -= 1;
        match function {
            Value::Closure(formal, body, mut captured) => {
                captured.insert(formal, arg);
                self.eval(&body, &captured)
            }
            Value::Fixpoint(name, body, captured) => {
                let mut recursive = captured.clone();
                recursive.insert(name.clone(), Value::Fixpoint(name, body.clone(), captured));
                let unfolded = self.eval(&body, &recursive)?;
                self.apply(unfolded, arg)
            }
            Value::Builtin(name, mut args) => {
                args.push(arg);
                let (arity, f) = self
                    .builtins
                    .get(&name)
                    .cloned()
                    .ok_or_else(|| EvalError::UnknownBuiltin(name.clone()))?;
                if args.len() == arity {
                    f(&args)
                } else if args.len() > arity {
                    Err(EvalError::ArityMismatch {
                        name,
                        expected: arity,
                        got: args.len(),
                    })
                } else {
                    Ok(Value::Builtin(name, args))
                }
            }
            Value::Ctor(name, mut args) => {
                args.push(arg);
                Ok(Value::Ctor(name, args))
            }
            other => Err(EvalError::NotAFunction(other.to_string())),
        }
    }
}

/// Parses an integer-constant component name `c<n>` (e.g. `c0`, `c12`).
fn int_constant(name: &str) -> Option<i64> {
    let digits = name.strip_prefix('c')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn expect_arity(name: &str, args: &[Value], expected: usize) -> Result<(), EvalError> {
    if args.len() != expected {
        return Err(EvalError::ArityMismatch {
            name: name.to_string(),
            expected,
            got: args.len(),
        });
    }
    Ok(())
}

fn int_op(name: &str, args: &[Value], f: impl Fn(i64) -> i64) -> Result<Value, EvalError> {
    expect_arity(name, args, 1)?;
    let a = args[0]
        .as_int()
        .ok_or_else(|| EvalError::sort(name, "an integer", &args[0]))?;
    Ok(Value::Int(f(a)))
}

fn int_op2(name: &str, args: &[Value], f: impl Fn(i64, i64) -> i64) -> Result<Value, EvalError> {
    expect_arity(name, args, 2)?;
    let a = args[0]
        .as_int()
        .ok_or_else(|| EvalError::sort(name, "an integer", &args[0]))?;
    let b = args[1]
        .as_int()
        .ok_or_else(|| EvalError::sort(name, "an integer", &args[1]))?;
    Ok(Value::Int(f(a, b)))
}

fn bool_op2(
    name: &str,
    args: &[Value],
    f: impl Fn(bool, bool) -> bool,
) -> Result<Value, EvalError> {
    expect_arity(name, args, 2)?;
    let a = args[0]
        .as_bool()
        .ok_or_else(|| EvalError::sort(name, "a boolean", &args[0]))?;
    let b = args[1]
        .as_bool()
        .ok_or_else(|| EvalError::sort(name, "a boolean", &args[1]))?;
    Ok(Value::Bool(f(a, b)))
}

/// Generic comparison used by both the integer components (`leq`, …) and
/// their generic counterparts (`leqg`, …): integers compare numerically,
/// booleans and constructors compare structurally where an order exists.
fn compare(op: &str, args: &[Value]) -> Result<Value, EvalError> {
    expect_arity(op, args, 2)?;
    let result = match (&args[0], &args[1]) {
        (Value::Int(a), Value::Int(b)) => match op {
            "leq" => a <= b,
            "lt" => a < b,
            "eq" => a == b,
            "neq" => a != b,
            _ => return Err(EvalError::UnknownBuiltin(op.to_string())),
        },
        (a, b) => match op {
            "eq" => a == b,
            "neq" => a != b,
            _ => return Err(EvalError::sort(op, "ordered (integer) values", a)),
        },
    };
    Ok(Value::Bool(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Case;

    fn replicate_program() -> Program {
        let body = Program::ite(
            Program::apply("leq", vec![Program::var("n"), Program::var("zero")]),
            Program::var("Nil"),
            Program::apply(
                "Cons",
                vec![
                    Program::var("x"),
                    Program::apply(
                        "replicate",
                        vec![
                            Program::apply("dec", vec![Program::var("n")]),
                            Program::var("x"),
                        ],
                    ),
                ],
            ),
        );
        Program::Fix(
            "replicate".into(),
            Box::new(Program::lambda("n", Program::lambda("x", body))),
        )
    }

    #[test]
    fn literals_and_arithmetic_evaluate() {
        let mut eval = Evaluator::default();
        let p = Program::apply("plus", vec![Program::IntLit(2), Program::IntLit(3)]);
        assert_eq!(eval.run(&p, &[]), Ok(Value::Int(5)));
        let p = Program::apply("inc", vec![Program::apply("dec", vec![Program::IntLit(7)])]);
        assert_eq!(eval.run(&p, &[]), Ok(Value::Int(7)));
    }

    #[test]
    fn closures_capture_their_environment() {
        let mut eval = Evaluator::default();
        // (\x . \y . plus x y) 2 40
        let p = Program::lambda(
            "x",
            Program::lambda(
                "y",
                Program::apply("plus", vec![Program::var("x"), Program::var("y")]),
            ),
        );
        assert_eq!(
            eval.run(&p, &[Value::Int(2), Value::Int(40)]),
            Ok(Value::Int(42))
        );
    }

    #[test]
    fn fig1_replicate_produces_n_copies() {
        let mut eval = Evaluator::default();
        let result = eval
            .run(&replicate_program(), &[Value::Int(3), Value::Int(9)])
            .expect("replicate evaluates");
        let items = result.as_list().expect("result is a list");
        assert_eq!(items, vec![Value::Int(9); 3]);
        // Zero and negative counts produce the empty list.
        let mut eval = Evaluator::default();
        let empty = eval
            .run(&replicate_program(), &[Value::Int(0), Value::Int(1)])
            .unwrap();
        assert_eq!(empty.as_list().unwrap().len(), 0);
    }

    #[test]
    fn match_destructures_constructor_values() {
        let mut eval = Evaluator::default();
        // match xs with Nil -> 0 | Cons h t -> h
        let program = Program::lambda(
            "xs",
            Program::Match(
                Box::new(Program::var("xs")),
                vec![
                    Case {
                        constructor: "Nil".into(),
                        binders: vec![],
                        body: Program::IntLit(0),
                    },
                    Case {
                        constructor: "Cons".into(),
                        binders: vec!["h".into(), "t".into()],
                        body: Program::var("h"),
                    },
                ],
            ),
        );
        let list = Value::list(vec![Value::Int(5), Value::Int(6)]);
        assert_eq!(eval.run(&program, &[list]), Ok(Value::Int(5)));
        let mut eval = Evaluator::default();
        assert_eq!(
            eval.run(&program, &[Value::list(vec![])]),
            Ok(Value::Int(0))
        );
    }

    #[test]
    fn generic_equality_works_on_constructor_values() {
        let mut eval = Evaluator::default();
        let p = Program::apply("eqg", vec![Program::var("Nil"), Program::var("Nil")]);
        assert_eq!(eval.run(&p, &[]), Ok(Value::Bool(true)));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut eval = Evaluator::default();
        assert_eq!(
            eval.run(&Program::var("nope"), &[]),
            Err(EvalError::UnboundVariable("nope".into()))
        );
        assert_eq!(eval.run(&Program::Hole, &[]), Err(EvalError::Hole));
        let bad_if = Program::ite(Program::IntLit(3), Program::IntLit(1), Program::IntLit(2));
        assert_eq!(
            eval.run(&bad_if, &[]),
            Err(EvalError::NonBooleanCondition("3".into()))
        );
    }

    #[test]
    fn builtins_reject_wrong_sorts_and_arities() {
        let mut eval = Evaluator::default();
        // inc true → sort mismatch, not a panic.
        let p = Program::apply("inc", vec![Program::BoolLit(true)]);
        assert!(matches!(
            eval.run(&p, &[]),
            Err(EvalError::SortMismatch { .. })
        ));
        // Over-application of a saturated builtin: (not true) false.
        let mut eval = Evaluator::default();
        let over = eval
            .apply(
                Value::Builtin("not".into(), vec![Value::Bool(true)]),
                Value::Bool(false),
            )
            .unwrap_err();
        assert!(matches!(over, EvalError::ArityMismatch { .. }));
        // Direct calls with short argument slices error instead of indexing
        // out of bounds.
        assert!(matches!(
            int_op2("plus", &[Value::Int(1)], |a, b| a + b),
            Err(EvalError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
        assert!(matches!(
            compare("lt", &[Value::Bool(true), Value::Bool(false)]),
            Err(EvalError::SortMismatch { .. })
        ));
    }

    #[test]
    fn every_standard_builtin_computes() {
        let mut cases: Vec<(Program, Value)> = vec![
            (Program::var("zero"), Value::Int(0)),
            (Program::var("one"), Value::Int(1)),
            (Program::var("true"), Value::Bool(true)),
            (Program::var("false"), Value::Bool(false)),
            (
                Program::apply("inc", vec![Program::IntLit(4)]),
                Value::Int(5),
            ),
            (
                Program::apply("dec", vec![Program::IntLit(4)]),
                Value::Int(3),
            ),
            (
                Program::apply("neg", vec![Program::IntLit(4)]),
                Value::Int(-4),
            ),
            (
                Program::apply("plus", vec![Program::IntLit(2), Program::IntLit(3)]),
                Value::Int(5),
            ),
            (
                Program::apply("minus", vec![Program::IntLit(2), Program::IntLit(3)]),
                Value::Int(-1),
            ),
            (
                Program::apply("not", vec![Program::BoolLit(false)]),
                Value::Bool(true),
            ),
            (
                Program::apply("and", vec![Program::BoolLit(true), Program::BoolLit(false)]),
                Value::Bool(false),
            ),
            (
                Program::apply("or", vec![Program::BoolLit(true), Program::BoolLit(false)]),
                Value::Bool(true),
            ),
        ];
        for (op, expect) in [
            ("leq", true),
            ("lt", true),
            ("eq", false),
            ("neq", true),
            ("leqg", true),
            ("ltg", true),
            ("eqg", false),
            ("neqg", true),
        ] {
            cases.push((
                Program::apply(op, vec![Program::IntLit(1), Program::IntLit(2)]),
                Value::Bool(expect),
            ));
        }
        for (program, expected) in cases {
            let mut eval = Evaluator::default();
            assert_eq!(eval.run(&program, &[]), Ok(expected), "{program:?}");
        }
    }

    #[test]
    fn goal_local_components_compute() {
        // snoc [1,2] 3 = [1,2,3]
        let mut eval = Evaluator::default();
        let xs = Value::list(vec![Value::Int(1), Value::Int(2)]);
        let out = eval
            .run(&Program::var("snoc"), &[xs.clone(), Value::Int(3)])
            .unwrap();
        assert_eq!(
            out.as_list().unwrap(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
        // append [1] [2,3] = [1,2,3]
        let mut eval = Evaluator::default();
        let out = eval
            .run(
                &Program::var("append"),
                &[
                    Value::list(vec![Value::Int(1)]),
                    Value::list(vec![Value::Int(2), Value::Int(3)]),
                ],
            )
            .unwrap();
        assert_eq!(out.as_list().unwrap().len(), 3);
        // insert 2 (ICons 1 (ICons 3 INil)) keeps the list sorted.
        let mut eval = Evaluator::default();
        let ilist = Value::Ctor(
            "ICons".into(),
            vec![
                Value::Int(1),
                Value::Ctor(
                    "ICons".into(),
                    vec![Value::Int(3), Value::Ctor("INil".into(), vec![])],
                ),
            ],
        );
        let out = eval
            .run(&Program::var("insert"), &[Value::Int(2), ilist])
            .unwrap();
        assert_eq!(
            out.as_cons_chain("INil", "ICons").unwrap(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
        // umember finds (only) present elements.
        let mut eval = Evaluator::default();
        let ulist = Value::Ctor(
            "UCons".into(),
            vec![Value::Int(7), Value::Ctor("UNil".into(), vec![])],
        );
        assert_eq!(
            eval.run(&Program::var("umember"), &[Value::Int(7), ulist.clone()]),
            Ok(Value::Bool(true))
        );
        let mut eval = Evaluator::default();
        assert_eq!(
            eval.run(&Program::var("umember"), &[Value::Int(8), ulist]),
            Ok(Value::Bool(false))
        );
        // is_private is a deterministic classifier.
        let mut eval = Evaluator::default();
        assert_eq!(
            eval.run(&Program::var("is_private"), &[Value::Int(-3)]),
            Ok(Value::Bool(true))
        );
    }

    #[test]
    fn int_constants_resolve_dynamically() {
        let mut eval = Evaluator::default();
        assert_eq!(eval.run(&Program::var("c0"), &[]), Ok(Value::Int(0)));
        let mut eval = Evaluator::default();
        assert_eq!(eval.run(&Program::var("c42"), &[]), Ok(Value::Int(42)));
        // `c` alone and `cx` are not constants.
        let mut eval = Evaluator::default();
        assert!(eval.run(&Program::var("c"), &[]).is_err());
        let mut eval = Evaluator::default();
        assert!(eval.run(&Program::var("cx"), &[]).is_err());
        assert!(Evaluator::default().covers("c1000"));
    }

    #[test]
    fn coverage_introspection_reports_builtins_and_ctors() {
        let eval = Evaluator::default();
        for name in [
            "zero", "plus", "leqg", "snoc", "insert", "Cons", "Node", "c17",
        ] {
            assert!(eval.covers(name), "{name} should be covered");
        }
        assert!(!eval.covers("mystery_component"));
        assert!(eval.builtin_names().contains(&"umember"));
    }

    #[test]
    fn fuel_bounds_runaway_recursion() {
        // fix loop . \n . loop n
        let looping = Program::Fix(
            "loop".into(),
            Box::new(Program::lambda(
                "n",
                Program::apply("loop", vec![Program::var("n")]),
            )),
        );
        // Keep the bound small: the interpreter is not tail-recursive, so a
        // large fuel budget on a divergent program would exhaust the test
        // thread's stack before it exhausts the fuel.
        let mut eval = Evaluator {
            fuel: 500,
            ..Evaluator::default()
        };
        let err = eval.run(&looping, &[Value::Int(1)]).unwrap_err();
        assert_eq!(err, EvalError::FuelExhausted);
    }

    #[test]
    fn list_round_trip_helpers() {
        let v = Value::list(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(v.as_list().unwrap().len(), 2);
        assert_eq!(v.to_string(), "(Cons 1 (Cons 2 Nil))");
        assert!(Value::Int(3).as_list().is_none());
    }
}
