//! The synthesis procedure (Sec. 3.7), built on round-trip type checking.
//!
//! Given a goal schema, the synthesizer introduces a fixpoint (with a
//! termination-weakened recursive binding), type abstractions, and lambda
//! abstractions, then enumerates well-typed E-terms for the scalar body:
//!
//! * every E-term candidate is checked against the goal *as it is built*
//!   (round-trip checking): partial applications are pruned by early
//!   subtyping and consistency checks before their arguments are
//!   synthesized;
//! * a fresh predicate unknown `P0` is conjoined to the path condition
//!   before checking each candidate, so the Horn solver *abduces* the
//!   weakest branch condition under which the candidate is correct
//!   (liquid abduction / rule IF-ABD);
//! * if no branch-free term (or conditional) works, the synthesizer
//!   generates a pattern match on a datatype variable in scope and
//!   recurses into the branches.

use crate::ast::{Case, Program};
use crate::context::{CancellationToken, SolverContext};
use crate::memo::{shape_key, EnumerationCache, GenerationEntry, ShapedCandidate};
use crate::options::SynthesisConfig;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::Instant;
use synquid_horn::{FixpointConfig, StrengthenBackend};
use synquid_logic::{Sort, Substitution, Term};
use synquid_solver::Smt;
use synquid_telemetry::{events, events::Event, Phase, PhaseProfile};
use synquid_types::{
    is_free_type_var, weaken_for_recursion, BaseType, ConstraintSolver, Environment, RType, Schema,
};

/// A synthesis goal: a name, an environment of components, and the goal
/// schema.
#[derive(Debug, Clone)]
pub struct Goal {
    /// Name of the function being synthesized (used for recursive calls).
    pub name: String,
    /// The component environment.
    pub env: Environment,
    /// The goal type schema.
    pub schema: Schema,
}

impl Goal {
    /// Creates a goal.
    pub fn new(name: impl Into<String>, env: Environment, schema: Schema) -> Goal {
        Goal {
            name: name.into(),
            env,
            schema,
        }
    }
}

/// Why synthesis failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// The search space was exhausted without finding a solution.
    NoSolution(String),
    /// The configured timeout was exceeded (or the run was cancelled)
    /// while synthesizing the named goal.
    Timeout(String),
}

impl SynthesisError {
    /// The goal name a timeout was attributed to, if any. Batch runners
    /// use this to report *which* goal ran out of budget.
    pub fn goal_name(&self) -> Option<&str> {
        match self {
            SynthesisError::Timeout(name) => Some(name),
            SynthesisError::NoSolution(_) => None,
        }
    }
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::NoSolution(goal) => write!(f, "no solution found for goal {goal}"),
            SynthesisError::Timeout(goal) => write!(f, "goal {goal}: synthesis timed out"),
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Statistics collected during one synthesis run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SynthesisStats {
    /// E-term candidates whose types were checked against a goal.
    pub eterms_checked: usize,
    /// Candidate programs produced by goal-blind generation (each
    /// generated candidate is counted once, however often the memo
    /// serves it afterwards).
    pub terms_enumerated: usize,
    /// Candidates and application heads discarded by early round-trip
    /// checks — return-shape filtering during generation and consistency
    /// checking against the goal — before any full subtyping or
    /// abduction work was spent on them.
    pub pruned_early: usize,
    /// Enumeration-memo lookups answered from the cache.
    pub memo_hits: usize,
    /// Enumeration-memo lookups that had to run generation.
    pub memo_misses: usize,
    /// Conditionals created through liquid abduction.
    pub branches_abduced: usize,
    /// Pattern matches generated.
    pub matches_generated: usize,
    /// Wall-clock seconds spent.
    pub elapsed_secs: f64,
    /// Validity/satisfiability queries issued to the SMT backend
    /// (including ones answered from either cache layer).
    pub smt_queries: usize,
    /// Queries answered by the instance-local memo.
    pub smt_cache_hits: usize,
    /// Queries answered by the shared validity cache (zero when the run
    /// has no [`SolverContext`] cache attached).
    pub shared_cache_hits: usize,
    /// Subset of `shared_cache_hits` whose cached verdict was negative
    /// (`Unsat`), i.e. a previously proven entailment was reused.
    pub shared_negative_hits: usize,
    /// Queries that consulted the shared validity cache and missed.
    pub shared_cache_misses: usize,
    /// Theory conflicts learned by the incremental DPLL(T) backend and
    /// persisted across queries.
    pub smt_conflicts_learned: usize,
    /// Persisted theory conflicts replayed into later queries (each
    /// replay pre-prunes a SAT + LIA round trip the query would
    /// otherwise repeat).
    pub smt_conflicts_reused: usize,
    /// Duplicate assumption conjuncts dropped by the environment's
    /// assumption extractor before encoding.
    pub assumptions_dropped: usize,
    /// Theory checks answered by a warm simplex tableau (bounds pushed
    /// onto an already-built tableau instead of rebuilding it).
    pub tableau_warm_starts: usize,
    /// Cross-constant bound-implication clauses asserted into SAT
    /// skeletons (each lets a derived bound kill related atoms by unit
    /// propagation instead of an LIA call).
    pub bounds_propagated: usize,
    /// MUS enumerations that ran against one shared encoding with
    /// selector-literal subset activation (vs re-encoding per subset).
    pub mus_shared_encodings: usize,
    /// Estimated simplex pivots avoided by warm starts (cold first-check
    /// cost minus actual cost, summed over warm checks).
    pub lia_pivots_saved: usize,
    /// True if some E-term generation at the run's maximum application
    /// depth produced candidates its `depth − 1` set lacked — i.e. a
    /// deeper application bound could enumerate new programs. When a run
    /// fails with the frontier *closed*, rerunning it with a larger
    /// application depth is provably futile (the engine's ledger skips
    /// such rungs).
    pub frontier_open: bool,
    /// True if the search declined a pattern match (a datatype scrutinee
    /// was in scope) because the match-depth bound was exhausted — i.e. a
    /// deeper match bound could change the outcome.
    pub match_bound_hit: bool,
    /// Per-phase wall-time attribution of the whole run (generation,
    /// memo lookups, consistency, subtyping, abduction, and the SMT
    /// phases below them), captured from the worker thread's span
    /// profile when profiling is enabled (`--stats`, `SYNQUID_PROFILE=1`)
    /// and empty otherwise. Phase *counts* are deterministic for a fixed
    /// goal, configuration and cache regime; totals and maxima are wall
    /// times. The SMT backend's own [`synquid_solver::SmtStats::phases`]
    /// window is a subset of this one — fold in one or the other, never
    /// both.
    pub phases: PhaseProfile,
}

/// A successfully synthesized program together with statistics.
#[derive(Debug, Clone)]
pub struct Synthesized {
    /// The program.
    pub program: Program,
    /// Statistics of the run.
    pub stats: SynthesisStats,
}

/// The synthesizer.
#[derive(Debug)]
pub struct Synthesizer {
    config: SynthesisConfig,
    /// The shared SMT solver (statistics survive backtracking).
    pub smt: Smt,
    cancel: CancellationToken,
    deadline: Instant,
    stats: SynthesisStats,
    /// The E-term generation memo (shared through the [`SolverContext`]
    /// with sibling rungs and goals).
    memo: EnumerationCache,
    /// Name of the goal currently being synthesized, for timeout
    /// attribution in batch runs.
    goal_name: String,
    fresh_counter: usize,
    /// Derivation-node ids: `node_counter` allocates ids in preorder over
    /// the `synthesize_in` call tree (reset per [`Synthesizer::synthesize`]
    /// run, so ids are deterministic for a fixed goal, configuration and
    /// cache regime); `current_node` is the id of the frame currently on
    /// the stack (0 = root's parent sentinel). Trace consumers scope ids
    /// to one `goal_start`..`goal_finish` window per thread, because each
    /// rung attempt restarts the counter.
    node_counter: u64,
    current_node: u64,
}

impl Synthesizer {
    /// Creates a standalone synthesizer: no shared validity cache, a
    /// fresh cancellation token.
    pub fn new(config: SynthesisConfig) -> Synthesizer {
        Synthesizer::with_context(config, &SolverContext::new())
    }

    /// Creates a synthesizer wired into a shared solver context: its SMT
    /// backend feeds (and is fed by) the context's validity cache, and
    /// the run stops early when the context's token is cancelled.
    pub fn with_context(config: SynthesisConfig, context: &SolverContext) -> Synthesizer {
        let deadline = Instant::now() + config.timeout;
        let mut smt = context.make_smt();
        // Budget enforcement reaches the DPLL(T) loop itself: a single
        // liquid-abduction round can spend the whole budget inside one
        // fixpoint strengthening, so deadline checks between candidates
        // alone would overshoot by minutes.
        smt.set_incremental(config.incremental_smt);
        smt.set_incremental_lia(config.incremental_lia);
        smt.set_deadline(Some(deadline));
        smt.set_cancellation(Some(context.cancel.clone()));
        Synthesizer {
            config,
            smt,
            cancel: context.cancel.clone(),
            deadline,
            stats: SynthesisStats::default(),
            memo: context.enum_cache.clone(),
            goal_name: String::new(),
            fresh_counter: 0,
            node_counter: 0,
            current_node: 0,
        }
    }

    /// Statistics of the last run, with the SMT-level counters (queries,
    /// cache hits/misses) folded in.
    pub fn stats(&self) -> SynthesisStats {
        let mut stats = self.stats;
        let smt = self.smt.stats();
        stats.smt_queries = smt.queries;
        stats.smt_cache_hits = smt.cache_hits;
        stats.shared_cache_hits = smt.shared_hits;
        stats.shared_negative_hits = smt.shared_negative_hits;
        stats.shared_cache_misses = smt.shared_misses;
        stats.smt_conflicts_learned = smt.conflicts_learned;
        stats.smt_conflicts_reused = smt.conflicts_reused;
        stats.assumptions_dropped = smt.assumptions_dropped;
        stats.tableau_warm_starts = smt.tableau_warm_starts;
        stats.bounds_propagated = smt.bounds_propagated;
        stats.mus_shared_encodings = smt.mus_shared_encodings;
        stats.lia_pivots_saved = smt.lia_pivots_saved;
        stats
    }

    fn fixpoint_config(&self) -> FixpointConfig {
        FixpointConfig {
            backend: if self.config.use_musfix {
                StrengthenBackend::Musfix
            } else {
                StrengthenBackend::NaiveBfs
            },
            ..FixpointConfig::default()
        }
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        let n = self.fresh_counter;
        self.fresh_counter += 1;
        format!("__{prefix}{n}")
    }

    fn check_deadline(&self) -> Result<(), SynthesisError> {
        if Instant::now() > self.deadline || self.cancel.is_cancelled() {
            Err(SynthesisError::Timeout(self.goal_name.clone()))
        } else {
            Ok(())
        }
    }

    /// Synthesizes a program for the goal.
    pub fn synthesize(&mut self, goal: &Goal) -> Result<Synthesized, SynthesisError> {
        let start = Instant::now();
        self.node_counter = 0;
        self.current_node = 0;
        // One synthesis run stays on one thread, so the run's phase
        // profile is the delta of the thread-local span aggregation
        // around it (no locks, no cross-worker bleed).
        let profile_base = synquid_telemetry::profiling_enabled().then(synquid_telemetry::snapshot);
        let mut result = self.synthesize_goal(goal, start);
        // A search that exhausted its candidates *after* the deadline
        // passed (or cancellation fired) may have done so only because
        // interrupted SMT queries answered `Unknown`: its `NoSolution`
        // reflects the budget, not the search space, and must not be
        // reported as a genuine exhaustion (the portfolio ledger treats
        // genuine failures as evidence that equivalent deeper rungs can
        // be skipped).
        if matches!(result, Err(SynthesisError::NoSolution(_)))
            && (Instant::now() > self.deadline || self.cancel.is_cancelled())
        {
            result = Err(SynthesisError::Timeout(self.goal_name.clone()));
        }
        // Record wall time on failures too: [`Synthesizer::stats`] (and
        // `RunResult::stats`) are meaningful for timed-out runs.
        self.stats.elapsed_secs = start.elapsed().as_secs_f64();
        if let Some(base) = profile_base {
            self.stats.phases = synquid_telemetry::snapshot().delta_since(&base);
        }
        // Refresh the result's stats copy with the final elapsed time and
        // the captured phase profile.
        if let Ok(synthesized) = &mut result {
            synthesized.stats = self.stats();
        }
        result
    }

    fn synthesize_goal(
        &mut self,
        goal: &Goal,
        start: Instant,
    ) -> Result<Synthesized, SynthesisError> {
        self.deadline = start + self.config.timeout;
        self.smt.set_deadline(Some(self.deadline));
        self.goal_name = goal.name.clone();
        let mut env = goal.env.clone();
        env.add_qualifiers_from_type(&goal.schema.ty);

        let mut solver = ConstraintSolver::new(self.fixpoint_config());
        solver.consistency_enabled = self.config.consistency;

        let (args, ret) = goal.schema.ty.uncurry();
        let arg_names: Vec<String> = args.iter().map(|(n, _)| n.clone()).collect();
        let recursive = weaken_for_recursion(&env, &goal.schema, &arg_names);
        if let Some(weakened) = &recursive {
            env.add_var(goal.name.clone(), weakened.clone());
        }
        for (name, ty) in &args {
            env.add_var(name.clone(), ty.clone());
        }

        let body = self.synthesize_in(
            &env,
            &ret,
            &solver,
            self.config.max_branch_depth,
            self.config.max_match_depth,
        )?;

        let mut program = body;
        for (name, _) in args.iter().rev() {
            program = Program::Abs(name.clone(), Box::new(program));
        }
        if recursive.is_some() && program_mentions(&program, &goal.name) {
            program = Program::Fix(goal.name.clone(), Box::new(program));
        }
        self.stats.elapsed_secs = start.elapsed().as_secs_f64();
        Ok(Synthesized {
            program,
            // `stats()` folds in the SMT counters; `elapsed_secs` was
            // just set, and the caller refreshes it once more on return.
            stats: self.stats(),
        })
    }

    /// Synthesizes a term of the given (possibly functional) goal type.
    ///
    /// Every call is one derivation node. This wrapper allocates the node
    /// id, brackets the frame with `search` / `node_finish` events (parent
    /// link, wall time, per-node cache provenance, and — when profiling is
    /// on — a phase split *inclusive of children*), and restores the
    /// parent id on the way out; the search itself lives in
    /// [`Synthesizer::synthesize_in_node`]. The counter advances even when
    /// no sink is configured, so ids never depend on whether tracing was
    /// on.
    fn synthesize_in(
        &mut self,
        env: &Environment,
        goal: &RType,
        base_solver: &ConstraintSolver,
        branch_depth: usize,
        match_depth: usize,
    ) -> Result<Program, SynthesisError> {
        let parent = self.current_node;
        self.node_counter += 1;
        let node = self.node_counter;
        self.current_node = node;
        let enabled = events::events_enabled();
        let started = enabled.then(Instant::now);
        let provenance_base = enabled.then(|| {
            (
                self.stats.memo_hits,
                self.stats.memo_misses,
                self.smt.stats().conflicts_reused,
            )
        });
        let phase_base =
            (enabled && synquid_telemetry::profiling_enabled()).then(synquid_telemetry::snapshot);
        events::emit(|| {
            Event::new("search")
                .uint("node", node)
                .uint("parent", parent)
                .str("goal", &self.goal_name)
                .str("ty", goal.to_string())
                .uint("branch_depth", branch_depth as u64)
                .uint("match_depth", match_depth as u64)
        });
        let result = self.synthesize_in_node(env, goal, base_solver, branch_depth, match_depth);
        if let (Some(started), Some((hits0, misses0, replayed0))) = (started, provenance_base) {
            let status = match &result {
                Ok(_) => "solved",
                Err(SynthesisError::Timeout(_)) => "timeout",
                Err(SynthesisError::NoSolution(_)) => "exhausted",
            };
            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            let memo_hits = (self.stats.memo_hits - hits0) as u64;
            let memo_misses = (self.stats.memo_misses - misses0) as u64;
            let lemmas_replayed = (self.smt.stats().conflicts_reused - replayed0) as u64;
            let phases = phase_base
                .map(|base| synquid_telemetry::snapshot().delta_since(&base))
                .filter(|delta| !delta.is_empty());
            events::emit(|| {
                let mut event = Event::new("node_finish")
                    .uint("node", node)
                    .str("goal", &self.goal_name)
                    .str("status", status)
                    .f64("elapsed_ms", elapsed_ms)
                    .uint("memo_hits", memo_hits)
                    .uint("memo_misses", memo_misses)
                    .uint("lemmas_replayed", lemmas_replayed);
                if let Ok(program) = &result {
                    event = event.str("term", program.to_string());
                }
                if let Some(phases) = &phases {
                    event = event.str("phases", phases.to_json());
                }
                event
            });
        }
        self.current_node = parent;
        result
    }

    fn synthesize_in_node(
        &mut self,
        env: &Environment,
        goal: &RType,
        base_solver: &ConstraintSolver,
        branch_depth: usize,
        match_depth: usize,
    ) -> Result<Program, SynthesisError> {
        self.check_deadline()?;

        // Function goals: introduce lambdas (rule ABS).
        if goal.is_function() {
            let (args, ret) = goal.uncurry();
            let mut inner = env.clone();
            for (name, ty) in &args {
                inner.add_var(name.clone(), ty.clone());
            }
            let body = self.synthesize_in(&inner, &ret, base_solver, branch_depth, match_depth)?;
            let mut program = body;
            for (name, _) in args.iter().rev() {
                program = Program::Abs(name.clone(), Box::new(program));
            }
            return Ok(program);
        }

        // Phase 1: branch-free E-terms with liquid abduction, by increasing
        // application depth so that the smallest correct term is found
        // first and deep enumerations are only paid for when needed. The
        // candidate set at depth `d` contains the depth `d-1` set (memoized
        // generation extends it incrementally), so candidates already
        // checked at a shallower iteration are skipped via `tried`.
        let mut tried: HashSet<Program> = HashSet::new();
        for depth in 0..=self.config.max_app_depth {
            let candidates =
                self.abduction_candidates(env, goal, depth, base_solver, &mut tried)?;
            events::emit(|| {
                Event::new("abduction_candidates")
                    .uint("node", self.current_node)
                    .str("goal", &self.goal_name)
                    .uint("depth", depth as u64)
                    .uint("n", candidates.len() as u64)
            });
            for (program, solver, condition) in candidates {
                self.check_deadline()?;
                if condition.is_true() {
                    return Ok(program);
                }
                if branch_depth == 0 {
                    continue;
                }
                // Synthesize a guard computing the abduced condition.
                let Some(guard) = self.synthesize_guard(env, &condition, base_solver) else {
                    events::emit(|| {
                        Event::new("guard_missing")
                            .uint("node", self.current_node)
                            .str("goal", &self.goal_name)
                            .str("condition", condition.to_string())
                    });
                    continue;
                };
                events::emit(|| {
                    Event::new("guard_found")
                        .uint("node", self.current_node)
                        .str("goal", &self.goal_name)
                        .str("guard", guard.to_string())
                        .str("condition", condition.to_string())
                });
                self.stats.branches_abduced += 1;
                // Synthesize the remaining branch under the negated condition.
                let mut else_env = env.clone();
                else_env.add_path_condition(condition.clone().not());
                match self.synthesize_in(
                    &else_env,
                    goal,
                    base_solver,
                    branch_depth - 1,
                    match_depth,
                ) {
                    Ok(else_branch) => {
                        let _ = solver;
                        return Ok(Program::ite(guard, program, else_branch));
                    }
                    Err(timeout @ SynthesisError::Timeout(_)) => return Err(timeout),
                    Err(SynthesisError::NoSolution(_)) => continue,
                }
            }
        }

        // Phase 2: pattern matches on datatype variables in scope.
        if match_depth > 0 {
            if let Some(program) =
                self.synthesize_match(env, goal, base_solver, branch_depth, match_depth)?
            {
                return Ok(program);
            }
        } else if self.has_match_scrutinee(env) {
            // A match was declined only because the depth bound ran out:
            // a deeper rung could genuinely differ here, so the failure
            // must not be treated as bound-independent.
            self.stats.match_bound_hit = true;
        }

        Err(SynthesisError::NoSolution(goal.to_string()))
    }

    /// Enumerates branch-free candidates for a scalar goal, each together
    /// with the weakest path condition (abduced via a fresh unknown) under
    /// which it satisfies the goal. Candidate *generation* is memoized and
    /// goal-blind (see [`crate::memo`]); this pass replays each generated
    /// candidate against the goal under the abduction unknown `P0`.
    fn abduction_candidates(
        &mut self,
        env: &Environment,
        goal: &RType,
        depth: usize,
        base_solver: &ConstraintSolver,
        tried: &mut HashSet<Program>,
    ) -> Result<Vec<(Program, ConstraintSolver, Term)>, SynthesisError> {
        let shaped = self.generate_for(env, goal, depth, base_solver)?;
        let mut solver = base_solver.clone();
        let p0 = solver.fresh_unknown(env, None, "branch condition");
        let mut cond_env = env.clone();
        cond_env.add_path_condition(p0.clone());
        let mut out = Vec::new();
        for cand in shaped.iter() {
            // The candidate cap bounds *accepted* candidates (as the
            // interleaved enumerator did), never the generated universe.
            if out.len() >= self.config.max_candidates {
                break;
            }
            if !tried.insert(cand.program.clone()) {
                continue;
            }
            if let Some((program, cand_solver)) =
                self.check_shaped(&cond_env, goal, cand, &solver)?
            {
                let condition = cand_solver.apply_assignment(&p0);
                events::emit(|| {
                    Event::new("candidate_accept")
                        .uint("node", self.current_node)
                        .str("goal", &self.goal_name)
                        .str("program", program.to_string())
                        .bool("conditional", !condition.is_true())
                        .str("condition", condition.to_string())
                });
                out.push((program, cand_solver, condition));
            }
        }
        // Prefer candidates that need no branching, then smaller programs.
        out.sort_by_key(|(p, _, cond)| (!cond.is_true() as usize, p.size()));
        Ok(out)
    }

    /// Synthesizes a boolean guard term whose value equals the abduced
    /// condition. Guards must satisfy their goal outright, so candidates
    /// are checked without an abduction unknown.
    fn synthesize_guard(
        &mut self,
        env: &Environment,
        condition: &Term,
        base_solver: &ConstraintSolver,
    ) -> Option<Program> {
        let goal = RType::refined(
            BaseType::Bool,
            Term::value_var(Sort::Bool).iff(condition.clone()),
        );
        let shaped = self
            .generate_for(env, &goal, self.config.guard_depth, base_solver)
            .ok()?;
        for cand in shaped.iter() {
            match self.check_shaped(env, &goal, cand, base_solver) {
                Ok(Some((program, _))) => return Some(program),
                Ok(None) => continue,
                Err(_) => return None,
            }
        }
        None
    }

    // -----------------------------------------------------------------
    // Per-goal candidate checking (round-trip discipline)
    // -----------------------------------------------------------------

    /// Checks one memoized candidate against a goal, in an environment
    /// that may already carry the abduction unknown as a path condition.
    ///
    /// The round-trip order is cheapest-first: a consistency check of the
    /// candidate's type against the goal (one satisfiability query,
    /// amortized by both SMT cache layers) prunes refinement-incompatible
    /// candidates before the full subtyping constraint — with its
    /// fixpoint strengthening — is ever attempted. Returns the completed
    /// program (deferred higher-order arguments synthesized) and the
    /// constraint-solver state after all checks.
    fn check_shaped(
        &mut self,
        cond_env: &Environment,
        goal: &RType,
        cand: &ShapedCandidate,
        base_solver: &ConstraintSolver,
    ) -> Result<Option<(Program, ConstraintSolver)>, SynthesisError> {
        self.check_deadline()?;
        self.stats.eterms_checked += 1;
        let label = cand.program.to_string();
        let mut s = base_solver.clone();
        // Import the cached types: their free unification variables are
        // local to the producing enumeration and must not alias ours.
        let mut rename = BTreeMap::new();
        let ty = s.import_type(&cand.ty, &mut rename);
        let mut cenv = cond_env.clone();
        for (name, extra_ty) in &cand.extras {
            let extra_ty = s.import_type(extra_ty, &mut rename);
            cenv.add_var(name.clone(), extra_ty);
        }
        let pending: Vec<(usize, RType)> = cand
            .pending
            .iter()
            .map(|(i, t)| (*i, s.import_type(t, &mut rename)))
            .collect();
        // Round-trip pruning: the candidate's type must have a common
        // inhabitant with the goal before any strengthening is attempted.
        if self.config.consistency {
            let consistent = {
                let _span = synquid_telemetry::span(Phase::Consistency);
                s.consistent(&cenv, &ty, goal, &mut self.smt, &label)
            };
            if consistent.is_err() {
                events::emit(|| {
                    Event::new("candidate_reject")
                        .uint("node", self.current_node)
                        .str("goal", &self.goal_name)
                        .str("program", &label)
                        .str("reason", "consistency")
                });
                self.stats.pruned_early += 1;
                return Ok(None);
            }
        }
        // Replay the argument-side condition abduced during generation
        // (e.g. `n >= 1` for `dec n` at type `Nat`) against the current
        // branch-condition unknown.
        let required = {
            let _span = synquid_telemetry::span(Phase::Subtyping);
            s.require(&cenv, &cand.condition, &mut self.smt, &label)
        };
        if required.is_err() {
            events::emit(|| {
                Event::new("candidate_reject")
                    .uint("node", self.current_node)
                    .str("goal", &self.goal_name)
                    .str("program", &label)
                    .str("reason", "side-condition")
                    .str("condition", cand.condition.to_string())
            });
            return Ok(None);
        }
        // The full subtyping constraint (liquid abduction happens here).
        let subtyped = {
            let _span = synquid_telemetry::span(Phase::Subtyping);
            s.subtype(&cenv, &ty, goal, &mut self.smt, &label)
        };
        if let Err(e) = subtyped {
            events::emit(|| {
                Event::new("candidate_reject")
                    .uint("node", self.current_node)
                    .str("goal", &self.goal_name)
                    .str("program", &label)
                    .str("reason", "subtype")
                    .str("detail", e.to_string())
            });
            return Ok(None);
        }
        // Synthesize deferred higher-order arguments now that the return
        // type has been unified with the goal.
        let mut program = cand.program.clone();
        if !pending.is_empty() {
            let (head, mut args) = app_parts(&program);
            for (idx, ho_ty) in &pending {
                let concrete = s.finalize(ho_ty);
                match self.synthesize_in(
                    &cenv,
                    &concrete,
                    &s,
                    self.config.max_branch_depth,
                    self.config.max_match_depth,
                ) {
                    Ok(p) => args[*idx] = p,
                    Err(timeout @ SynthesisError::Timeout(_)) => return Err(timeout),
                    Err(SynthesisError::NoSolution(_)) => return Ok(None),
                }
            }
            program = args.into_iter().fold(head, |acc, a| acc.app(a));
        }
        Ok(Some((program, s)))
    }

    // -----------------------------------------------------------------
    // Goal-blind, memoized E-term generation
    // -----------------------------------------------------------------

    /// Generates the candidate set for a goal: concretizes the
    /// environment (path conditions may mention enclosing abduction
    /// unknowns, which the memoized generator must never see) and
    /// dispatches on the goal's shape.
    fn generate_for(
        &mut self,
        env: &Environment,
        goal: &RType,
        depth: usize,
        base_solver: &ConstraintSolver,
    ) -> Result<Arc<Vec<ShapedCandidate>>, SynthesisError> {
        let gen_env = env.map_path_conditions(|t| base_solver.apply_assignment(t));
        let env_key = self.env_key(&gen_env);
        self.generate(&gen_env, &env_key, &goal.shape(), depth)
    }

    /// The memo-key prefix for an environment: its canonical fingerprint
    /// plus every configuration knob that changes what generation
    /// produces. Two runs sharing a [`SolverContext`] only share cache
    /// entries when both the environment *and* these knobs agree —
    /// otherwise an ablation variant could synthesize from sets generated
    /// under a different configuration.
    fn env_key(&self, env: &Environment) -> String {
        format!(
            "{};cfg rt:{} cc:{} mus:{} args:{}",
            env.fingerprint(),
            self.config.round_trip,
            self.config.consistency,
            self.config.use_musfix,
            self.config.max_arg_candidates,
        )
    }

    /// Enumerates all well-shaped candidate programs of the given shape
    /// in the given environment, up to the given application depth.
    /// Argument obligations (termination metrics, preconditions) are
    /// validated against the heads' declared types, under a fresh
    /// *argument-condition* unknown so obligations that only hold under a
    /// branch condition survive as conditional candidates. The result is
    /// a pure function of `(environment, configuration, shape, depth)`
    /// and is memoized. `env_key` must be [`Synthesizer::env_key`] of
    /// `env` — it is threaded as a parameter because the whole recursive
    /// generation pass works in one environment, and serializing it once
    /// per pass instead of once per lookup keeps the memo probe cheap.
    fn generate(
        &mut self,
        env: &Environment,
        env_key: &str,
        shape: &RType,
        depth: usize,
    ) -> Result<Arc<Vec<ShapedCandidate>>, SynthesisError> {
        self.check_deadline()?;
        // Recursive calls nest `Generation` spans; self-time attribution
        // charges each level only for its own work, so the phase total
        // stays additive however deep the enumeration recurses.
        let _generation_span = synquid_telemetry::span(Phase::Generation);
        let key = (env_key.to_string(), shape_key(shape), depth);
        if self.config.memoize {
            let found = {
                let _memo_span = synquid_telemetry::span(Phase::MemoLookup);
                self.memo.lookup(&key)
            };
            if let Some(found) = found {
                self.stats.memo_hits += 1;
                events::emit(|| {
                    Event::new("cache_hit")
                        .str("layer", "enum-memo")
                        .uint("node", self.current_node)
                });
                self.note_frontier(depth, found.grew);
                return Ok(found.set);
            }
            self.stats.memo_misses += 1;
            events::emit(|| {
                Event::new("cache_miss")
                    .str("layer", "enum-memo")
                    .uint("node", self.current_node)
            });
        }
        let mut out: Vec<ShapedCandidate> = Vec::new();
        let mut seen: HashSet<Program> = HashSet::new();
        let mut below_len = 0usize;
        if depth == 0 {
            self.generate_leaves(env, shape, &mut out);
        } else {
            // Level `d` extends level `d-1`: reuse its (memoized) set and
            // add applications whose arguments draw from level `d-1`.
            let below = self.generate(env, env_key, shape, depth - 1)?;
            below_len = below.len();
            out.extend(below.iter().cloned());
            seen.extend(below.iter().map(|c| c.program.clone()));
            self.generate_applications(env, env_key, shape, depth, &mut out, &mut seen)?;
        }
        // Symmetry / cost ordering: size first, then program text, so
        // candidate order is deterministic whatever produced the set.
        // Generated sets are *complete* for their bounds (the
        // `max_candidates` cap applies to goal-passing candidates in the
        // per-goal pass, not to the goal-blind universe — truncating here
        // would silently drop programs some goal needs).
        out.sort_by_cached_key(|c| (c.size, c.program.to_string()));
        // A depth-0 set counts as "grown": a deeper bound enables
        // applications that no depth-0 set can contain.
        let grew = depth == 0 || out.len() > below_len;
        let out = Arc::new(out);
        if self.config.memoize {
            self.memo.insert(
                key,
                GenerationEntry {
                    set: out.clone(),
                    grew,
                },
            );
        }
        self.note_frontier(depth, grew);
        Ok(out)
    }

    /// Records whether the candidate universe is still growing at this
    /// run's application-depth frontier. Only generation requests *at*
    /// the configured maximum depth matter: they are exactly the sets a
    /// deeper rung would extend first.
    fn note_frontier(&mut self, depth: usize, grew: bool) {
        if depth == self.config.max_app_depth && grew {
            self.stats.frontier_open = true;
        }
    }

    /// True if the environment offers a match scrutinee (a monomorphic
    /// datatype-typed scalar variable) — the condition under which an
    /// exhausted match-depth bound actually constrained the search.
    fn has_match_scrutinee(&self, env: &Environment) -> bool {
        env.var_names().iter().any(|name| {
            env.lookup(name).is_some_and(|schema| {
                schema.is_monomorphic()
                    && matches!(
                        schema.ty.base_type(),
                        Some(BaseType::Data(dt, _)) if env.datatype(dt).is_some()
                    )
            })
        })
    }

    /// Depth-0 candidates: literals (for the exact primitive shapes) and
    /// scalar variables whose shape fits.
    fn generate_leaves(
        &mut self,
        env: &Environment,
        shape: &RType,
        out: &mut Vec<ShapedCandidate>,
    ) {
        match shape.base_type() {
            Some(BaseType::Int) => {
                // Integer literals as nullary components (the paper's
                // benchmarks bind `0` as a component; accepting the
                // literal directly keeps the guard and SyGuS benchmarks
                // independent of naming).
                for lit in [0i64, 1] {
                    self.stats.terms_enumerated += 1;
                    out.push(ShapedCandidate {
                        program: Program::IntLit(lit),
                        size: 1,
                        ty: RType::refined(
                            BaseType::Int,
                            Term::value_var(Sort::Int).eq(Term::int(lit)),
                        ),
                        extras: Vec::new(),
                        condition: Term::tt(),
                        pending: Vec::new(),
                    });
                }
            }
            Some(BaseType::Bool) => {
                for lit in [true, false] {
                    self.stats.terms_enumerated += 1;
                    out.push(ShapedCandidate {
                        program: Program::BoolLit(lit),
                        size: 1,
                        ty: RType::refined(
                            BaseType::Bool,
                            Term::value_var(Sort::Bool).iff(Term::BoolLit(lit)),
                        ),
                        extras: Vec::new(),
                        condition: Term::tt(),
                        pending: Vec::new(),
                    });
                }
            }
            _ => {}
        }
        // Variables and components (rules VARSC and VAR∀). One local
        // solver instantiates polymorphic schemas; leaf candidates do not
        // interact, so sharing its fresh-variable counter is fine (and
        // deterministic).
        let mut gs = ConstraintSolver::new(self.fixpoint_config());
        let names: Vec<String> = env.var_names().to_vec();
        for name in &names {
            let Some(schema) = env.lookup(name).cloned() else {
                continue;
            };
            let instantiated = gs.instantiate_schema(&schema);
            if instantiated.is_function() || !shapes_compatible(&instantiated, shape) {
                continue;
            }
            self.stats.terms_enumerated += 1;
            out.push(ShapedCandidate {
                program: Program::var(name.clone()),
                size: 1,
                ty: env.singleton_type(name, &instantiated),
                extras: Vec::new(),
                condition: Term::tt(),
                pending: Vec::new(),
            });
        }
    }

    /// Applications (rules APPFO and APPHO) at the given depth, with
    /// arguments drawn from the memoized level below.
    fn generate_applications(
        &mut self,
        env: &Environment,
        env_key: &str,
        shape: &RType,
        depth: usize,
        out: &mut Vec<ShapedCandidate>,
        seen: &mut HashSet<Program>,
    ) -> Result<(), SynthesisError> {
        /// One partially-built application: chosen arguments, the solver
        /// threading their checks, bindings for application-valued
        /// arguments, the substitution of formals, and deferred
        /// higher-order positions.
        struct GenPartial {
            args: Vec<Program>,
            solver: ConstraintSolver,
            extras: Vec<(String, RType)>,
            subst: Substitution,
            pending: Vec<(usize, RType)>,
        }

        let names: Vec<String> = env.var_names().to_vec();
        for head in &names {
            self.check_deadline()?;
            let Some(schema) = env.lookup(head).cloned() else {
                continue;
            };
            let mut gs = ConstraintSolver::new(self.fixpoint_config());
            gs.consistency_enabled = self.config.consistency;
            let fty = gs.instantiate_schema(&schema);
            if !fty.is_function() {
                continue;
            }
            let (fargs, fret) = fty.uncurry();
            // Round-trip shape pruning: a head whose return shape cannot
            // fit the target shape is dropped before any argument work.
            // Disabled under the T-nrt ablation, where ill-shaped
            // applications are built in full and rejected only by the
            // final per-goal check — the cost the paper's round-trip
            // discipline exists to avoid.
            if self.config.round_trip && !shapes_compatible(&fret, shape) {
                self.stats.pruned_early += 1;
                continue;
            }
            // The argument-condition unknown: argument obligations that
            // only hold under a (later-abduced) branch condition
            // strengthen this unknown instead of failing outright.
            let pg = gs.fresh_unknown(env, None, "argument condition");
            let mut genv = env.clone();
            genv.add_path_condition(pg.clone());

            let mut partials = vec![GenPartial {
                args: Vec::new(),
                solver: gs,
                extras: Vec::new(),
                subst: Substitution::new(),
                pending: Vec::new(),
            }];
            for (i, (formal, arg_ty)) in fargs.iter().enumerate() {
                let mut next = Vec::new();
                for partial in partials {
                    self.check_deadline()?;
                    let expected = arg_ty.substitute(&partial.subst);
                    let resolved = partial.solver.resolve(&expected);
                    if resolved.is_function() {
                        // Higher-order argument: defer until the rest of
                        // the application has determined its type (APPHO;
                        // this is how auxiliary functions such as the
                        // folding operation of `sort` are discovered).
                        let mut pending = partial.pending.clone();
                        pending.push((i, expected));
                        let mut args = partial.args.clone();
                        args.push(Program::Hole);
                        next.push(GenPartial {
                            args,
                            solver: partial.solver,
                            extras: partial.extras,
                            subst: partial.subst,
                            pending,
                        });
                        continue;
                    }
                    let arg_cands = self.generate(env, env_key, &resolved.shape(), depth - 1)?;
                    let mut taken = 0usize;
                    for (ordinal, cand) in arg_cands.iter().enumerate() {
                        if taken >= self.config.max_arg_candidates {
                            break;
                        }
                        // A candidate with unfilled higher-order holes
                        // cannot serve as an argument: its holes could
                        // only be completed against a concrete goal.
                        if !cand.pending.is_empty() {
                            continue;
                        }
                        let mut s = partial.solver.clone();
                        let mut rename = BTreeMap::new();
                        let ty = s.import_type(&cand.ty, &mut rename);
                        let extras: Vec<(String, RType)> = cand
                            .extras
                            .iter()
                            .map(|(n, t)| (n.clone(), s.import_type(t, &mut rename)))
                            .collect();
                        let mut cenv = genv.clone();
                        for (n, t) in partial.extras.iter().chain(extras.iter()) {
                            cenv.add_var(n.clone(), t.clone());
                        }
                        let label = format!("{head}:arg{i}");
                        // Replay the argument's own side condition, then
                        // check it against the declared argument type.
                        if s.require(&cenv, &cand.condition, &mut self.smt, &label)
                            .is_err()
                        {
                            continue;
                        }
                        if s.subtype(&cenv, &ty, &expected, &mut self.smt, &label)
                            .is_err()
                        {
                            continue;
                        }
                        taken += 1;
                        let mut subst = partial.subst.clone();
                        let mut chain_extras = partial.extras.clone();
                        chain_extras.extend(extras);
                        match &cand.program {
                            // Monomorphic variables and literals
                            // substitute directly for the formal (their
                            // facts are re-derivable from the
                            // environment); polymorphic variables — most
                            // importantly nullary constructors such as
                            // `Nil`, whose defining facts live only in
                            // the instantiated singleton type — and
                            // application-valued arguments need an
                            // intermediate binding. The binder name is
                            // derived from the candidate's position so
                            // memoized entries are identical whichever
                            // run generates them.
                            Program::Var(v)
                                if env.lookup(v).is_some_and(|s| s.is_monomorphic()) =>
                            {
                                subst.insert(formal.clone(), Term::var(v.clone(), ty.sort()));
                            }
                            Program::IntLit(k) => {
                                subst.insert(formal.clone(), Term::int(*k));
                            }
                            Program::BoolLit(b) => {
                                subst.insert(formal.clone(), Term::BoolLit(*b));
                            }
                            _ => {
                                let binder = format!("__m{depth}_{head}_{i}_{ordinal}");
                                subst.insert(formal.clone(), Term::var(binder.clone(), ty.sort()));
                                chain_extras.push((binder, ty));
                            }
                        }
                        let mut args = partial.args.clone();
                        args.push(cand.program.clone());
                        next.push(GenPartial {
                            args,
                            solver: s,
                            extras: chain_extras,
                            subst,
                            pending: partial.pending.clone(),
                        });
                    }
                }
                partials = next;
                // Deterministic safety bound against pathological argument
                // fan-out (the per-position `max_arg_candidates` cap keeps
                // this far out of reach for real component libraries).
                partials.truncate(2048);
                if partials.is_empty() {
                    break;
                }
            }

            for partial in partials {
                let program = partial
                    .args
                    .iter()
                    .cloned()
                    .fold(Program::var(head.clone()), |acc, a| acc.app(a));
                if !seen.insert(program.clone()) {
                    continue;
                }
                let ret = fret.substitute(&partial.subst);
                let ty = partial.solver.finalize(&ret);
                let extras: Vec<(String, RType)> = partial
                    .extras
                    .iter()
                    .map(|(n, t)| (n.clone(), partial.solver.finalize(t)))
                    .collect();
                let pending: Vec<(usize, RType)> = partial
                    .pending
                    .iter()
                    .map(|(i, t)| (*i, partial.solver.finalize(t)))
                    .collect();
                let condition = partial.solver.apply_assignment(&pg);
                self.stats.terms_enumerated += 1;
                out.push(ShapedCandidate {
                    size: program.size(),
                    program,
                    ty,
                    extras,
                    condition,
                    pending,
                });
            }
        }
        Ok(())
    }
}

/// Splits an application chain into its head and argument list.
fn app_parts(p: &Program) -> (Program, Vec<Program>) {
    match p {
        Program::App(f, a) => {
            let (head, mut args) = app_parts(f);
            args.push((**a).clone());
            (head, args)
        }
        other => (other.clone(), Vec::new()),
    }
}

/// Shape compatibility for generation-time pruning: can a value of shape
/// `s` possibly be used where shape `t` is expected? Free unification
/// type variables match anything (they will be unified by the actual
/// subtyping check); rigid variables only match themselves.
fn shapes_compatible(s: &RType, t: &RType) -> bool {
    match (s, t) {
        (RType::Scalar { base: bs, .. }, RType::Scalar { base: bt, .. }) => {
            base_shapes_compatible(bs, bt)
        }
        // Function-against-function compatibility is left to subtyping.
        (RType::Function { .. }, RType::Function { .. }) => true,
        (RType::Any, _) | (_, RType::Any) | (RType::Bot, _) | (_, RType::Bot) => true,
        _ => false,
    }
}

fn base_shapes_compatible(s: &BaseType, t: &BaseType) -> bool {
    match (s, t) {
        (BaseType::TypeVar(a), _) if is_free_type_var(a) => true,
        (_, BaseType::TypeVar(a)) if is_free_type_var(a) => true,
        (BaseType::TypeVar(a), BaseType::TypeVar(b)) => a == b,
        (BaseType::Int, BaseType::Int) | (BaseType::Bool, BaseType::Bool) => true,
        (BaseType::Data(n1, a1), BaseType::Data(n2, a2)) => {
            n1 == n2
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| shapes_compatible(x, y))
        }
        _ => false,
    }
}

impl Synthesizer {
    /// Attempts to synthesize a pattern match on some datatype variable in
    /// scope (the MATCH rule, with the scrutinee restricted to variables).
    fn synthesize_match(
        &mut self,
        env: &Environment,
        goal: &RType,
        base_solver: &ConstraintSolver,
        branch_depth: usize,
        match_depth: usize,
    ) -> Result<Option<Program>, SynthesisError> {
        // Candidate scrutinees: datatype-typed scalar variables, in
        // binding order (function arguments before pattern variables, both
        // before anything a library component could contribute). Matching
        // the first-bound argument first mirrors the paper's examples,
        // where structural recursion is on the leading list/tree argument;
        // trying the most recently bound variable first instead sends
        // goals like `append` into a doomed match on the *second* list,
        // whose Cons branch has no terminating recursive call and burns
        // the whole budget before the right scrutinee is tried.
        let mut scrutinees: Vec<(String, String, Vec<RType>)> = Vec::new();
        for name in env.var_names().iter() {
            if let Some(schema) = env.lookup(name) {
                if !schema.is_monomorphic() {
                    continue;
                }
                if let Some(BaseType::Data(dt, targs)) = schema.ty.base_type() {
                    if env.datatype(dt).is_some() {
                        scrutinees.push((name.clone(), dt.clone(), targs.clone()));
                    }
                }
            }
        }
        'scrutinee: for (scrut, dt_name, targs) in scrutinees {
            self.check_deadline()?;
            let Some(dt) = env.datatype(&dt_name).cloned() else {
                continue;
            };
            let scrut_sort = Sort::Data(dt_name.clone(), targs.iter().map(|t| t.sort()).collect());
            let mut cases = Vec::new();
            for ctor in &dt.constructors {
                // Instantiate the constructor at the scrutinee's type args.
                let con_ty = ctor.schema.instantiate(&targs);
                let (cargs, cret) = con_ty.uncurry();
                let mut case_env = env.clone();
                let mut rename = Substitution::new();
                let mut binders = Vec::new();
                for (formal, ty) in &cargs {
                    let binder = self.fresh_name(&format!("{}_{}", scrut, formal));
                    let bound_ty = ty.substitute(&rename);
                    rename.insert(formal.clone(), Term::var(binder.clone(), bound_ty.sort()));
                    case_env.add_var(binder.clone(), bound_ty);
                    binders.push(binder);
                }
                // Path fact: the constructor's result refinement, with ν
                // replaced by the scrutinee and formals by the binders.
                let fact = cret
                    .refinement()
                    .substitute(&rename)
                    .substitute_value(&Term::var(scrut.clone(), scrut_sort.clone()));
                case_env.add_path_condition(fact);
                self.stats.matches_generated += 1;
                events::emit(|| {
                    Event::new("match_case")
                        .uint("node", self.current_node)
                        .str("goal", &self.goal_name)
                        .str("scrutinee", &scrut)
                        .str("constructor", &ctor.name)
                });
                match self.synthesize_in(
                    &case_env,
                    goal,
                    base_solver,
                    branch_depth,
                    match_depth - 1,
                ) {
                    Ok(body) => cases.push(Case {
                        constructor: ctor.name.clone(),
                        binders,
                        body,
                    }),
                    Err(timeout @ SynthesisError::Timeout(_)) => return Err(timeout),
                    Err(SynthesisError::NoSolution(_)) => {
                        events::emit(|| {
                            Event::new("match_case_failed")
                                .uint("node", self.current_node)
                                .str("goal", &self.goal_name)
                                .str("scrutinee", &scrut)
                                .str("constructor", &ctor.name)
                        });
                        continue 'scrutinee;
                    }
                }
            }
            if cases.len() == dt.constructors.len() {
                return Ok(Some(Program::Match(Box::new(Program::var(scrut)), cases)));
            }
        }
        Ok(None)
    }
}

/// True if the program mentions the given variable name.
fn program_mentions(p: &Program, name: &str) -> bool {
    match p {
        Program::Var(v) => v == name,
        Program::App(f, a) => program_mentions(f, name) || program_mentions(a, name),
        Program::Abs(_, b) | Program::Fix(_, b) => program_mentions(b, name),
        Program::If(c, t, e) => {
            program_mentions(c, name) || program_mentions(t, name) || program_mentions(e, name)
        }
        Program::Match(s, cases) => {
            program_mentions(s, name) || cases.iter().any(|c| program_mentions(&c.body, name))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synquid_logic::Qualifier;
    use synquid_types::list_datatype;

    /// Components 0, inc, dec, leq, neq used across the paper's examples.
    fn int_components(env: &mut Environment) {
        env.add_var(
            "zero",
            RType::refined(BaseType::Int, Term::value_var(Sort::Int).eq(Term::int(0))),
        );
        env.add_var(
            "inc",
            RType::fun(
                "x",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("x", Sort::Int).plus(Term::int(1))),
                ),
            ),
        );
        env.add_var(
            "dec",
            RType::fun(
                "x",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("x", Sort::Int).minus(Term::int(1))),
                ),
            ),
        );
        env.add_var(
            "leq",
            RType::fun_n(
                vec![("x".into(), RType::int()), ("y".into(), RType::int())],
                RType::refined(
                    BaseType::Bool,
                    Term::value_var(Sort::Bool)
                        .iff(Term::var("x", Sort::Int).le(Term::var("y", Sort::Int))),
                ),
            ),
        );
    }

    fn base_env() -> Environment {
        let mut env = Environment::new();
        env.add_qualifiers(Qualifier::standard(Sort::Int));
        env
    }

    #[test]
    fn synthesizes_the_identity_like_projection() {
        // max-of-one: n: Int → {Int | ν = n} should synthesize `n`.
        let env = base_env();
        let goal = Goal::new(
            "id",
            env,
            Schema::monotype(RType::fun(
                "n",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int)),
                ),
            )),
        );
        let mut syn = Synthesizer::new(SynthesisConfig::default());
        let result = syn.synthesize(&goal).expect("id should synthesize");
        assert_eq!(result.program.to_string(), "\\n . n");
    }

    #[test]
    fn synthesizes_successor_with_a_component() {
        // n: Int → {Int | ν = n + 1} requires applying inc.
        let mut env = base_env();
        int_components(&mut env);
        let goal = Goal::new(
            "succ",
            env,
            Schema::monotype(RType::fun(
                "n",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int).plus(Term::int(1))),
                ),
            )),
        );
        let mut syn = Synthesizer::new(SynthesisConfig::default());
        let result = syn.synthesize(&goal).expect("succ should synthesize");
        assert_eq!(result.program.to_string(), "\\n . inc n");
    }

    #[test]
    fn ablations_synthesize_the_same_program_with_different_effort() {
        // Every ablation variant must still find `inc n` — the switches
        // trade search effort, never soundness or completeness on a goal
        // this small. T-nrt (no round-trip shape pruning) must generate
        // strictly more candidates than the default, which proves the
        // flag is actually wired into the new enumeration.
        let build = || {
            let mut env = base_env();
            int_components(&mut env);
            Goal::new(
                "succ",
                env,
                Schema::monotype(RType::fun(
                    "n",
                    RType::int(),
                    RType::refined(
                        BaseType::Int,
                        Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int).plus(Term::int(1))),
                    ),
                )),
            )
        };
        let mut default_syn = Synthesizer::new(SynthesisConfig::default());
        let default_result = default_syn.synthesize(&build()).expect("default solves");
        for config in [
            SynthesisConfig::default().without_round_trip(),
            SynthesisConfig::default().without_consistency(),
            SynthesisConfig::default().without_musfix(),
            SynthesisConfig::default().without_memoization(),
        ] {
            let no_round_trip = !config.round_trip;
            let mut syn = Synthesizer::new(config);
            let result = syn.synthesize(&build()).expect("ablation still solves");
            assert_eq!(result.program, default_result.program);
            if no_round_trip {
                assert!(
                    result.stats.terms_enumerated > default_result.stats.terms_enumerated,
                    "T-nrt must expand ill-shaped heads the default prunes \
                     (the flag would be dead): {} vs {}",
                    result.stats.terms_enumerated,
                    default_result.stats.terms_enumerated
                );
            }
        }
        assert!(
            default_syn.stats().pruned_early > 0,
            "the default configuration prunes ill-shaped heads early"
        );
    }

    #[test]
    fn synthesizes_max_of_two_with_liquid_abduction() {
        // max2 :: x: Int → y: Int → {Int | ν ≥ x ∧ ν ≥ y ∧ (ν = x ∨ ν = y)}
        let mut env = base_env();
        int_components(&mut env);
        let nu = || Term::value_var(Sort::Int);
        let x = || Term::var("x", Sort::Int);
        let y = || Term::var("y", Sort::Int);
        let ret = RType::refined(
            BaseType::Int,
            nu().ge(x())
                .and(nu().ge(y()))
                .and(nu().eq(x()).or(nu().eq(y()))),
        );
        let goal = Goal::new(
            "max2",
            env,
            Schema::monotype(RType::fun_n(
                vec![("x".into(), RType::int()), ("y".into(), RType::int())],
                ret,
            )),
        );
        let mut syn = Synthesizer::new(SynthesisConfig::default());
        let result = syn.synthesize(&goal).expect("max2 should synthesize");
        let text = result.program.to_string();
        assert!(text.contains("if"), "expected a conditional, got:\n{text}");
        assert!(result.stats.branches_abduced >= 1);
        // Both branches return one of the arguments.
        assert!(text.contains('x') && text.contains('y'));
    }

    #[test]
    fn rejects_goals_with_no_solution() {
        // n: Int → {Int | ν = n + 2} with only `inc` available at depth 1.
        let mut env = base_env();
        int_components(&mut env);
        let goal = Goal::new(
            "plus-two",
            env,
            Schema::monotype(RType::fun(
                "n",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int).plus(Term::int(2))),
                ),
            )),
        );
        let config = SynthesisConfig {
            max_app_depth: 1,
            max_match_depth: 0,
            ..SynthesisConfig::default()
        };
        let mut syn = Synthesizer::new(config);
        assert!(matches!(
            syn.synthesize(&goal),
            Err(SynthesisError::NoSolution(_))
        ));
        // With depth 2 it becomes solvable: inc (inc n).
        let mut env = base_env();
        int_components(&mut env);
        let goal = Goal::new(
            "plus-two",
            env,
            Schema::monotype(RType::fun(
                "n",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int).plus(Term::int(2))),
                ),
            )),
        );
        let mut syn = Synthesizer::new(SynthesisConfig::default());
        let result = syn.synthesize(&goal).expect("plus-two at depth 2");
        assert_eq!(result.program.to_string(), "\\n . inc (inc n)");
    }

    #[test]
    fn synthesizes_list_head_preserving_polymorphism() {
        // A monomorphic projection through a datatype: given xs with
        // len xs = 0 in the environment, the goal {List a | len ν = 0}
        // is satisfied by xs itself (no constructors needed).
        let mut env = base_env();
        env.add_datatype(list_datatype());
        let list_sort = Sort::data("List", vec![Sort::var("a")]);
        let len_v = Term::app("len", vec![Term::value_var(list_sort.clone())], Sort::Int);
        env.add_var(
            "xs",
            RType::refined(
                BaseType::Data("List".into(), vec![RType::tyvar("a")]),
                len_v.clone().eq(Term::int(0)),
            ),
        );
        let goal = Goal::new(
            "empty_copy",
            env,
            Schema::forall(
                vec!["a".to_string()],
                RType::refined(
                    BaseType::Data("List".into(), vec![RType::tyvar("a")]),
                    len_v.eq(Term::int(0)),
                ),
            ),
        );
        let mut syn = Synthesizer::new(SynthesisConfig::default());
        let result = syn.synthesize(&goal).expect("should reuse xs or Nil");
        let text = result.program.to_string();
        assert!(text == "xs" || text == "Nil", "got {text}");
    }
}
