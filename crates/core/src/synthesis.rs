//! The synthesis procedure (Sec. 3.7), built on round-trip type checking.
//!
//! Given a goal schema, the synthesizer introduces a fixpoint (with a
//! termination-weakened recursive binding), type abstractions, and lambda
//! abstractions, then enumerates well-typed E-terms for the scalar body:
//!
//! * every E-term candidate is checked against the goal *as it is built*
//!   (round-trip checking): partial applications are pruned by early
//!   subtyping and consistency checks before their arguments are
//!   synthesized;
//! * a fresh predicate unknown `P0` is conjoined to the path condition
//!   before checking each candidate, so the Horn solver *abduces* the
//!   weakest branch condition under which the candidate is correct
//!   (liquid abduction / rule IF-ABD);
//! * if no branch-free term (or conditional) works, the synthesizer
//!   generates a pattern match on a datatype variable in scope and
//!   recurses into the branches.

use crate::ast::{Case, Program};
use crate::context::{CancellationToken, SolverContext};
use crate::options::SynthesisConfig;
use std::time::Instant;
use synquid_horn::{FixpointConfig, StrengthenBackend};
use synquid_logic::{Sort, Substitution, Term};
use synquid_solver::Smt;
use synquid_types::{weaken_for_recursion, BaseType, ConstraintSolver, Environment, RType, Schema};

/// A synthesis goal: a name, an environment of components, and the goal
/// schema.
#[derive(Debug, Clone)]
pub struct Goal {
    /// Name of the function being synthesized (used for recursive calls).
    pub name: String,
    /// The component environment.
    pub env: Environment,
    /// The goal type schema.
    pub schema: Schema,
}

impl Goal {
    /// Creates a goal.
    pub fn new(name: impl Into<String>, env: Environment, schema: Schema) -> Goal {
        Goal {
            name: name.into(),
            env,
            schema,
        }
    }
}

/// Why synthesis failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// The search space was exhausted without finding a solution.
    NoSolution(String),
    /// The configured timeout was exceeded (or the run was cancelled)
    /// while synthesizing the named goal.
    Timeout(String),
}

impl SynthesisError {
    /// The goal name a timeout was attributed to, if any. Batch runners
    /// use this to report *which* goal ran out of budget.
    pub fn goal_name(&self) -> Option<&str> {
        match self {
            SynthesisError::Timeout(name) => Some(name),
            SynthesisError::NoSolution(_) => None,
        }
    }
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::NoSolution(goal) => write!(f, "no solution found for goal {goal}"),
            SynthesisError::Timeout(goal) => write!(f, "goal {goal}: synthesis timed out"),
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Statistics collected during one synthesis run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SynthesisStats {
    /// E-term candidates whose types were checked.
    pub eterms_checked: usize,
    /// Conditionals created through liquid abduction.
    pub branches_abduced: usize,
    /// Pattern matches generated.
    pub matches_generated: usize,
    /// Wall-clock seconds spent.
    pub elapsed_secs: f64,
    /// Validity/satisfiability queries issued to the SMT backend
    /// (including ones answered from either cache layer).
    pub smt_queries: usize,
    /// Queries answered by the instance-local memo.
    pub smt_cache_hits: usize,
    /// Queries answered by the shared validity cache (zero when the run
    /// has no [`SolverContext`] cache attached).
    pub shared_cache_hits: usize,
    /// Subset of `shared_cache_hits` whose cached verdict was negative
    /// (`Unsat`), i.e. a previously proven entailment was reused.
    pub shared_negative_hits: usize,
    /// Queries that consulted the shared validity cache and missed.
    pub shared_cache_misses: usize,
}

/// A successfully synthesized program together with statistics.
#[derive(Debug, Clone)]
pub struct Synthesized {
    /// The program.
    pub program: Program,
    /// Statistics of the run.
    pub stats: SynthesisStats,
}

/// One enumerated E-term candidate: the program, the constraint-solver
/// state after all its checks, the environment extended with the bindings
/// of its intermediate results, and its strengthened type.
#[derive(Debug, Clone)]
struct Candidate {
    program: Program,
    solver: ConstraintSolver,
    env: Environment,
    ty: RType,
}

/// The synthesizer.
#[derive(Debug)]
pub struct Synthesizer {
    config: SynthesisConfig,
    /// The shared SMT solver (statistics survive backtracking).
    pub smt: Smt,
    cancel: CancellationToken,
    deadline: Instant,
    stats: SynthesisStats,
    /// Name of the goal currently being synthesized, for timeout
    /// attribution in batch runs.
    goal_name: String,
    fresh_counter: usize,
}

impl Synthesizer {
    /// Creates a standalone synthesizer: no shared validity cache, a
    /// fresh cancellation token.
    pub fn new(config: SynthesisConfig) -> Synthesizer {
        Synthesizer::with_context(config, &SolverContext::new())
    }

    /// Creates a synthesizer wired into a shared solver context: its SMT
    /// backend feeds (and is fed by) the context's validity cache, and
    /// the run stops early when the context's token is cancelled.
    pub fn with_context(config: SynthesisConfig, context: &SolverContext) -> Synthesizer {
        let deadline = Instant::now() + config.timeout;
        Synthesizer {
            config,
            smt: context.make_smt(),
            cancel: context.cancel.clone(),
            deadline,
            stats: SynthesisStats::default(),
            goal_name: String::new(),
            fresh_counter: 0,
        }
    }

    /// Statistics of the last run, with the SMT-level counters (queries,
    /// cache hits/misses) folded in.
    pub fn stats(&self) -> SynthesisStats {
        let mut stats = self.stats;
        let smt = self.smt.stats();
        stats.smt_queries = smt.queries;
        stats.smt_cache_hits = smt.cache_hits;
        stats.shared_cache_hits = smt.shared_hits;
        stats.shared_negative_hits = smt.shared_negative_hits;
        stats.shared_cache_misses = smt.shared_misses;
        stats
    }

    fn fixpoint_config(&self) -> FixpointConfig {
        FixpointConfig {
            backend: if self.config.use_musfix {
                StrengthenBackend::Musfix
            } else {
                StrengthenBackend::NaiveBfs
            },
            ..FixpointConfig::default()
        }
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        let n = self.fresh_counter;
        self.fresh_counter += 1;
        format!("__{prefix}{n}")
    }

    fn check_deadline(&self) -> Result<(), SynthesisError> {
        if Instant::now() > self.deadline || self.cancel.is_cancelled() {
            Err(SynthesisError::Timeout(self.goal_name.clone()))
        } else {
            Ok(())
        }
    }

    /// Synthesizes a program for the goal.
    pub fn synthesize(&mut self, goal: &Goal) -> Result<Synthesized, SynthesisError> {
        let start = Instant::now();
        let result = self.synthesize_goal(goal, start);
        // Record wall time on failures too: [`Synthesizer::stats`] (and
        // `RunResult::stats`) are meaningful for timed-out runs.
        self.stats.elapsed_secs = start.elapsed().as_secs_f64();
        result
    }

    fn synthesize_goal(
        &mut self,
        goal: &Goal,
        start: Instant,
    ) -> Result<Synthesized, SynthesisError> {
        self.deadline = start + self.config.timeout;
        self.goal_name = goal.name.clone();
        let mut env = goal.env.clone();
        env.add_qualifiers_from_type(&goal.schema.ty);

        let mut solver = ConstraintSolver::new(self.fixpoint_config());
        solver.consistency_enabled = self.config.consistency;

        let (args, ret) = goal.schema.ty.uncurry();
        let arg_names: Vec<String> = args.iter().map(|(n, _)| n.clone()).collect();
        let recursive = weaken_for_recursion(&env, &goal.schema, &arg_names);
        if let Some(weakened) = &recursive {
            env.add_var(goal.name.clone(), weakened.clone());
        }
        for (name, ty) in &args {
            env.add_var(name.clone(), ty.clone());
        }

        let body = self.synthesize_in(
            &env,
            &ret,
            &solver,
            self.config.max_branch_depth,
            self.config.max_match_depth,
        )?;

        let mut program = body;
        for (name, _) in args.iter().rev() {
            program = Program::Abs(name.clone(), Box::new(program));
        }
        if recursive.is_some() && program_mentions(&program, &goal.name) {
            program = Program::Fix(goal.name.clone(), Box::new(program));
        }
        self.stats.elapsed_secs = start.elapsed().as_secs_f64();
        Ok(Synthesized {
            program,
            // `stats()` folds in the SMT counters; `elapsed_secs` was
            // just set, and the caller refreshes it once more on return.
            stats: self.stats(),
        })
    }

    /// Synthesizes a term of the given (possibly functional) goal type.
    fn synthesize_in(
        &mut self,
        env: &Environment,
        goal: &RType,
        base_solver: &ConstraintSolver,
        branch_depth: usize,
        match_depth: usize,
    ) -> Result<Program, SynthesisError> {
        self.check_deadline()?;
        crate::trace!(
            "synthesize_in goal={goal} branch_depth={branch_depth} match_depth={match_depth}"
        );

        // Function goals: introduce lambdas (rule ABS).
        if goal.is_function() {
            let (args, ret) = goal.uncurry();
            let mut inner = env.clone();
            for (name, ty) in &args {
                inner.add_var(name.clone(), ty.clone());
            }
            let body = self.synthesize_in(&inner, &ret, base_solver, branch_depth, match_depth)?;
            let mut program = body;
            for (name, _) in args.iter().rev() {
                program = Program::Abs(name.clone(), Box::new(program));
            }
            return Ok(program);
        }

        // Phase 1: branch-free E-terms with liquid abduction, by increasing
        // application depth so that the smallest correct term is found
        // first and deep enumerations are only paid for when needed.
        for depth in 0..=self.config.max_app_depth {
            let candidates = self.abduction_candidates(env, goal, depth, base_solver)?;
            crate::trace!("depth {depth}: {} abduction candidates", candidates.len());
            for (program, solver, condition) in candidates {
                self.check_deadline()?;
                crate::trace!("  candidate {program} under condition {condition}");
                if condition.is_true() {
                    return Ok(program);
                }
                if branch_depth == 0 {
                    continue;
                }
                // Synthesize a guard computing the abduced condition.
                let Some(guard) = self.synthesize_guard(env, &condition, base_solver) else {
                    crate::trace!("  no guard found for condition {condition}");
                    continue;
                };
                crate::trace!("  guard {guard} for condition {condition}");
                self.stats.branches_abduced += 1;
                // Synthesize the remaining branch under the negated condition.
                let mut else_env = env.clone();
                else_env.add_path_condition(condition.clone().not());
                match self.synthesize_in(
                    &else_env,
                    goal,
                    base_solver,
                    branch_depth - 1,
                    match_depth,
                ) {
                    Ok(else_branch) => {
                        let _ = solver;
                        return Ok(Program::ite(guard, program, else_branch));
                    }
                    Err(timeout @ SynthesisError::Timeout(_)) => return Err(timeout),
                    Err(SynthesisError::NoSolution(_)) => continue,
                }
            }
        }

        // Phase 2: pattern matches on datatype variables in scope.
        if match_depth > 0 {
            if let Some(program) =
                self.synthesize_match(env, goal, base_solver, branch_depth, match_depth)?
            {
                return Ok(program);
            }
        }

        Err(SynthesisError::NoSolution(goal.to_string()))
    }

    /// Enumerates branch-free candidates for a scalar goal, each together
    /// with the weakest path condition (abduced via a fresh unknown) under
    /// which it satisfies the goal.
    fn abduction_candidates(
        &mut self,
        env: &Environment,
        goal: &RType,
        depth: usize,
        base_solver: &ConstraintSolver,
    ) -> Result<Vec<(Program, ConstraintSolver, Term)>, SynthesisError> {
        let mut solver = base_solver.clone();
        let p0 = solver.fresh_unknown(env, None, "branch condition");
        let mut cond_env = env.clone();
        cond_env.add_path_condition(p0.clone());
        let candidates = self.enumerate_eterms(&cond_env, goal, depth, &solver)?;
        let mut out = Vec::new();
        for c in candidates {
            let condition = c.solver.apply_assignment(&p0);
            out.push((c.program, c.solver, condition));
        }
        // Prefer candidates that need no branching, then smaller programs.
        out.sort_by_key(|(p, _, cond)| (!cond.is_true() as usize, p.size()));
        Ok(out)
    }

    /// Synthesizes a boolean guard term whose value equals the abduced
    /// condition.
    fn synthesize_guard(
        &mut self,
        env: &Environment,
        condition: &Term,
        base_solver: &ConstraintSolver,
    ) -> Option<Program> {
        let goal = RType::refined(
            BaseType::Bool,
            Term::value_var(Sort::Bool).iff(condition.clone()),
        );
        let solver = base_solver.clone();
        let candidates = self
            .enumerate_eterms(env, &goal, self.config.guard_depth, &solver)
            .ok()?;
        candidates.into_iter().next().map(|c| c.program)
    }

    /// Attempts to synthesize a pattern match on some datatype variable in
    /// scope (the MATCH rule, with the scrutinee restricted to variables).
    fn synthesize_match(
        &mut self,
        env: &Environment,
        goal: &RType,
        base_solver: &ConstraintSolver,
        branch_depth: usize,
        match_depth: usize,
    ) -> Result<Option<Program>, SynthesisError> {
        // Candidate scrutinees: datatype-typed scalar variables, most
        // recently bound first (function arguments and pattern variables
        // before library components).
        let mut scrutinees: Vec<(String, String, Vec<RType>)> = Vec::new();
        for name in env.var_names().iter().rev() {
            if let Some(schema) = env.lookup(name) {
                if !schema.is_monomorphic() {
                    continue;
                }
                if let Some(BaseType::Data(dt, targs)) = schema.ty.base_type() {
                    if env.datatype(dt).is_some() {
                        scrutinees.push((name.clone(), dt.clone(), targs.clone()));
                    }
                }
            }
        }
        'scrutinee: for (scrut, dt_name, targs) in scrutinees {
            self.check_deadline()?;
            let Some(dt) = env.datatype(&dt_name).cloned() else {
                continue;
            };
            let scrut_sort = Sort::Data(dt_name.clone(), targs.iter().map(|t| t.sort()).collect());
            let mut cases = Vec::new();
            for ctor in &dt.constructors {
                // Instantiate the constructor at the scrutinee's type args.
                let con_ty = ctor.schema.instantiate(&targs);
                let (cargs, cret) = con_ty.uncurry();
                let mut case_env = env.clone();
                let mut rename = Substitution::new();
                let mut binders = Vec::new();
                for (formal, ty) in &cargs {
                    let binder = self.fresh_name(&format!("{}_{}", scrut, formal));
                    let bound_ty = ty.substitute(&rename);
                    rename.insert(formal.clone(), Term::var(binder.clone(), bound_ty.sort()));
                    case_env.add_var(binder.clone(), bound_ty);
                    binders.push(binder);
                }
                // Path fact: the constructor's result refinement, with ν
                // replaced by the scrutinee and formals by the binders.
                let fact = cret
                    .refinement()
                    .substitute(&rename)
                    .substitute_value(&Term::var(scrut.clone(), scrut_sort.clone()));
                case_env.add_path_condition(fact);
                self.stats.matches_generated += 1;
                crate::trace!("match {scrut} case {}", ctor.name);
                match self.synthesize_in(
                    &case_env,
                    goal,
                    base_solver,
                    branch_depth,
                    match_depth - 1,
                ) {
                    Ok(body) => cases.push(Case {
                        constructor: ctor.name.clone(),
                        binders,
                        body,
                    }),
                    Err(timeout @ SynthesisError::Timeout(_)) => return Err(timeout),
                    Err(SynthesisError::NoSolution(_)) => {
                        crate::trace!("match {scrut} case {} failed", ctor.name);
                        continue 'scrutinee;
                    }
                }
            }
            if cases.len() == dt.constructors.len() {
                return Ok(Some(Program::Match(Box::new(Program::var(scrut)), cases)));
            }
        }
        Ok(None)
    }

    // -----------------------------------------------------------------
    // E-term enumeration with round-trip checking
    // -----------------------------------------------------------------

    /// Enumerates E-terms of the given goal type up to the given
    /// application depth, checking each candidate (and each partial
    /// application) as it is built.
    fn enumerate_eterms(
        &mut self,
        env: &Environment,
        goal: &RType,
        depth: usize,
        solver: &ConstraintSolver,
    ) -> Result<Vec<Candidate>, SynthesisError> {
        let mut out: Vec<Candidate> = Vec::new();
        self.check_deadline()?;

        // Integer literals as nullary components (the paper's benchmarks
        // bind `0` as a component; accepting the literal directly keeps the
        // guard and SyGuS benchmarks independent of naming).
        if matches!(goal.base_type(), Some(BaseType::Int)) {
            for lit in [0i64, 1] {
                let mut s = solver.clone();
                let ty =
                    RType::refined(BaseType::Int, Term::value_var(Sort::Int).eq(Term::int(lit)));
                self.stats.eterms_checked += 1;
                if s.subtype(env, &ty, goal, &mut self.smt, "int-literal")
                    .is_ok()
                {
                    out.push(Candidate {
                        program: Program::IntLit(lit),
                        solver: s,
                        env: env.clone(),
                        ty,
                    });
                }
            }
        }
        if matches!(goal.base_type(), Some(BaseType::Bool)) {
            for lit in [true, false] {
                let mut s = solver.clone();
                let ty = RType::refined(
                    BaseType::Bool,
                    Term::value_var(Sort::Bool).iff(Term::BoolLit(lit)),
                );
                self.stats.eterms_checked += 1;
                if s.subtype(env, &ty, goal, &mut self.smt, "bool-literal")
                    .is_ok()
                {
                    out.push(Candidate {
                        program: Program::BoolLit(lit),
                        solver: s,
                        env: env.clone(),
                        ty,
                    });
                }
            }
        }

        // Variables and components (rules VARSC and VAR∀).
        let names: Vec<String> = env.var_names().to_vec();
        for name in &names {
            if out.len() >= self.config.max_candidates {
                break;
            }
            let Some(schema) = env.lookup(name).cloned() else {
                continue;
            };
            let mut s = solver.clone();
            let instantiated = s.instantiate_schema(&schema);
            if instantiated.is_function() {
                // A function-typed variable is only a candidate when the
                // goal itself is a function type (e.g. passing a component
                // to a higher-order combinator).
                if goal.is_function() {
                    self.stats.eterms_checked += 1;
                    if s.subtype(env, &instantiated, goal, &mut self.smt, name)
                        .is_ok()
                    {
                        out.push(Candidate {
                            program: Program::var(name.clone()),
                            solver: s,
                            env: env.clone(),
                            ty: instantiated,
                        });
                    }
                }
                continue;
            }
            if goal.is_function() {
                continue;
            }
            let singleton = env.singleton_type(name, &instantiated);
            self.stats.eterms_checked += 1;
            if s.subtype(env, &singleton, goal, &mut self.smt, name)
                .is_ok()
            {
                out.push(Candidate {
                    program: Program::var(name.clone()),
                    solver: s,
                    env: env.clone(),
                    ty: singleton,
                });
            }
        }

        // Applications (rules APPFO and APPHO), at depth ≥ 1.
        if depth >= 1 && !goal.is_function() {
            for name in &names {
                if out.len() >= self.config.max_candidates {
                    break;
                }
                self.check_deadline()?;
                let Some(schema) = env.lookup(name).cloned() else {
                    continue;
                };
                let mut s = solver.clone();
                let fty = s.instantiate_schema(&schema);
                if !fty.is_function() {
                    continue;
                }
                let apps = self.enumerate_applications(env, goal, depth, name, &fty, s)?;
                out.extend(apps);
            }
        }

        Ok(out)
    }

    /// Enumerates applications of one head component against the goal.
    fn enumerate_applications(
        &mut self,
        env: &Environment,
        goal: &RType,
        depth: usize,
        head: &str,
        head_ty: &RType,
        mut solver: ConstraintSolver,
    ) -> Result<Vec<Candidate>, SynthesisError> {
        let (fargs, fret) = head_ty.uncurry();

        // Round-trip early check: the return type must be a subtype of the
        // goal under vacuous (⊥-typed) arguments (first premise of APPFO).
        if self.config.round_trip {
            let mut bot_env = env.clone();
            let mut subst = Substitution::new();
            for (i, (formal, ty)) in fargs.iter().enumerate() {
                if ty.is_scalar() {
                    let name = format!("__bot_{head}_{i}");
                    bot_env.add_var(name.clone(), ty.shape().refine_with(&Term::ff()));
                    subst.insert(formal.clone(), Term::var(name, ty.sort()));
                }
            }
            let early_ret = fret.substitute(&subst);
            self.stats.eterms_checked += 1;
            if solver
                .subtype(
                    &bot_env,
                    &early_ret,
                    goal,
                    &mut self.smt,
                    &format!("{head}:early"),
                )
                .is_err()
            {
                return Ok(Vec::new());
            }
        }

        // Consistency check on the partial application (Sec. 3.4): with the
        // arguments at their declared types, the return type must have a
        // common inhabitant with the goal.
        if self.config.consistency {
            let mut decl_env = env.clone();
            let mut subst = Substitution::new();
            for (i, (formal, ty)) in fargs.iter().enumerate() {
                if ty.is_scalar() {
                    let name = format!("__decl_{head}_{i}");
                    decl_env.add_var(name.clone(), ty.clone());
                    subst.insert(formal.clone(), Term::var(name, ty.sort()));
                }
            }
            let decl_ret = fret.substitute(&subst);
            if solver
                .consistent(
                    &decl_env,
                    &decl_ret,
                    goal,
                    &mut self.smt,
                    &format!("{head}:cc"),
                )
                .is_err()
            {
                return Ok(Vec::new());
            }
        }

        // Synthesize the arguments left to right, threading the solver
        // state, the extended environment, and the substitution of formals
        // by the names bound to the actual arguments.
        struct Partial {
            args: Vec<Program>,
            solver: ConstraintSolver,
            env: Environment,
            subst: Substitution,
            pending: Vec<(usize, RType)>,
        }
        let mut partials = vec![Partial {
            args: Vec::new(),
            solver,
            env: env.clone(),
            subst: Substitution::new(),
            pending: Vec::new(),
        }];
        for (i, (formal, arg_ty)) in fargs.iter().enumerate() {
            let mut next = Vec::new();
            for partial in partials {
                self.check_deadline()?;
                let expected = arg_ty.substitute(&partial.subst);
                let resolved = partial.solver.resolve(&expected);
                if resolved.is_function() {
                    // Higher-order argument: defer until the rest of the
                    // application has determined its type (APPHO; this is
                    // how auxiliary functions such as the folding operation
                    // of `sort` are discovered).
                    let mut pending = partial.pending.clone();
                    pending.push((i, expected));
                    let mut args = partial.args.clone();
                    args.push(Program::Hole);
                    next.push(Partial {
                        args,
                        solver: partial.solver,
                        env: partial.env,
                        subst: partial.subst,
                        pending,
                    });
                    continue;
                }
                let arg_candidates =
                    self.enumerate_eterms(&partial.env, &expected, depth - 1, &partial.solver)?;
                for cand in arg_candidates
                    .into_iter()
                    .take(self.config.max_arg_candidates)
                {
                    let binder = self.fresh_name("a");
                    let mut cand_env = cand.env.clone();
                    cand_env.add_var(binder.clone(), cand.ty.clone());
                    let mut subst = partial.subst.clone();
                    subst.insert(formal.clone(), Term::var(binder, cand.ty.sort()));
                    let mut args = partial.args.clone();
                    args.push(cand.program);
                    next.push(Partial {
                        args,
                        solver: cand.solver,
                        env: cand_env,
                        subst,
                        pending: partial.pending.clone(),
                    });
                }
            }
            partials = next;
            if partials.is_empty() {
                return Ok(Vec::new());
            }
        }

        // Final check of the fully applied term against the goal, then
        // synthesis of any deferred higher-order arguments.
        let mut out = Vec::new();
        for partial in partials {
            self.check_deadline()?;
            let mut s = partial.solver.clone();
            let ret_final = fret.substitute(&partial.subst);
            self.stats.eterms_checked += 1;
            if s.subtype(
                &partial.env,
                &ret_final,
                goal,
                &mut self.smt,
                &format!("{head}:ret"),
            )
            .is_err()
            {
                continue;
            }
            let mut args = partial.args.clone();
            let mut ok = true;
            for (idx, ho_ty) in &partial.pending {
                let concrete = s.finalize(ho_ty);
                match self.synthesize_in(
                    &partial.env,
                    &concrete,
                    &s,
                    self.config.max_branch_depth,
                    self.config.max_match_depth,
                ) {
                    Ok(p) => args[*idx] = p,
                    Err(timeout @ SynthesisError::Timeout(_)) => return Err(timeout),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let program = args
                .into_iter()
                .fold(Program::var(head), |acc, a| acc.app(a));
            out.push(Candidate {
                program,
                solver: s,
                env: partial.env,
                ty: ret_final,
            });
            if out.len() >= self.config.max_candidates {
                break;
            }
        }
        Ok(out)
    }
}

/// True if the program mentions the given variable name.
fn program_mentions(p: &Program, name: &str) -> bool {
    match p {
        Program::Var(v) => v == name,
        Program::App(f, a) => program_mentions(f, name) || program_mentions(a, name),
        Program::Abs(_, b) | Program::Fix(_, b) => program_mentions(b, name),
        Program::If(c, t, e) => {
            program_mentions(c, name) || program_mentions(t, name) || program_mentions(e, name)
        }
        Program::Match(s, cases) => {
            program_mentions(s, name) || cases.iter().any(|c| program_mentions(&c.body, name))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synquid_logic::Qualifier;
    use synquid_types::list_datatype;

    /// Components 0, inc, dec, leq, neq used across the paper's examples.
    fn int_components(env: &mut Environment) {
        env.add_var(
            "zero",
            RType::refined(BaseType::Int, Term::value_var(Sort::Int).eq(Term::int(0))),
        );
        env.add_var(
            "inc",
            RType::fun(
                "x",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("x", Sort::Int).plus(Term::int(1))),
                ),
            ),
        );
        env.add_var(
            "dec",
            RType::fun(
                "x",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("x", Sort::Int).minus(Term::int(1))),
                ),
            ),
        );
        env.add_var(
            "leq",
            RType::fun_n(
                vec![("x".into(), RType::int()), ("y".into(), RType::int())],
                RType::refined(
                    BaseType::Bool,
                    Term::value_var(Sort::Bool)
                        .iff(Term::var("x", Sort::Int).le(Term::var("y", Sort::Int))),
                ),
            ),
        );
    }

    fn base_env() -> Environment {
        let mut env = Environment::new();
        env.add_qualifiers(Qualifier::standard(Sort::Int));
        env
    }

    #[test]
    fn synthesizes_the_identity_like_projection() {
        // max-of-one: n: Int → {Int | ν = n} should synthesize `n`.
        let env = base_env();
        let goal = Goal::new(
            "id",
            env,
            Schema::monotype(RType::fun(
                "n",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int)),
                ),
            )),
        );
        let mut syn = Synthesizer::new(SynthesisConfig::default());
        let result = syn.synthesize(&goal).expect("id should synthesize");
        assert_eq!(result.program.to_string(), "\\n . n");
    }

    #[test]
    fn synthesizes_successor_with_a_component() {
        // n: Int → {Int | ν = n + 1} requires applying inc.
        let mut env = base_env();
        int_components(&mut env);
        let goal = Goal::new(
            "succ",
            env,
            Schema::monotype(RType::fun(
                "n",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int).plus(Term::int(1))),
                ),
            )),
        );
        let mut syn = Synthesizer::new(SynthesisConfig::default());
        let result = syn.synthesize(&goal).expect("succ should synthesize");
        assert_eq!(result.program.to_string(), "\\n . inc n");
    }

    #[test]
    fn synthesizes_max_of_two_with_liquid_abduction() {
        // max2 :: x: Int → y: Int → {Int | ν ≥ x ∧ ν ≥ y ∧ (ν = x ∨ ν = y)}
        let mut env = base_env();
        int_components(&mut env);
        let nu = || Term::value_var(Sort::Int);
        let x = || Term::var("x", Sort::Int);
        let y = || Term::var("y", Sort::Int);
        let ret = RType::refined(
            BaseType::Int,
            nu().ge(x())
                .and(nu().ge(y()))
                .and(nu().eq(x()).or(nu().eq(y()))),
        );
        let goal = Goal::new(
            "max2",
            env,
            Schema::monotype(RType::fun_n(
                vec![("x".into(), RType::int()), ("y".into(), RType::int())],
                ret,
            )),
        );
        let mut syn = Synthesizer::new(SynthesisConfig::default());
        let result = syn.synthesize(&goal).expect("max2 should synthesize");
        let text = result.program.to_string();
        assert!(text.contains("if"), "expected a conditional, got:\n{text}");
        assert!(result.stats.branches_abduced >= 1);
        // Both branches return one of the arguments.
        assert!(text.contains('x') && text.contains('y'));
    }

    #[test]
    fn rejects_goals_with_no_solution() {
        // n: Int → {Int | ν = n + 2} with only `inc` available at depth 1.
        let mut env = base_env();
        int_components(&mut env);
        let goal = Goal::new(
            "plus-two",
            env,
            Schema::monotype(RType::fun(
                "n",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int).plus(Term::int(2))),
                ),
            )),
        );
        let config = SynthesisConfig {
            max_app_depth: 1,
            max_match_depth: 0,
            ..SynthesisConfig::default()
        };
        let mut syn = Synthesizer::new(config);
        assert!(matches!(
            syn.synthesize(&goal),
            Err(SynthesisError::NoSolution(_))
        ));
        // With depth 2 it becomes solvable: inc (inc n).
        let mut env = base_env();
        int_components(&mut env);
        let goal = Goal::new(
            "plus-two",
            env,
            Schema::monotype(RType::fun(
                "n",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int).plus(Term::int(2))),
                ),
            )),
        );
        let mut syn = Synthesizer::new(SynthesisConfig::default());
        let result = syn.synthesize(&goal).expect("plus-two at depth 2");
        assert_eq!(result.program.to_string(), "\\n . inc (inc n)");
    }

    #[test]
    fn synthesizes_list_head_preserving_polymorphism() {
        // A monomorphic projection through a datatype: given xs with
        // len xs = 0 in the environment, the goal {List a | len ν = 0}
        // is satisfied by xs itself (no constructors needed).
        let mut env = base_env();
        env.add_datatype(list_datatype());
        let list_sort = Sort::data("List", vec![Sort::var("a")]);
        let len_v = Term::app("len", vec![Term::value_var(list_sort.clone())], Sort::Int);
        env.add_var(
            "xs",
            RType::refined(
                BaseType::Data("List".into(), vec![RType::tyvar("a")]),
                len_v.clone().eq(Term::int(0)),
            ),
        );
        let goal = Goal::new(
            "empty_copy",
            env,
            Schema::forall(
                vec!["a".to_string()],
                RType::refined(
                    BaseType::Data("List".into(), vec![RType::tyvar("a")]),
                    len_v.eq(Term::int(0)),
                ),
            ),
        );
        let mut syn = Synthesizer::new(SynthesisConfig::default());
        let result = syn.synthesize(&goal).expect("should reuse xs or Nil");
        let text = result.program.to_string();
        assert!(text == "xs" || text == "Nil", "got {text}");
    }
}
