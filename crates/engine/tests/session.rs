//! Resident-session behaviour through the whole engine stack: fingerprint
//! namespacing, warm-equals-cold determinism, eviction under tiny
//! bounds, and snapshot round trips — everything ISSUE 10 promises about
//! `SynthesisSession` as observed from the outside.

use std::time::Duration;
use synquid_engine::{BatchReport, Engine, EngineConfig, GoalJob, SessionLimits, SynthesisSession};
use synquid_lang::spec::load_corpus_file;
use synquid_logic::{Qualifier, Sort, Term};
use synquid_types::{BaseType, Environment, RType, Schema};

/// The debug-fast subset of the corpus (same set as `determinism.rs`):
/// goals that solve in well under a second even unoptimized.
fn fast_corpus() -> Vec<GoalJob> {
    let mut batch = Vec::new();
    for stem in ["is_empty", "reverse", "heap_singleton"] {
        let spec = load_corpus_file(stem).unwrap_or_else(|e| panic!("specs/{stem}.sq: {e}"));
        for goal in spec.goals {
            batch.push(GoalJob::new(stem, goal));
        }
    }
    batch
}

fn engine() -> Engine {
    Engine::new(EngineConfig {
        jobs: 2,
        timeout: Duration::from_secs(120),
        ..EngineConfig::default()
    })
}

/// Everything that must not change between a cold and a warm run: goal
/// name, solved flag, program text, winning rung.
type Outcome = (String, bool, Option<String>, Option<(usize, usize)>);

fn outcomes(report: &BatchReport) -> Vec<Outcome> {
    report
        .outcomes
        .iter()
        .map(|o| {
            (
                o.result.name.clone(),
                o.result.solved,
                o.result.program.clone(),
                o.winning_rung,
            )
        })
        .collect()
}

fn identity_goal(name: &str) -> synquid_core::Goal {
    let mut env = Environment::new();
    env.add_qualifiers(Qualifier::standard(Sort::Int));
    synquid_core::Goal::new(
        name,
        env,
        Schema::monotype(RType::fun(
            "n",
            RType::int(),
            RType::refined(
                BaseType::Int,
                Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int)),
            ),
        )),
    )
}

#[test]
fn warm_replay_is_byte_identical_to_cold_and_reuses_verdicts() {
    let session = SynthesisSession::new();
    let cold = engine().run_batch(fast_corpus(), &session);
    assert!(cold.all_solved(), "fast subset must synthesize cold");
    let warm = engine().run_batch(fast_corpus(), &session);
    assert_eq!(
        outcomes(&cold),
        outcomes(&warm),
        "a warm session may change timing, never results"
    );
    // The payoff: the warm run's validity traffic hits entries the cold
    // run proved, at a higher rate than the cold run's own within-run
    // reuse.
    assert!(
        warm.session.validity.hits > 0,
        "warm run must reuse cold verdicts: {:?}",
        warm.session
    );
    assert!(
        warm.session.validity.hit_rate() > cold.session.validity.hit_rate(),
        "cross-run hit rate {:.3} must beat the cold within-run rate {:.3}",
        warm.session.validity.hit_rate(),
        cold.session.validity.hit_rate()
    );
    assert!(
        warm.session.enumeration.hits > 0,
        "warm run must reuse enumeration sets"
    );
    assert_eq!(session.stats().epochs, 2, "one GC epoch per batch");
}

#[test]
fn different_libraries_get_isolated_namespaces() {
    let session = SynthesisSession::new();
    // `is_empty` (List library) and `heap_singleton` (Heap library)
    // come from spec files with different datatypes/components, so they
    // must land in different namespaces; re-running one of them must
    // reuse its own namespace.
    let a: Vec<GoalJob> = load_corpus_file("is_empty")
        .expect("specs/is_empty.sq loads")
        .goals
        .into_iter()
        .map(|g| GoalJob::new("is_empty", g))
        .collect();
    let b: Vec<GoalJob> = load_corpus_file("heap_singleton")
        .expect("specs/heap_singleton.sq loads")
        .goals
        .into_iter()
        .map(|g| GoalJob::new("heap_singleton", g))
        .collect();
    engine().run_batch(a.clone(), &session);
    assert_eq!(session.stats().namespaces, 1);
    engine().run_batch(b, &session);
    assert_eq!(
        session.stats().namespaces,
        2,
        "a different component library must not share a cache namespace"
    );
    let warm = engine().run_batch(a, &session);
    assert_eq!(
        session.stats().namespaces,
        2,
        "re-running a known library reuses its namespace"
    );
    assert!(
        warm.session.validity.hits > 0,
        "the reused namespace still carries the first run's verdicts"
    );
}

#[test]
fn tiny_cache_bounds_still_synthesize_correctly() {
    // Starve every layer: a 4-entry validity cache, 2-entry enumeration
    // memo, 2-lemma store. Constant eviction must cost time only — the
    // outcomes have to match an unbounded session's exactly.
    let tiny = SynthesisSession::with_limits(SessionLimits {
        validity_entries: 4,
        enumeration_entries: 2,
        lemmas: 2,
    });
    let roomy = SynthesisSession::new();
    let starved = engine().run_batch(fast_corpus(), &tiny);
    let reference = engine().run_batch(fast_corpus(), &roomy);
    assert!(starved.all_solved(), "eviction must never lose solutions");
    assert_eq!(outcomes(&starved), outcomes(&reference));
    // The bound is actually enforced: the stats sum over namespaces, so
    // the cap is 4 entries per library namespace the batch touched.
    assert!(
        starved.session.validity.entries <= 4 * starved.session.namespaces,
        "validity cache exceeded its per-namespace bound: {:?}",
        starved.session
    );
    // And a second starved run still reproduces the same results.
    let starved_warm = engine().run_batch(fast_corpus(), &tiny);
    assert_eq!(outcomes(&starved_warm), outcomes(&reference));
}

#[test]
fn snapshot_round_trip_warm_starts_a_fresh_process() {
    let session = SynthesisSession::new();
    let jobs = vec![GoalJob::new("id", identity_goal("id"))];
    let cold = engine().run_batch(jobs.clone(), &session);
    assert!(cold.all_solved());
    let snapshot = session.serialize();

    // "New process": a fresh session warm-started from the snapshot.
    let restored = SynthesisSession::new();
    let warm_start = restored.warm_start(&snapshot);
    assert!(!warm_start.cold, "a fresh snapshot must load");
    assert!(
        warm_start.validity_entries > 0,
        "the cold run's verdicts must survive serialization"
    );
    let warm = engine().run_batch(jobs, &restored);
    assert_eq!(outcomes(&cold), outcomes(&warm));
    assert!(
        warm.session.validity.hits > 0,
        "preloaded verdicts must be hit by the warm-started run: {:?}",
        warm.session
    );
}

#[test]
fn corrupt_and_stale_snapshots_fall_back_to_cold_without_error() {
    let jobs = vec![GoalJob::new("id", identity_goal("id"))];
    for bad in [
        "",                                    // empty file
        "synquid-session v0\n",                // stale version
        "synquid-session v1\ngarbage line\n",  // corrupt body
        "{\"not\": \"a session snapshot\"}\n", // wrong format entirely
    ] {
        let session = SynthesisSession::new();
        let report = session.warm_start(bad);
        assert!(report.cold, "{bad:?} must report a cold start");
        assert_eq!(session.stats().namespaces, 0, "no partial restore");
        // The session is still fully usable afterwards.
        let run = engine().run_batch(jobs.clone(), &session);
        assert!(run.all_solved(), "cold fallback must still synthesize");
    }
}
