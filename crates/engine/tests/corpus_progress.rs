//! Pins the corpus progress of the round-trip-pruning + memoized
//! enumeration work: the goals it flipped from deterministic timeouts to
//! solving must keep solving at the default batch budget, with the
//! programs the paper expects (structural recursion, abduced branch
//! conditions) — not vacuous accidents.

use std::time::Duration;
use synquid_engine::{Engine, EngineConfig, GoalJob};
use synquid_lang::spec::load_corpus_file;

/// `(spec stem, goal name, fragment the solution must contain)` for the
/// goals PR 3 flipped, plus `append` (flipped by PR 5's budget ledger +
/// incremental solver). The fragments pin the *shape* of the solution —
/// a recursive call for the list traversals, the abduction-guarded
/// constructor for `replicate` — without over-pinning binder names.
const FLIPPED: [(&str, &str, &str); 5] = [
    ("append", "append", "fix append"),
    ("delete", "list_delete", "list_delete"),
    ("drop", "drop", "drop"),
    ("elem", "list_member", "list_member"),
    ("replicate", "replicate", "Cons x (replicate (dec n) x)"),
];

/// Release-only: these goals need 4–19 s of solo CPU each, far beyond
/// what a debug build can do inside the budget.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-calibrated budgets; run with --release -- --include-ignored"
)]
fn previously_stalled_goals_synthesize_at_the_default_budget() {
    let mut batch = Vec::new();
    for (stem, _, _) in FLIPPED {
        let spec = load_corpus_file(stem).unwrap_or_else(|e| panic!("specs/{stem}.sq: {e}"));
        for goal in spec.goals {
            batch.push(GoalJob::new(stem, goal));
        }
    }
    let engine = Engine::new(EngineConfig {
        jobs: 1,
        timeout: Duration::from_secs(30),
        ..EngineConfig::default()
    });
    let report = engine.run(batch);
    for ((_, name, fragment), outcome) in FLIPPED.iter().zip(&report.outcomes) {
        assert_eq!(&outcome.result.name, name);
        let program = outcome.result.program.as_deref().unwrap_or_else(|| {
            panic!(
                "{name} regressed to {}",
                if outcome.result.timed_out {
                    "a timeout"
                } else {
                    "no solution"
                }
            )
        });
        assert!(
            program.contains(fragment),
            "{name} synthesized an unexpected program:\n{program}"
        );
    }
}
