//! Regression tests for the budget ledger and the incremental solver:
//!
//! * per-goal budgets are enforced *inside* the DPLL(T)/enumeration
//!   loops, so a hard goal can no longer overshoot its budget by 60 %
//!   the way `take`/`double` did in the PR 3 benchmark artifact;
//! * a goal that runs out of budget reports a timeout only after
//!   actually consuming its budget (no more 0.5 s "timeouts" of a 30 s
//!   budget), and a goal that fails fast reports a genuine failure;
//! * rungs a completed failure proves equivalent are skipped, and
//!   skipping (budget shaping) never changes the synthesized programs;
//! * incremental DPLL(T) (cross-query theory-conflict persistence) is a
//!   pure speed-up: byte-identical results to from-scratch solving.

use std::time::{Duration, Instant};
use synquid_core::{Goal, SynthesisConfig};
use synquid_engine::{BatchReport, Engine, EngineConfig, GoalJob};
use synquid_lang::spec::{load_corpus_file, load_file};
use synquid_logic::{Qualifier, Sort, Term};
use synquid_types::{BaseType, Environment, RType, Schema};

fn identity_goal(name: &str) -> Goal {
    let mut env = Environment::new();
    env.add_qualifiers(Qualifier::standard(Sort::Int));
    Goal::new(
        name,
        env,
        Schema::monotype(RType::fun(
            "n",
            RType::int(),
            RType::refined(
                BaseType::Int,
                Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int)),
            ),
        )),
    )
}

/// `{Int | ν = n + 1}` with no components: no E-term can satisfy it, the
/// candidate universe stops growing at depth 1, and no datatype is in
/// scope — so the first rung's failure proves every deeper rung
/// equivalent.
fn impossible_goal(name: &str) -> Goal {
    let mut env = Environment::new();
    env.add_qualifiers(Qualifier::standard(Sort::Int));
    Goal::new(
        name,
        env,
        Schema::monotype(RType::fun(
            "n",
            RType::int(),
            RType::refined(
                BaseType::Int,
                Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int).plus(Term::int(1))),
            ),
        )),
    )
}

fn engine(jobs: usize, timeout: Duration, shaping: bool) -> Engine {
    Engine::new(EngineConfig {
        jobs,
        timeout,
        shaping,
        ..EngineConfig::default()
    })
}

/// The budget-overshoot regression (PR 3's `take` ran 48.9 s against a
/// 30 s budget): a deliberately hard goal must respect its budget to
/// within 10 %, because the deadline is polled inside the SMT solving
/// loops, not just between candidates.
#[test]
fn a_hard_goal_cannot_overshoot_its_budget() {
    let spec = load_corpus_file("take").expect("specs/take.sq loads");
    let batch: Vec<GoalJob> = spec
        .goals
        .into_iter()
        .map(|g| GoalJob::new("take", g))
        .collect();
    assert!(!batch.is_empty());
    let budget = Duration::from_secs(6);
    let started = Instant::now();
    let report = engine(1, budget, true).run(batch);
    let wall = started.elapsed();
    let limit = budget.mul_f64(1.1);
    assert!(
        wall <= limit,
        "batch overshot the budget: {wall:.2?} > {limit:.2?}"
    );
    for o in &report.outcomes {
        let r = &o.result;
        assert!(
            r.time_secs <= limit.as_secs_f64(),
            "{} reported more time than its budget allows: {:.2}s",
            r.name,
            r.time_secs
        );
        // Honest accounting both ways: a timeout may only be reported
        // after the ledger actually consumed (almost all of) the budget.
        if r.timed_out {
            assert!(
                o.consumed_secs > 0.8 * budget.as_secs_f64(),
                "{} reported a timeout after consuming only {:.2}s of {budget:?}",
                r.name,
                o.consumed_secs
            );
        }
    }
}

/// The fake-timeout regression (PR 3's `tree_member` reported
/// `timed_out: true` at 0.571 s): a goal whose rungs all finish fast
/// must report a genuine failure, with its real consumption, and its
/// provably-equivalent deeper rungs are skipped with their slices
/// refunded.
#[test]
fn fast_failures_are_not_timeouts_and_equivalent_rungs_are_skipped() {
    let batch = || {
        vec![
            GoalJob::new("a", identity_goal("id")),
            GoalJob::new("b", impossible_goal("nope")),
        ]
    };
    let report = engine(1, Duration::from_secs(30), true).run(batch());
    let nope = &report.outcomes[1];
    assert!(!nope.result.solved);
    assert!(
        !nope.result.timed_out,
        "an exhausted search space is not a timeout"
    );
    assert!(
        nope.rungs_skipped > 0,
        "the closed-frontier failure must prove deeper rungs skippable: {nope:?}"
    );
    assert_eq!(nope.rungs_out_of_budget, 0);
    assert!(
        nope.result.time_secs < 20.0,
        "a fast failure must report its real consumption, not the budget"
    );
}

/// Budget shaping (slice rationing + equivalence skipping) must never
/// change what is synthesized — only how much of the budget gets burned
/// to find out.
#[test]
fn shaping_changes_budgets_not_results() {
    let batch = || {
        vec![
            GoalJob::new("a", identity_goal("id")),
            GoalJob::new("b", impossible_goal("nope")),
        ]
    };
    let shaped = engine(1, Duration::from_secs(30), true).run(batch());
    let unshaped = engine(1, Duration::from_secs(30), false).run(batch());
    for (s, u) in shaped.outcomes.iter().zip(&unshaped.outcomes) {
        assert_eq!(s.result.name, u.result.name);
        assert_eq!(s.result.solved, u.result.solved, "{}", s.result.name);
        assert_eq!(
            s.result.program, u.result.program,
            "shaping changed the solution for {}",
            s.result.name
        );
        assert_eq!(s.winning_rung, u.winning_rung, "{}", s.result.name);
    }
    // Without shaping nothing is ever skipped (the pre-ledger behaviour).
    assert!(unshaped.outcomes.iter().all(|o| o.rungs_skipped == 0));
    // With shaping the impossible goal skips its equivalent deeper rungs.
    assert!(shaped.outcomes[1].rungs_skipped > 0);
}

/// The debug-fast corpus subset (see `determinism.rs` for the
/// rationale).
const FAST_STEMS: [&str; 3] = ["is_empty", "reverse", "heap_singleton"];

fn fast_batch() -> Vec<GoalJob> {
    let mut batch = Vec::new();
    for stem in FAST_STEMS {
        let spec = load_corpus_file(stem).unwrap_or_else(|e| panic!("specs/{stem}.sq: {e}"));
        for goal in spec.goals {
            batch.push(GoalJob::new(stem, goal));
        }
    }
    batch
}

/// Incremental DPLL(T) (persisting learned theory conflicts across
/// queries) is sound — the persisted lemmas are theory facts — so on
/// goals whose queries are decided within budget (the fast subset by
/// construction) enabling it must produce byte-identical results,
/// merely faster. (At budget boundaries replay can only flip
/// `Unknown` → decided, i.e. make more proofs succeed.)
#[test]
fn incremental_and_from_scratch_solving_agree() {
    let run = |base: SynthesisConfig| -> BatchReport {
        Engine::new(EngineConfig {
            jobs: 1,
            timeout: Duration::from_secs(120),
            base,
            ..EngineConfig::default()
        })
        .run(fast_batch())
    };
    let incremental = run(SynthesisConfig::default());
    let from_scratch = run(SynthesisConfig::default().without_incremental_smt());
    assert!(incremental.all_solved());
    for (i, f) in incremental.outcomes.iter().zip(&from_scratch.outcomes) {
        assert_eq!(i.result.name, f.result.name);
        assert_eq!(i.result.solved, f.result.solved, "{}", i.result.name);
        assert_eq!(
            i.result.program, f.result.program,
            "incremental solving changed the solution for {}",
            i.result.name
        );
        assert_eq!(i.winning_rung, f.winning_rung, "{}", i.result.name);
    }
    // The from-scratch ablation must report no cross-query reuse.
    for o in &from_scratch.outcomes {
        if let Some(stats) = o.result.stats {
            assert_eq!(
                stats.smt_conflicts_reused, 0,
                "{} reused conflicts with incremental solving disabled",
                o.result.name
            );
        }
    }
}

/// The full corpus must produce byte-identical results with and without
/// the incremental solver on the goals that solve comfortably inside
/// the budget (release-only; debug builds cannot hold the budgets).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full corpus at release-calibrated budgets; run with --release -- --include-ignored"
)]
fn full_corpus_incremental_parity_on_stable_goals() {
    use synquid_lang::spec::corpus_files;
    // Budget-fragile goals (see determinism.rs) are excluded: their
    // outcome is decided by wall-clock luck, not by solver behaviour.
    const BUDGET_FRAGILE: [&str; 5] = ["list_delete", "drop", "list_member", "replicate", "append"];
    let mut batch = Vec::new();
    for file in corpus_files() {
        let spec = load_file(&file).unwrap_or_else(|e| panic!("{}: {e}", file.display()));
        for goal in spec.goals {
            batch.push(GoalJob::new(file.display().to_string(), goal));
        }
    }
    let run = |base: SynthesisConfig| -> BatchReport {
        Engine::new(EngineConfig {
            jobs: 1,
            timeout: Duration::from_secs(20),
            base,
            ..EngineConfig::default()
        })
        .run(batch.clone())
    };
    let incremental = run(SynthesisConfig::default());
    let from_scratch = run(SynthesisConfig::default().without_incremental_smt());
    for (i, f) in incremental.outcomes.iter().zip(&from_scratch.outcomes) {
        if BUDGET_FRAGILE.contains(&i.result.name.as_str()) {
            continue;
        }
        // Goals near the budget edge can legitimately flip with solver
        // speed; only compare goals both runs decided the same way.
        if i.result.timed_out || f.result.timed_out {
            continue;
        }
        assert_eq!(
            i.result.program, f.result.program,
            "incremental solving changed the solution for {}",
            i.result.name
        );
    }
}
