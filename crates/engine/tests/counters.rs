//! Regression tests for the PR-3 enumeration machinery: the round-trip
//! pruning and memoization counters must actually fire, and memoized
//! enumeration must be a pure speed-up — byte-identical solutions to a
//! cache-disabled run on the fast corpus subset.

use std::time::Duration;
use synquid_core::SynthesisConfig;
use synquid_engine::{BatchReport, Engine, EngineConfig, GoalJob};
use synquid_lang::spec::load_corpus_file;

/// The debug-fast corpus subset (see `determinism.rs` for the rationale:
/// sub-second release goals that stay inside their budget even when a
/// single-core machine timeslices).
const FAST_STEMS: [&str; 3] = ["is_empty", "reverse", "heap_singleton"];

fn fast_batch() -> Vec<GoalJob> {
    let mut batch = Vec::new();
    for stem in FAST_STEMS {
        let spec = load_corpus_file(stem).unwrap_or_else(|e| panic!("specs/{stem}.sq: {e}"));
        for goal in spec.goals {
            batch.push(GoalJob::new(stem, goal));
        }
    }
    batch
}

fn run_with_base(base: SynthesisConfig) -> BatchReport {
    let engine = Engine::new(EngineConfig {
        jobs: 1,
        timeout: Duration::from_secs(120),
        base,
        ..EngineConfig::default()
    });
    engine.run(fast_batch())
}

#[test]
fn pruning_and_memoization_counters_fire_on_a_goal_that_benefits() {
    // `is_empty` needs a match with per-arm enumeration, so the second
    // deepening iteration and the match arms both re-request candidate
    // sets (memo hits), and the Bool goal's candidate pool contains
    // refinement-incompatible candidates (early prunes).
    let report = run_with_base(SynthesisConfig::default());
    assert!(report.all_solved(), "fast subset must solve");
    let stats = report
        .outcomes
        .iter()
        .find(|o| o.result.name == "is_empty")
        .and_then(|o| o.result.stats)
        .expect("is_empty reports stats");
    assert!(
        stats.terms_enumerated > 0,
        "generation must report enumerated terms: {stats:?}"
    );
    assert!(
        stats.pruned_early > 0,
        "round-trip pruning must discard candidates early: {stats:?}"
    );
    assert!(
        stats.memo_hits > 0,
        "memoized enumeration must serve repeated requests: {stats:?}"
    );
    assert!(
        stats.memo_misses > 0,
        "first-time generations are memo misses: {stats:?}"
    );
}

#[test]
fn memoized_and_unmemoized_runs_produce_byte_identical_solutions() {
    let memoized = run_with_base(SynthesisConfig::default());
    let unmemoized = run_with_base(SynthesisConfig::default().without_memoization());
    assert!(memoized.all_solved());
    for (m, u) in memoized.outcomes.iter().zip(&unmemoized.outcomes) {
        assert_eq!(m.result.name, u.result.name);
        assert_eq!(m.result.solved, u.result.solved, "{}", m.result.name);
        assert_eq!(
            m.result.program, u.result.program,
            "memoization changed the solution for {}",
            m.result.name
        );
        assert_eq!(m.winning_rung, u.winning_rung, "{}", m.result.name);
    }
    // The disabled run must report no memo traffic.
    for o in &unmemoized.outcomes {
        if let Some(stats) = o.result.stats {
            assert_eq!(stats.memo_hits, 0, "{} hit a disabled memo", o.result.name);
        }
    }
}
