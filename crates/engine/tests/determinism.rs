//! Determinism of the parallel engine: running the same batch with one
//! worker and with eight workers must produce identical solutions —
//! the lowest-solved-rung rule makes the portfolio winner independent of
//! scheduling, and the shared validity cache only ever changes *when* a
//! verdict is computed, never *what* it is.

use std::time::Duration;
use synquid_engine::{BatchReport, Engine, EngineConfig, GoalJob};
use synquid_lang::spec::{corpus_files, load_corpus_file, load_file};

fn run_with_jobs(batch: &[GoalJob], jobs: usize, timeout: Duration) -> BatchReport {
    let engine = Engine::new(EngineConfig {
        jobs,
        timeout,
        ..EngineConfig::default()
    });
    engine.run(batch.to_vec())
}

/// The comparable fingerprint of one outcome: goal name, solved flag,
/// program, winning rung — everything except wall times (which
/// legitimately vary between runs).
type Fingerprint = (String, bool, Option<String>, Option<(usize, usize)>);

fn fingerprint(report: &BatchReport) -> Vec<Fingerprint> {
    report
        .outcomes
        .iter()
        .map(|o| {
            (
                o.result.name.clone(),
                o.result.solved,
                o.result.program.clone(),
                o.winning_rung,
            )
        })
        .collect()
}

#[test]
fn fast_corpus_goals_are_deterministic_across_worker_counts() {
    // The debug-fast subset of the corpus: goals that solve in well
    // under a second optimized, so they stay comfortably inside the
    // budget even in debug builds on a single-core machine where eight
    // workers timeslice. The full corpus, slow goals included, is
    // covered by the release-only test below.
    let stems = ["is_empty", "reverse", "heap_singleton"];
    let mut batch = Vec::new();
    for stem in stems {
        let spec = load_corpus_file(stem).unwrap_or_else(|e| panic!("specs/{stem}.sq: {e}"));
        for goal in spec.goals {
            batch.push(GoalJob::new(stem, goal));
        }
    }
    let sequential = run_with_jobs(&batch, 1, Duration::from_secs(120));
    let parallel = run_with_jobs(&batch, 8, Duration::from_secs(120));
    assert!(
        sequential.all_solved(),
        "the fast subset must synthesize: {:?}",
        fingerprint(&sequential)
    );
    assert_eq!(
        fingerprint(&sequential),
        fingerprint(&parallel),
        "worker count changed the solutions"
    );
    assert_eq!(sequential.jobs, 1);
    assert_eq!(parallel.jobs, 8);
}

/// Corpus goals in the wall-clock "middle zone": they solve in roughly
/// 2–8 s of solo CPU at `--jobs 1`, which is real progress (they were
/// deterministic timeouts before round-trip pruning, memoized
/// enumeration, and the incremental solver) but means their outcome at
/// a 20–30 s budget is decided by how much CPU the scheduler can
/// actually give their winning rung.
/// On an adequately-sized machine (≥ as many cores as workers) they
/// report identically at any worker count; on an oversubscribed machine
/// (this repo's 1-core container, 8 workers timeslicing) they hit the
/// engine's documented caveat — budgets are wall-clock, so a goal whose
/// solving rung needs most of the budget can flip between solving and
/// timing out as the worker count changes. The parity assertion below
/// therefore excludes them; `corpus_progress.rs` pins that they solve
/// at `--jobs 1` default budgets. `append` joined the list when PR 5's
/// incremental solver flipped it from a deterministic timeout to a
/// ~7 s solve — near enough to the 20 s test budget that eight
/// timeslicing workers push its winning rung past the deadline.
/// `take` (~12 s solo) and `double` (~4.4 s solo) joined for the same
/// reason when the PR 9 incremental-LIA work flipped them from
/// deterministic timeouts to solves near the budget.
const BUDGET_FRAGILE: [&str; 7] = [
    "list_delete",
    "drop",
    "list_member",
    "replicate",
    "append",
    "take",
    "double",
];

/// The full-corpus determinism check: `--jobs 1` and `--jobs 8` over
/// every goal of `specs/` yield identical solutions for every goal that
/// is not wall-clock budget-fragile (see [`BUDGET_FRAGILE`]). Slow
/// corpus goals burn their whole budget, so this runs in release CI
/// only (debug builds are an order of magnitude slower than the
/// per-goal budgets are calibrated for).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full corpus at release-calibrated budgets; run with --release -- --include-ignored"
)]
fn full_corpus_is_deterministic_across_worker_counts() {
    let files = corpus_files();
    assert!(files.len() >= 16, "corpus went missing: {files:?}");
    let mut batch = Vec::new();
    for file in &files {
        let spec = load_file(file).unwrap_or_else(|e| panic!("{}: {e}", file.display()));
        for goal in spec.goals {
            batch.push(GoalJob::new(file.display().to_string(), goal));
        }
    }
    let sequential = run_with_jobs(&batch, 1, Duration::from_secs(20));
    let parallel = run_with_jobs(&batch, 8, Duration::from_secs(20));
    let stable = |report: &BatchReport| -> Vec<Fingerprint> {
        fingerprint(report)
            .into_iter()
            .filter(|(name, ..)| !BUDGET_FRAGILE.contains(&name.as_str()))
            .collect()
    };
    assert_eq!(
        stable(&sequential),
        stable(&parallel),
        "worker count changed the batch results"
    );
    // Goals that fail must fail deterministically *within* each run:
    // unsolved means timed out (or a genuine search-space exhaustion),
    // never a poisoned or partial result.
    for report in [&sequential, &parallel] {
        for o in &report.outcomes {
            assert!(
                o.result.solved || o.result.program.is_none(),
                "unsolved goal {} carries a program",
                o.result.name
            );
        }
    }
}
