//! Determinism of span-profile *counts* across worker counts.
//!
//! Wall times legitimately vary between runs and worker counts, but the
//! number of times each phase runs is a property of the search, not of
//! the scheduler — provided the goals cannot influence each other
//! through the shared validity cache. The test constructs goals whose
//! refinements use pairwise-distinct constants, so no two goals ever
//! pose the same normalized query and cross-goal cache hits are
//! impossible; a single-rung ladder with a generous budget rules out
//! slice truncation and re-queued attempts. Under those conditions the
//! per-goal phase counts must be bit-identical at `--jobs 1` and
//! `--jobs 8`.

use std::time::Duration;
use synquid_core::Goal;
use synquid_engine::{BatchReport, Engine, EngineConfig, GoalJob};
use synquid_logic::{Qualifier, Sort, Term};
use synquid_types::{BaseType, Environment, RType, Schema};

/// `\n . ???? :: {Int | ν == n + k}` with no components: unsolvable, so
/// the search runs to exhaustion — the same exhaustion at any worker
/// count. Distinct `k` per goal keeps every SMT query distinct: the goal
/// refinement carries `k`, and so does every abduction candidate,
/// because the qualifier set is `k`-shifted (`? ≤ ? + k`, `? ≠ ? + k`)
/// rather than the standard one. Cache normalization canonicalizes
/// variable names but never constants, so no query of goal `k` can ever
/// be answered by a cache entry another goal created.
fn offset_goal(k: i64) -> Goal {
    let mut env = Environment::new();
    let hole = |i: usize| Qualifier::hole(i, Sort::Int);
    env.add_qualifiers(vec![
        Qualifier::new(hole(0).le(hole(1).plus(Term::int(k)))),
        Qualifier::new(hole(0).neq(hole(1).plus(Term::int(k)))),
    ]);
    // The argument is refined with a k-dependent bound too: the
    // termination checks for recursive-call candidates are posed against
    // the argument type, so an unrefined `n: Int` would make those
    // queries (`ν == n ⊢ 0 ≤ ν < n`) identical across goals.
    Goal::new(
        format!("offset{k}"),
        env,
        Schema::monotype(RType::fun(
            "n",
            RType::refined(BaseType::Int, Term::int(-k).le(Term::value_var(Sort::Int))),
            RType::refined(
                BaseType::Int,
                Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int).plus(Term::int(k))),
            ),
        )),
    )
}

fn run_with_jobs(jobs: usize) -> BatchReport {
    let batch: Vec<GoalJob> = (1..=4)
        .map(|k| GoalJob::new(format!("job{k}"), offset_goal(k)))
        .collect();
    let engine = Engine::new(EngineConfig {
        jobs,
        timeout: Duration::from_secs(120),
        rungs: vec![(1, 0)],
        ..EngineConfig::default()
    });
    engine.run(batch)
}

#[test]
fn span_counts_are_identical_across_worker_counts() {
    synquid_telemetry::set_profiling(true);
    let sequential = run_with_jobs(1);
    let parallel = run_with_jobs(8);
    assert_eq!(sequential.outcomes.len(), parallel.outcomes.len());
    for (s, p) in sequential.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(s.result.solved, p.result.solved);
        let s_phases = &s.result.stats.as_ref().expect("stats present").phases;
        let p_phases = &p.result.stats.as_ref().expect("stats present").phases;
        assert!(
            !s_phases.is_empty(),
            "profiling was on, so {} must have recorded spans",
            s.result.name
        );
        assert_eq!(
            s_phases.counts(),
            p_phases.counts(),
            "phase counts for {} must not depend on the worker count",
            s.result.name
        );
    }
}
