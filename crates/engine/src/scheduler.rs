//! The multi-goal scheduler: a fixed pool of worker threads draining a
//! queue of `(goal, rung)` work items.
//!
//! Work items are queued goal-major (every rung of goal 0, then every
//! rung of goal 1, …), so a single worker reproduces the sequential
//! iterative-deepening ladder exactly, while `N` workers overlap both
//! *across* goals and *within* a goal's portfolio. All workers borrow
//! their caches from a [`SynthesisSession`] namespace (keyed by the
//! goal's library fingerprint), so a subtyping obligation proven for one
//! rung (or one goal) is never re-proven by another — and, for resident
//! sessions, not even by a later batch.
//!
//! Each claim is budgeted through the goal's [`Portfolio`] ledger: the
//! attempt reserves a bounded slice of the goal's remaining budget, is
//! charged exactly the wall time it measures, and — when the slice runs
//! out before the search finishes — is re-queued *in front of* its
//! pending siblings to run again on whatever budget remains (the
//! enumeration memo and the shared validity cache make the replayed
//! prefix cheap). Rungs that a completed failure proves equivalent are
//! skipped without running; rungs claimed once the budget is gone are
//! recorded as out-of-budget, never charged for time they did not use.
//!
//! Results are aggregated deterministically: outcomes are reported in
//! job-submission order, and each goal's winner is decided by the
//! portfolio's lowest-solved-rung rule (see [`crate::portfolio`]), not by
//! wall-clock finish order.

use crate::portfolio::{Portfolio, RungOutcome, DEFAULT_RUNGS};
use crate::session::{LibraryFingerprint, SessionCaches, SessionStats, SynthesisSession};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use synquid_core::{Goal, SolverContext, SynthesisConfig};
use synquid_lang::runner::{run_goal_in_context, RunResult};
use synquid_solver::{LemmaSeed, ValidityCacheStats};
use synquid_telemetry::{events, events::Event};

/// Configuration of a batch run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads (`--jobs`); clamped to at least 1.
    pub jobs: usize,
    /// Per-goal wall-clock budget, shared by all rungs of the goal.
    pub timeout: Duration,
    /// The exploration-bound ladder each goal's portfolio races over.
    pub rungs: Vec<(usize, usize)>,
    /// Budget shaping (slice rationing + equivalence skipping) in the
    /// per-goal ledger. On by default; the shaping-parity regression
    /// tests disable it to prove shaping changes timing only, never
    /// results.
    pub shaping: bool,
    /// Template configuration (ablation switches, candidate caps);
    /// bounds and timeout are overridden per rung.
    pub base: SynthesisConfig,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            jobs: 1,
            timeout: Duration::from_secs(30),
            rungs: DEFAULT_RUNGS.to_vec(),
            shaping: true,
            base: SynthesisConfig::default(),
        }
    }
}

/// One unit of work submitted to the engine: a goal plus the label of
/// where it came from (spec file path, benchmark group, …).
#[derive(Debug, Clone)]
pub struct GoalJob {
    /// Provenance label used in reports.
    pub source: String,
    /// The synthesis goal.
    pub goal: Goal,
}

impl GoalJob {
    /// Creates a job.
    pub fn new(source: impl Into<String>, goal: Goal) -> GoalJob {
        GoalJob {
            source: source.into(),
            goal,
        }
    }
}

/// The aggregated outcome of one goal's portfolio.
#[derive(Debug, Clone)]
pub struct GoalOutcome {
    /// Provenance label of the job.
    pub source: String,
    /// The winning result (lowest solved rung), or the deepest failure.
    pub result: RunResult,
    /// Exploration bounds of the winning rung (`None` if unsolved).
    pub winning_rung: Option<(usize, usize)>,
    /// Rungs that ran to completion.
    pub rungs_run: usize,
    /// Rungs cancelled after a shallower rung won.
    pub rungs_cancelled: usize,
    /// Rungs skipped because a completed failure proved their search
    /// identical; their budget slices were refunded without running.
    pub rungs_skipped: usize,
    /// Rungs that never ran because the goal's budget was exhausted
    /// (distinct from cancellation: no winner was involved).
    pub rungs_out_of_budget: usize,
    /// Total wall time the ledger charged to this goal's rung attempts.
    /// For unsolved goals this is also the reported `time_secs`; it can
    /// never exceed the goal budget by more than one truncated SMT step.
    pub consumed_secs: f64,
}

/// The deterministic aggregate of a batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-goal outcomes, in job-submission order.
    pub outcomes: Vec<GoalOutcome>,
    /// Validity-cache counters this run contributed (summed over the
    /// namespaces it touched). Against a warm session, `hits` includes
    /// cross-run hits on entries proven by earlier batches.
    pub cache: ValidityCacheStats,
    /// All session-layer counters this run contributed (validity,
    /// enumeration, lemmas), measured before the end-of-batch GC epoch.
    pub session: SessionStats,
    /// Wall-clock duration of the batch.
    pub wall_secs: f64,
    /// Worker threads used.
    pub jobs: usize,
}

impl BatchReport {
    /// True if every goal synthesized.
    pub fn all_solved(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.solved)
    }
}

/// Shared mutable state of one batch run.
struct Shared {
    queue: VecDeque<(usize, usize)>, // (goal index, rung index)
    portfolios: Vec<Portfolio>,
}

/// The parallel synthesis engine.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Creates an engine.
    pub fn new(config: EngineConfig) -> Engine {
        Engine { config }
    }

    /// Runs a batch of goals against a throwaway cold session —
    /// equivalent to [`Self::run_batch`] on a fresh
    /// [`SynthesisSession`] that is dropped afterwards. Prefer
    /// `run_batch` anywhere a session outlives one batch.
    pub fn run(&self, jobs: Vec<GoalJob>) -> BatchReport {
        self.run_batch(jobs, &SynthesisSession::new())
    }

    /// Runs a batch of goals to completion against a resident session
    /// and aggregates the results.
    ///
    /// The session supplies every piece of cross-goal state: per-goal
    /// cache namespaces are resolved by library fingerprint at batch
    /// start (one frozen lemma seed per namespace, so results cannot
    /// depend on worker scheduling), and one GC epoch is closed when
    /// the batch ends. The report's counters are this run's traffic
    /// only ([`SessionStats::since`] against the start-of-batch
    /// snapshot), so warm hit rates are directly comparable to cold
    /// ones.
    ///
    /// The same batch produces the same solutions whatever `jobs` is,
    /// *timeouts aside*: each `(goal, rung)` search is deterministic,
    /// and the winner per goal is the lowest rung that solves. The
    /// caveat is real — budgets are wall-clock, so a goal whose only
    /// solving rung needs most of the budget can time out under one
    /// worker count and solve under another (with one worker, deep
    /// rungs only get what their shallower siblings left). Goals that
    /// solve comfortably inside the budget, or exhaust their search
    /// space, or are hopeless at every rung, report identically at any
    /// worker count; `tests/determinism.rs` pins this for the corpus.
    /// A warm session changes timing only, never results: cached
    /// verdicts are pure functions of their keys, and replayed lemmas
    /// are implied by the encoding of any query containing their atoms.
    pub fn run_batch(&self, jobs: Vec<GoalJob>, session: &SynthesisSession) -> BatchReport {
        let start = Instant::now();
        let before = session.stats();
        let rungs = if self.config.rungs.is_empty() {
            DEFAULT_RUNGS.to_vec()
        } else {
            self.config.rungs.clone()
        };
        let workers = self.config.jobs.max(1);

        // Resolve each goal's cache namespace up front and freeze one
        // lemma seed per namespace: every run of this batch replays the
        // same seed, while fresh conflicts flow into the resident store
        // for *future* batches only.
        let mut namespaces: BTreeMap<LibraryFingerprint, (SessionCaches, LemmaSeed)> =
            BTreeMap::new();
        let goal_namespaces: Vec<LibraryFingerprint> = jobs
            .iter()
            .map(|job| {
                let fingerprint = LibraryFingerprint::of_env(&job.goal.env);
                namespaces.entry(fingerprint).or_insert_with(|| {
                    let caches = session.caches_for(fingerprint);
                    let seed = caches.lemmas.snapshot();
                    (caches, seed)
                });
                fingerprint
            })
            .collect();

        let mut queue = VecDeque::new();
        let mut portfolios = Vec::with_capacity(jobs.len());
        for (goal_idx, _) in jobs.iter().enumerate() {
            for rung_idx in 0..rungs.len() {
                queue.push_back((goal_idx, rung_idx));
            }
            portfolios.push(Portfolio::with_shaping(
                rungs.clone(),
                self.config.timeout,
                self.config.shaping,
            ));
        }
        let shared = Mutex::new(Shared { queue, portfolios });

        // Never spawn more workers than there are work items; report the
        // count that actually ran.
        let workers = workers.min(jobs.len().max(1) * rungs.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker(&shared, &jobs, &namespaces, &goal_namespaces));
            }
        });

        let shared = shared.into_inner().expect("scheduler state poisoned");
        let outcomes = jobs
            .iter()
            .zip(&shared.portfolios)
            .map(|(job, portfolio)| {
                let (result, winning_rung) = portfolio.verdict();
                let consumed_secs = portfolio.consumed().as_secs_f64();
                let mut result = result.cloned().unwrap_or_else(|| RunResult {
                    name: job.goal.name.clone(),
                    solved: false,
                    timed_out: true,
                    time_secs: 0.0,
                    program: None,
                    ast: None,
                    code_size: None,
                    stats: None,
                });
                if !result.solved {
                    // Honest failure reporting: the goal is timed out only
                    // if some rung actually ran out of its budget, and the
                    // reported time is the ledger's total consumption —
                    // never the scrap measured by the last unluckiest rung.
                    result.timed_out = portfolio.ran_out_of_budget();
                    result.time_secs = consumed_secs;
                }
                GoalOutcome {
                    source: job.source.clone(),
                    result,
                    winning_rung,
                    rungs_run: portfolio.rungs_run(),
                    rungs_cancelled: portfolio.rungs_cancelled(),
                    rungs_skipped: portfolio.rungs_skipped(),
                    rungs_out_of_budget: portfolio.rungs_out_of_budget(),
                    consumed_secs,
                }
            })
            .collect();
        // Measure this run's traffic before GC mutates the gauges, then
        // close the batch's epoch: entries untouched for two more
        // batches will be evicted.
        let run_stats = session.stats().since(&before);
        session.advance_epoch();
        BatchReport {
            outcomes,
            cache: run_stats.validity,
            session: run_stats,
            wall_secs: start.elapsed().as_secs_f64(),
            jobs: workers,
        }
    }

    /// One worker: claim items until the queue is empty.
    fn worker(
        &self,
        shared: &Mutex<Shared>,
        jobs: &[GoalJob],
        namespaces: &BTreeMap<LibraryFingerprint, (SessionCaches, LemmaSeed)>,
        goal_namespaces: &[LibraryFingerprint],
    ) {
        // Consecutive pops that all ended in a starved park (see below).
        let mut parked_streak = 0usize;
        loop {
            // Claim the next runnable item under the lock; decide without
            // it whether to run (the synthesis itself must not hold it).
            let claimed = {
                let mut state = shared.lock().expect("scheduler state poisoned");
                let Some((goal_idx, rung_idx)) = state.queue.pop_front() else {
                    return;
                };
                let portfolio = &mut state.portfolios[goal_idx];
                if portfolio.is_dominated(rung_idx) || portfolio.tokens[rung_idx].is_cancelled() {
                    portfolio.record(rung_idx, RungOutcome::Cancelled);
                    continue;
                }
                if portfolio.skippable(rung_idx) {
                    let (app, mat) = portfolio.rungs[rung_idx];
                    portfolio.record(rung_idx, RungOutcome::Skipped);
                    events::emit(|| {
                        Event::new("rung_skip")
                            .uint("rung", rung_idx as u64)
                            .str("goal", &jobs[goal_idx].goal.name)
                            .uint("app_depth", app as u64)
                            .uint("match_depth", mat as u64)
                    });
                    continue;
                }
                let slice = portfolio.slice_for(rung_idx);
                if slice < portfolio.min_slice() {
                    if portfolio.any_in_flight() {
                        // The budget is tied up in running siblings whose
                        // refunds may re-fund this rung: park it behind
                        // them and let the pool make progress elsewhere.
                        state.queue.push_back((goal_idx, rung_idx));
                        Err(state.queue.len())
                    } else {
                        let (app, mat) = portfolio.rungs[rung_idx];
                        portfolio.record(rung_idx, RungOutcome::OutOfBudget);
                        events::emit(|| {
                            Event::new("rung_out_of_budget")
                                .uint("rung", rung_idx as u64)
                                .str("goal", &jobs[goal_idx].goal.name)
                                .uint("app_depth", app as u64)
                                .uint("match_depth", mat as u64)
                        });
                        continue;
                    }
                } else {
                    portfolio.start(rung_idx, slice);
                    events::emit(|| {
                        Event::new("ledger_reserve")
                            .uint("rung", rung_idx as u64)
                            .str("goal", &jobs[goal_idx].goal.name)
                            .f64("slice_secs", slice.as_secs_f64())
                            .f64("available_secs", portfolio.available().as_secs_f64())
                    });
                    let token = portfolio.tokens[rung_idx].clone();
                    let bounds = portfolio.rungs[rung_idx];
                    Ok((goal_idx, rung_idx, bounds, slice, token))
                }
            };
            let (goal_idx, rung_idx, (app_depth, match_depth), slice, token) = match claimed {
                Ok(claim) => {
                    parked_streak = 0;
                    claim
                }
                Err(queue_len) => {
                    // Parked. Other queue entries may be claimable right
                    // now, so keep draining; only once a full queue's
                    // worth of consecutive pops were all starved parks
                    // (everything runnable is waiting on in-flight
                    // reservations) back off briefly so this loop does
                    // not spin on the scheduler lock.
                    parked_streak += 1;
                    if parked_streak >= queue_len.max(1) {
                        std::thread::sleep(Duration::from_millis(2));
                        parked_streak = 0;
                    }
                    continue;
                }
            };

            let mut config = self.config.base.clone().with_bounds(app_depth, match_depth);
            config.timeout = slice;
            let (caches, seed) = &namespaces[&goal_namespaces[goal_idx]];
            let ctx = SolverContext {
                cache: Some(caches.validity.clone()),
                cancel: token,
                enum_cache: caches.enumeration.clone(),
                lemma_seed: Some(seed.clone()),
                lemma_sink: Some(caches.lemmas.clone()),
            };
            events::emit(|| {
                Event::new("rung_start")
                    .uint("rung", rung_idx as u64)
                    .str("goal", &jobs[goal_idx].goal.name)
                    .uint("app_depth", app_depth as u64)
                    .uint("match_depth", match_depth as u64)
                    .f64("slice_secs", slice.as_secs_f64())
            });
            let started = Instant::now();
            let result = run_goal_in_context(&jobs[goal_idx].goal, config, &ctx);
            let elapsed = started.elapsed();
            events::emit(|| {
                let status = if result.solved {
                    "solved"
                } else if result.timed_out {
                    "truncated"
                } else {
                    "exhausted"
                };
                Event::new("rung_finish")
                    .uint("rung", rung_idx as u64)
                    .str("goal", &jobs[goal_idx].goal.name)
                    .uint("app_depth", app_depth as u64)
                    .uint("match_depth", match_depth as u64)
                    .str("status", status)
                    .f64("time_secs", elapsed.as_secs_f64())
            });

            let mut state = shared.lock().expect("scheduler state poisoned");
            let portfolio = &mut state.portfolios[goal_idx];
            portfolio.settle(rung_idx, slice, elapsed);
            events::emit(|| {
                Event::new("ledger_settle")
                    .uint("rung", rung_idx as u64)
                    .str("goal", &jobs[goal_idx].goal.name)
                    .f64(
                        "charged_secs",
                        elapsed.as_secs_f64().min(slice.as_secs_f64()),
                    )
                    .f64("remaining_secs", portfolio.available().as_secs_f64())
            });
            if !result.timed_out {
                // Ran to completion: solved, or genuinely exhausted its
                // search space (the synthesizer reports budget-truncated
                // exhaustion as a timeout, so this verdict is trustable).
                portfolio.record(rung_idx, RungOutcome::finished(result));
            } else if portfolio.tokens[rung_idx].is_cancelled() {
                // Aborted because a shallower sibling won.
                portfolio.record(rung_idx, RungOutcome::Cancelled);
            } else if portfolio.available() >= portfolio.min_slice() || portfolio.any_in_flight() {
                // Truncated at its slice with budget left (or refunds
                // still possible): re-queue in front of pending siblings
                // so the re-lent budget concentrates on the lowest
                // unfinished rung, mirroring the sequential ladder. The
                // warm enumeration memo and validity cache make the
                // replayed prefix of the re-run cheap.
                state.queue.push_front((goal_idx, rung_idx));
            } else {
                portfolio.record(rung_idx, RungOutcome::OutOfBudget);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synquid_logic::{Qualifier, Sort, Term};
    use synquid_types::{BaseType, Environment, RType, Schema};

    fn identity_goal(name: &str) -> Goal {
        let mut env = Environment::new();
        env.add_qualifiers(Qualifier::standard(Sort::Int));
        Goal::new(
            name,
            env,
            Schema::monotype(RType::fun(
                "n",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int)),
                ),
            )),
        )
    }

    fn impossible_goal(name: &str) -> Goal {
        // {Int | ν = n + 1} with no components: no E-term can satisfy it.
        let mut env = Environment::new();
        env.add_qualifiers(Qualifier::standard(Sort::Int));
        Goal::new(
            name,
            env,
            Schema::monotype(RType::fun(
                "n",
                RType::int(),
                RType::refined(
                    BaseType::Int,
                    Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int).plus(Term::int(1))),
                ),
            )),
        )
    }

    fn engine(jobs: usize) -> Engine {
        Engine::new(EngineConfig {
            jobs,
            timeout: Duration::from_secs(30),
            ..EngineConfig::default()
        })
    }

    #[test]
    fn batch_results_arrive_in_submission_order() {
        let batch: Vec<GoalJob> = (0..4)
            .map(|i| GoalJob::new(format!("job{i}"), identity_goal(&format!("id{i}"))))
            .collect();
        let report = engine(4).run(batch);
        assert!(report.all_solved());
        let names: Vec<&str> = report
            .outcomes
            .iter()
            .map(|o| o.result.name.as_str())
            .collect();
        assert_eq!(names, ["id0", "id1", "id2", "id3"]);
        assert_eq!(report.outcomes[2].source, "job2");
        assert_eq!(report.jobs, 4);
    }

    #[test]
    fn single_and_multi_worker_runs_agree() {
        let batch = || {
            vec![
                GoalJob::new("a", identity_goal("id")),
                GoalJob::new("b", impossible_goal("nope")),
            ]
        };
        let sequential = engine(1).run(batch());
        let parallel = engine(8).run(batch());
        for (s, p) in sequential.outcomes.iter().zip(&parallel.outcomes) {
            assert_eq!(s.result.solved, p.result.solved);
            assert_eq!(s.result.program, p.result.program);
            assert_eq!(s.winning_rung, p.winning_rung);
        }
        assert!(sequential.outcomes[0].result.solved);
        assert!(!sequential.outcomes[1].result.solved);
        assert!(
            !sequential.outcomes[1].result.timed_out,
            "an exhausted search space is not a timeout"
        );
    }

    #[test]
    fn winner_cancels_deeper_rungs() {
        let report = engine(1).run(vec![GoalJob::new("a", identity_goal("id"))]);
        let outcome = &report.outcomes[0];
        assert!(outcome.result.solved);
        // `id` solves at the first rung; the other four are cancelled.
        assert_eq!(outcome.winning_rung, Some(DEFAULT_RUNGS[0]));
        assert_eq!(outcome.rungs_run, 1);
        assert_eq!(outcome.rungs_cancelled, DEFAULT_RUNGS.len() - 1);
    }

    #[test]
    fn the_shared_cache_sees_traffic_from_all_goals() {
        let batch: Vec<GoalJob> = (0..3)
            .map(|i| GoalJob::new("batch", identity_goal(&format!("id{i}"))))
            .collect();
        let report = engine(2).run(batch);
        let cache = report.cache;
        assert!(cache.misses > 0, "fresh queries must be recorded");
        assert!(
            cache.hits > 0,
            "identical goals must hit the shared cache: {cache:?}"
        );
    }

    #[test]
    fn empty_batches_are_fine() {
        let report = engine(4).run(Vec::new());
        assert!(report.outcomes.is_empty());
        assert!(report.all_solved());
    }
}
