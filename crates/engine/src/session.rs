//! Resident synthesis sessions: the engine as a library.
//!
//! Historically every CLI invocation (batch, `explain`, `fuzz`) built
//! its own interner, validity cache, enumeration memo, and lemma store,
//! used them for one run, and died with the process — even though BENCH
//! shows ~50% of validity queries within one cold batch are repeats. A
//! [`SynthesisSession`] inverts that ownership: it is the long-lived
//! holder of all cross-goal solver state, and every entry point borrows
//! it instead of constructing caches.
//!
//! # Namespacing
//!
//! Cross-goal state is only worth sharing between goals that speak the
//! same language: caches are keyed by a [`LibraryFingerprint`] — a hash
//! of the component library (datatypes, measures, component signatures,
//! qualifier sets) — and a mismatched fingerprint gets a fresh cache
//! namespace. Namespacing is a pollution/fairness boundary, not a
//! soundness one: validity keys are whole formulas, enumeration keys
//! embed the full environment fingerprint, and lemmas are facts about
//! portable atom keys, so even a fingerprint collision could not make a
//! cached verdict wrong — it would only let two libraries share a
//! namespace's budget.
//!
//! # Epochs and eviction
//!
//! Each batch run against the session closes one GC epoch
//! ([`SynthesisSession::advance_epoch`], called by
//! [`Engine::run_batch`](crate::Engine::run_batch)): entries touched
//! this epoch survive, entries cold for two full epochs are evicted,
//! and every cache also enforces a size bound with an once-per-epoch
//! cold sweep on overflow (see [`SessionLimits`]). Eviction is always
//! sound — validity verdicts and enumeration sets are pure functions of
//! their keys, and each lemma is implied by the encoding of any query
//! containing its atoms — so dropping state can only cost time, never
//! correctness.
//!
//! # Snapshots
//!
//! [`SynthesisSession::serialize`] persists the durable layers
//! (validity verdicts and lemmas; enumeration sets are cheap to rebuild
//! and reference in-memory programs) in a versioned text format, and
//! [`SynthesisSession::warm_start`] loads one best-effort: a stale
//! version, truncated file, or corrupt line falls back to a cold start
//! without error — a fleet node must boot either way.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use synquid_core::{EnumerationCache, EnumerationCacheStats};
use synquid_logic::snapshot::{decode_term, encode_term};
use synquid_solver::{
    LemmaStoreStats, SharedLemmaStore, SharedValidityCache, SmtResult, ValidityCacheStats,
};
use synquid_telemetry::{events, events::Event};
use synquid_types::Environment;

/// Size bounds for each cache layer of a session namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionLimits {
    /// Stored `(antecedent, consequent)` verdicts per namespace.
    pub validity_entries: usize,
    /// Stored enumeration candidate sets per namespace.
    pub enumeration_entries: usize,
    /// Resident theory lemmas per namespace.
    pub lemmas: usize,
}

impl Default for SessionLimits {
    fn default() -> SessionLimits {
        SessionLimits {
            validity_entries: SharedValidityCache::DEFAULT_MAX_ENTRIES,
            enumeration_entries: EnumerationCache::MAX_ENTRIES,
            lemmas: SharedLemmaStore::DEFAULT_MAX_LEMMAS,
        }
    }
}

/// The component-library key of one cache namespace: a 128-bit FNV-1a
/// hash over a canonical rendering of the environment's datatypes
/// (constructors included), measures, component signatures (in
/// declaration order), and qualifier set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LibraryFingerprint(u128);

impl LibraryFingerprint {
    /// Fingerprints a goal's top-level environment.
    pub fn of_env(env: &Environment) -> LibraryFingerprint {
        // `Environment::fingerprint` canonically renders component
        // signatures, path conditions (empty at the top level),
        // qualifiers, and measures; datatypes (with constructor
        // signatures) are appended through their deterministic
        // `BTreeMap` order.
        let mut text = env.fingerprint();
        for (name, dt) in env.datatypes() {
            text.push_str("d ");
            text.push_str(name);
            text.push(':');
            text.push_str(&format!("{dt:?}"));
            text.push(';');
        }
        LibraryFingerprint(fnv1a_128(text.as_bytes()))
    }

    fn from_hex(hex: &str) -> Option<LibraryFingerprint> {
        u128::from_str_radix(hex, 16).ok().map(LibraryFingerprint)
    }
}

impl fmt::Display for LibraryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// 128-bit FNV-1a; dependency-free and stable across platforms and
/// process runs (unlike `DefaultHasher`, whose seeds vary).
fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The cache handles of one library namespace. Cloning shares the
/// underlying state; a borrower wires these into its `SolverContext`s
/// and never constructs caches of its own.
#[derive(Debug, Clone)]
pub struct SessionCaches {
    /// Cross-run SMT validity memo.
    pub validity: SharedValidityCache,
    /// Cross-run E-term enumeration memo.
    pub enumeration: EnumerationCache,
    /// Cross-run theory-lemma pool (frozen into a seed per batch run).
    pub lemmas: SharedLemmaStore,
}

impl SessionCaches {
    fn with_limits(limits: &SessionLimits) -> SessionCaches {
        SessionCaches {
            validity: SharedValidityCache::with_max_entries(limits.validity_entries),
            enumeration: EnumerationCache::with_max_entries(limits.enumeration_entries),
            lemmas: SharedLemmaStore::with_max_lemmas(limits.lemmas),
        }
    }
}

#[derive(Debug)]
struct SessionState {
    namespaces: BTreeMap<LibraryFingerprint, SessionCaches>,
    limits: SessionLimits,
    /// GC epochs closed so far (== batch runs completed against this
    /// session).
    epochs: usize,
}

/// A long-lived synthesis session: the owner of all cross-goal caches,
/// shared by every entry point. Cloning shares the session.
#[derive(Debug, Clone)]
pub struct SynthesisSession {
    inner: Arc<Mutex<SessionState>>,
}

impl Default for SynthesisSession {
    fn default() -> SynthesisSession {
        SynthesisSession::new()
    }
}

/// Aggregated counters of a session (summed over its namespaces).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionStats {
    /// Validity-cache counters, summed across namespaces.
    pub validity: ValidityCacheStats,
    /// Enumeration-cache counters, summed across namespaces.
    pub enumeration: EnumerationCacheStats,
    /// Lemma-store counters, summed across namespaces.
    pub lemmas: LemmaStoreStats,
    /// Distinct library namespaces resident.
    pub namespaces: usize,
    /// GC epochs closed (== batch runs completed).
    pub epochs: usize,
}

impl SessionStats {
    /// The counters accumulated since an earlier snapshot of the same
    /// session — one run's traffic against a resident session. Gauges
    /// (entries, resident lemmas, namespaces, epochs) keep their
    /// end-of-run values.
    pub fn since(&self, earlier: &SessionStats) -> SessionStats {
        SessionStats {
            validity: self.validity.since(&earlier.validity),
            enumeration: self.enumeration.since(&earlier.enumeration),
            lemmas: LemmaStoreStats {
                resident: self.lemmas.resident,
                absorbed: self.lemmas.absorbed - earlier.lemmas.absorbed,
                evicted: self.lemmas.evicted - earlier.lemmas.evicted,
                epoch: self.lemmas.epoch,
            },
            namespaces: self.namespaces,
            epochs: self.epochs,
        }
    }
}

/// Version tag of the snapshot container format.
const SNAPSHOT_HEADER: &str = "synquid-session v1";

/// Escapes a lemma atom key for the space-separated snapshot line
/// format. Keys are arbitrary strings (pretty-printed terms, debug
/// renderings), so `%` and every whitespace character are
/// percent-escaped.
fn escape_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for c in key.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_key`]. Returns `None` on any escape sequence
/// [`escape_key`] does not produce — a malformed key makes the whole
/// snapshot load cold.
fn unescape_key(field: &str) -> Option<String> {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match (chars.next(), chars.next()) {
            (Some('2'), Some('5')) => out.push('%'),
            (Some('2'), Some('0')) => out.push(' '),
            (Some('0'), Some('9')) => out.push('\t'),
            (Some('0'), Some('A')) => out.push('\n'),
            (Some('0'), Some('D')) => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// What [`SynthesisSession::warm_start`] managed to load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStart {
    /// Validity verdicts preloaded.
    pub validity_entries: usize,
    /// Lemmas preloaded.
    pub lemmas: usize,
    /// Library namespaces restored.
    pub namespaces: usize,
    /// True if the snapshot was unusable (missing/stale/corrupt) and
    /// the session starts cold instead.
    pub cold: bool,
}

impl SynthesisSession {
    /// Creates an empty session with default cache limits.
    pub fn new() -> SynthesisSession {
        SynthesisSession::with_limits(SessionLimits::default())
    }

    /// Creates an empty session with explicit cache limits (applied to
    /// every namespace created from now on).
    pub fn with_limits(limits: SessionLimits) -> SynthesisSession {
        SynthesisSession {
            inner: Arc::new(Mutex::new(SessionState {
                namespaces: BTreeMap::new(),
                limits,
                epochs: 0,
            })),
        }
    }

    /// The cache namespace for one component library, created on first
    /// use. Callers wire the returned handles into their
    /// `SolverContext`s; two environments with the same fingerprint
    /// share state, different fingerprints never do.
    pub fn caches_for(&self, fingerprint: LibraryFingerprint) -> SessionCaches {
        let mut state = self.inner.lock().expect("session poisoned");
        let limits = state.limits;
        state
            .namespaces
            .entry(fingerprint)
            .or_insert_with(|| SessionCaches::with_limits(&limits))
            .clone()
    }

    /// Convenience: [`LibraryFingerprint::of_env`] + [`Self::caches_for`].
    pub fn caches_for_env(&self, env: &Environment) -> SessionCaches {
        self.caches_for(LibraryFingerprint::of_env(env))
    }

    /// Closes one GC epoch across every namespace (see the module docs
    /// for the eviction rule). Called by `Engine::run_batch` after each
    /// batch; emits one `session_epoch` trace event summarizing what
    /// was evicted.
    pub fn advance_epoch(&self) {
        let mut state = self.inner.lock().expect("session poisoned");
        for caches in state.namespaces.values() {
            caches.validity.advance_epoch();
            caches.enumeration.advance_epoch();
            caches.lemmas.advance_epoch();
        }
        state.epochs += 1;
        let stats = Self::sum_stats(&state);
        events::emit(|| {
            Event::new("session_epoch")
                .uint("epoch", stats.epochs as u64)
                .uint("namespaces", stats.namespaces as u64)
                .uint("validity_entries", stats.validity.entries as u64)
                .uint("validity_evicted", stats.validity.entries_evicted as u64)
                .uint("terms_interned", stats.validity.terms_interned as u64)
                .uint("terms_evicted", stats.validity.terms_evicted as u64)
                .uint("enum_entries", stats.enumeration.entries as u64)
                .uint("enum_evicted", stats.enumeration.evicted as u64)
                .uint("lemmas_resident", stats.lemmas.resident as u64)
                .uint("lemmas_evicted", stats.lemmas.evicted as u64)
        });
    }

    /// Aggregated counters over all namespaces.
    pub fn stats(&self) -> SessionStats {
        let state = self.inner.lock().expect("session poisoned");
        Self::sum_stats(&state)
    }

    fn sum_stats(state: &SessionState) -> SessionStats {
        let mut out = SessionStats {
            namespaces: state.namespaces.len(),
            epochs: state.epochs,
            ..SessionStats::default()
        };
        for caches in state.namespaces.values() {
            let v = caches.validity.stats();
            out.validity.hits += v.hits;
            out.validity.misses += v.misses;
            out.validity.negative_hits += v.negative_hits;
            out.validity.entries += v.entries;
            out.validity.interned_nodes += v.interned_nodes;
            out.validity.entries_evicted += v.entries_evicted;
            out.validity.terms_interned += v.terms_interned;
            out.validity.terms_evicted += v.terms_evicted;
            out.validity.epoch = out.validity.epoch.max(v.epoch);
            let e = caches.enumeration.stats();
            out.enumeration.hits += e.hits;
            out.enumeration.misses += e.misses;
            out.enumeration.entries += e.entries;
            out.enumeration.evicted += e.evicted;
            out.enumeration.epoch = out.enumeration.epoch.max(e.epoch);
            let l = caches.lemmas.stats();
            out.lemmas.resident += l.resident;
            out.lemmas.absorbed += l.absorbed;
            out.lemmas.evicted += l.evicted;
            out.lemmas.epoch = out.lemmas.epoch.max(l.epoch);
        }
        out
    }

    /// Serializes the durable cache layers (validity verdicts and
    /// lemmas, per namespace) into the versioned snapshot text format.
    /// Enumeration sets are deliberately not persisted: they reference
    /// in-memory programs and types, and rebuilding them is cheap next
    /// to re-proving validity queries.
    pub fn serialize(&self) -> String {
        let state = self.inner.lock().expect("session poisoned");
        let mut out = String::new();
        out.push_str(SNAPSHOT_HEADER);
        out.push('\n');
        for (fingerprint, caches) in &state.namespaces {
            out.push_str(&format!("namespace {fingerprint}\n"));
            for (antecedent, consequent, result) in caches.validity.export_entries() {
                let a = encode_term(&antecedent);
                let c = encode_term(&consequent);
                let verdict = match result {
                    SmtResult::Sat => "sat",
                    SmtResult::Unsat => "unsat",
                    SmtResult::Unknown => continue, // not exported anyway
                };
                // The term encoding embeds whitespace only if an
                // identifier contains it, which the spec grammar never
                // produces; skip such entries rather than corrupt the
                // line format.
                if a.contains(char::is_whitespace) || c.contains(char::is_whitespace) {
                    continue;
                }
                out.push_str(&format!("validity {a} {c} {verdict}\n"));
            }
            for lemma in caches.lemmas.export_lemmas() {
                out.push_str("lemma");
                for (key, value) in &lemma {
                    // Atom keys routinely contain whitespace (pretty-
                    // printed terms, `Rational` debug output), so they
                    // are percent-escaped to fit the space-separated
                    // line format.
                    out.push_str(&format!(
                        " {} {}",
                        escape_key(key),
                        if *value { 1 } else { 0 }
                    ));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Loads a snapshot produced by [`Self::serialize`], best-effort:
    /// any version mismatch or malformed content makes the whole load a
    /// no-op cold start ([`WarmStart::cold`]) rather than an error —
    /// and never a partial one, so a truncated snapshot cannot seed a
    /// half-restored namespace.
    pub fn warm_start(&self, snapshot: &str) -> WarmStart {
        // Parse fully before touching any cache.
        let mut lines = snapshot.lines();
        if lines.next() != Some(SNAPSHOT_HEADER) {
            return WarmStart {
                cold: true,
                ..WarmStart::default()
            };
        }
        type Verdicts = Vec<(synquid_logic::Term, synquid_logic::Term, SmtResult)>;
        type Lemmas = Vec<synquid_solver::Lemma>;
        let mut parsed: Vec<(LibraryFingerprint, Verdicts, Lemmas)> = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let cold = WarmStart {
                cold: true,
                ..WarmStart::default()
            };
            if let Some(hex) = line.strip_prefix("namespace ") {
                match LibraryFingerprint::from_hex(hex) {
                    Some(fp) => parsed.push((fp, Vec::new(), Vec::new())),
                    None => return cold,
                }
            } else if let Some(rest) = line.strip_prefix("validity ") {
                let Some((_, verdicts, _)) = parsed.last_mut() else {
                    return cold;
                };
                let fields: Vec<&str> = rest.split(' ').collect();
                let [a, c, verdict] = fields.as_slice() else {
                    return cold;
                };
                let result = match *verdict {
                    "sat" => SmtResult::Sat,
                    "unsat" => SmtResult::Unsat,
                    _ => return cold,
                };
                match (decode_term(a), decode_term(c)) {
                    (Ok(a), Ok(c)) => verdicts.push((a, c, result)),
                    _ => return cold,
                }
            } else if let Some(rest) = line.strip_prefix("lemma ") {
                let Some((_, _, lemmas)) = parsed.last_mut() else {
                    return cold;
                };
                let fields: Vec<&str> = rest.split(' ').collect();
                if fields.is_empty() || !fields.len().is_multiple_of(2) {
                    return cold;
                }
                let mut lemma: synquid_solver::Lemma = Vec::with_capacity(fields.len() / 2);
                for pair in fields.chunks(2) {
                    let value = match pair[1] {
                        "0" => false,
                        "1" => true,
                        _ => return cold,
                    };
                    let Some(key) = unescape_key(pair[0]) else {
                        return cold;
                    };
                    lemma.push((key, value));
                }
                lemmas.push(lemma);
            } else {
                return cold;
            }
        }
        // Apply.
        let mut report = WarmStart::default();
        for (fingerprint, verdicts, lemmas) in parsed {
            let caches = self.caches_for(fingerprint);
            report.namespaces += 1;
            for (a, c, result) in verdicts {
                caches.validity.preload(a, c, result);
                report.validity_entries += 1;
            }
            for lemma in lemmas {
                caches.lemmas.absorb(lemma);
                report.lemmas += 1;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synquid_logic::{Qualifier, Sort, Term};
    use synquid_types::{RType, Schema};

    fn library(extra_component: bool) -> Environment {
        let mut env = Environment::new();
        env.add_qualifiers(Qualifier::standard(Sort::Int));
        env.add_var("zero", Schema::monotype(RType::int()));
        if extra_component {
            env.add_var(
                "inc",
                Schema::monotype(RType::fun("n", RType::int(), RType::int())),
            );
        }
        env
    }

    #[test]
    fn same_library_shares_a_namespace_different_libraries_do_not() {
        let session = SynthesisSession::new();
        let a = session.caches_for_env(&library(false));
        let b = session.caches_for_env(&library(false));
        let c = session.caches_for_env(&library(true));
        a.validity.insert(&Term::tt(), &Term::ff(), SmtResult::Sat);
        assert_eq!(
            b.validity.lookup(&Term::tt(), &Term::ff()),
            Some(SmtResult::Sat),
            "equal fingerprints share one cache"
        );
        assert_eq!(
            c.validity.lookup(&Term::tt(), &Term::ff()),
            None,
            "different fingerprints are isolated"
        );
        assert_eq!(session.stats().namespaces, 2);
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let f1 = LibraryFingerprint::of_env(&library(false));
        let f2 = LibraryFingerprint::of_env(&library(false));
        let f3 = LibraryFingerprint::of_env(&library(true));
        assert_eq!(f1, f2);
        assert_ne!(f1, f3);
        // Hex round trip (the snapshot format).
        assert_eq!(LibraryFingerprint::from_hex(&f1.to_string()), Some(f1));
    }

    #[test]
    fn qualifier_and_datatype_changes_change_the_fingerprint() {
        let plain = library(false);
        let mut more_qualifiers = library(false);
        more_qualifiers
            .add_qualifiers([Qualifier::new(Term::value_var(Sort::Int).ge(Term::int(0)))]);
        let mut with_datatype = library(false);
        with_datatype.add_datatype(synquid_types::list_datatype());
        let fp = LibraryFingerprint::of_env;
        assert_ne!(fp(&plain), fp(&more_qualifiers));
        assert_ne!(fp(&plain), fp(&with_datatype));
    }

    #[test]
    fn snapshot_round_trips_validity_and_lemmas() {
        let session = SynthesisSession::new();
        let caches = session.caches_for_env(&library(false));
        let x = Term::var("x", Sort::Int);
        caches
            .validity
            .insert(&x.le(Term::int(3)), &Term::ff(), SmtResult::Unsat);
        // Real atom keys contain whitespace and `%` (pretty-printed
        // terms, `Rational { num, den }` debug output) — the snapshot
        // escaping must round-trip them exactly.
        caches.lemmas.absorb(vec![
            ("le:Rational { num: 0, den: 1 }:1*[v:x]".to_string(), true),
            ("b<=1%".to_string(), false),
        ]);
        let snapshot = session.serialize();

        let restored = SynthesisSession::new();
        let report = restored.warm_start(&snapshot);
        assert!(!report.cold);
        assert_eq!(report.validity_entries, 1);
        assert_eq!(report.lemmas, 1);
        assert_eq!(report.namespaces, 1);
        let caches = restored.caches_for_env(&library(false));
        let x = Term::var("x", Sort::Int);
        assert_eq!(
            caches.validity.lookup(&x.le(Term::int(3)), &Term::ff()),
            Some(SmtResult::Unsat)
        );
        assert_eq!(caches.lemmas.stats().resident, 1);
        assert_eq!(
            caches.lemmas.export_lemmas(),
            vec![vec![
                ("le:Rational { num: 0, den: 1 }:1*[v:x]".to_string(), true),
                ("b<=1%".to_string(), false),
            ]],
            "escaped atom keys must round-trip byte-exactly"
        );
        assert_eq!(restored.stats().namespaces, 1);
    }

    #[test]
    fn corrupt_or_stale_snapshots_warm_start_as_cold() {
        for bad in [
            "",
            "synquid-session v0\nnamespace 00\n",
            "garbage",
            "synquid-session v1\nvalidity i1. i2. sat\n", // entry before namespace
            "synquid-session v1\nnamespace zz-not-hex\n",
            "synquid-session v1\nnamespace 0\nvalidity i1. sat\n", // missing field
            "synquid-session v1\nnamespace 0\nvalidity i1. i2. maybe\n",
            "synquid-session v1\nnamespace 0\nlemma a\n", // odd fields
            "synquid-session v1\nnamespace 0\nlemma a 2\n", // bad bool
            "synquid-session v1\nnamespace 0\nlemma a%ZZ 1\n", // bad escape
            "synquid-session v1\nnamespace 0\nvalidity qq i2. sat\n", // bad term
            "synquid-session v1\nnamespace 0\nwhatisthis\n",
        ] {
            let session = SynthesisSession::new();
            let report = session.warm_start(bad);
            assert!(report.cold, "{bad:?} must fall back to cold");
            assert_eq!(report.validity_entries + report.lemmas, 0);
            assert_eq!(
                session.stats().namespaces,
                0,
                "cold start must not leave partial namespaces: {bad:?}"
            );
        }
    }

    #[test]
    fn epoch_advance_reaches_every_layer() {
        let session = SynthesisSession::new();
        let caches = session.caches_for_env(&library(false));
        caches
            .validity
            .insert(&Term::tt(), &Term::ff(), SmtResult::Sat);
        session.advance_epoch();
        session.advance_epoch();
        session.advance_epoch();
        let stats = session.stats();
        assert_eq!(stats.epochs, 3);
        assert_eq!(stats.validity.entries, 0, "cold entries evicted");
        assert_eq!(stats.validity.epoch, 3);
        assert_eq!(stats.enumeration.epoch, 3);
        assert_eq!(stats.lemmas.epoch, 3);
    }
}
