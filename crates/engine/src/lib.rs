//! # synquid-engine
//!
//! The parallel synthesis engine: *how* synthesis work is executed,
//! layered on top of `synquid-core`'s single-goal procedure.
//!
//! Three cooperating parts (the architectural seam every future scaling
//! layer — sharding, a server frontend, multi-backend solving — plugs
//! into):
//!
//! * **multi-goal scheduler** ([`scheduler`]) — a `std::thread` work
//!   pool draining a queue of `(goal, rung)` jobs from one or many spec
//!   files, aggregating per-goal results, statistics, and failures in
//!   deterministic submission order;
//! * **portfolio search** ([`portfolio`]) — the iterative-deepening
//!   rungs of each goal become competing jobs under a shared per-goal
//!   time budget and cancellation tokens; the lowest rung that solves
//!   wins and cancels its deeper siblings, so the reported program is
//!   the one the sequential ladder would have found;
//! * **resident sessions** ([`session`]) — all cross-goal state (the
//!   [`SharedValidityCache`](synquid_solver::SharedValidityCache) with
//!   its hash-consed `(antecedent, consequent)` keys, the enumeration
//!   memo, and the theory-lemma pool) is owned by a long-lived
//!   [`SynthesisSession`], namespaced by component-library fingerprint
//!   and epoch-GC'd per batch; every worker's SMT backend borrows from
//!   its goal's namespace, so solver verdicts are reused across rungs,
//!   goals, threads, and — for a resident session — whole batch runs;
//!   hit/miss/negative counters surface in [`BatchReport::cache`],
//!   [`BatchReport::session`], and per-goal
//!   [`SynthesisStats`](synquid_core::SynthesisStats).
//!
//! ## Example
//!
//! ```
//! use std::time::Duration;
//! use synquid_engine::{Engine, EngineConfig, GoalJob};
//! use synquid_core::Goal;
//! use synquid_logic::{Qualifier, Sort, Term};
//! use synquid_types::{BaseType, Environment, RType, Schema};
//!
//! let mut env = Environment::new();
//! env.add_qualifiers(Qualifier::standard(Sort::Int));
//! let goal = Goal::new(
//!     "id",
//!     env,
//!     Schema::monotype(RType::fun(
//!         "n",
//!         RType::int(),
//!         RType::refined(
//!             BaseType::Int,
//!             Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int)),
//!         ),
//!     )),
//! );
//! let engine = Engine::new(EngineConfig {
//!     jobs: 2,
//!     timeout: Duration::from_secs(30),
//!     ..EngineConfig::default()
//! });
//! let report = engine.run(vec![GoalJob::new("example", goal)]);
//! assert!(report.all_solved());
//! ```

pub mod portfolio;
pub mod scheduler;
pub mod session;

pub use portfolio::{Portfolio, RungOutcome, DEFAULT_RUNGS};
pub use scheduler::{BatchReport, Engine, EngineConfig, GoalJob, GoalOutcome};
pub use session::{
    LibraryFingerprint, SessionCaches, SessionLimits, SessionStats, SynthesisSession, WarmStart,
};
