//! Portfolio search over iterative-deepening rungs, governed by a
//! per-goal **budget ledger**.
//!
//! The CLI used to walk the exploration-bound ladder sequentially:
//! shallow searches that exhaust their space hand the remaining budget to
//! the next rung. The engine turns the rungs of one goal into *competing
//! jobs* under a shared per-goal budget: every rung runs the same
//! deterministic single-rung search it would have run sequentially, and
//! the **lowest rung that solves wins**. When a rung wins, every deeper
//! sibling is cancelled through its [`CancellationToken`]; shallower
//! siblings are left to finish, because one of them could still produce a
//! better (lower-rung) winner.
//!
//! ## The ledger
//!
//! Budgets used to be a wall-clock deadline armed when the goal first got
//! a worker, with every rung's run bounded by "time until the deadline".
//! That had two failure modes the benchmark artifacts exposed: a doomed
//! shallow rung could silently eat the whole budget (the deepest rungs
//! were then declared "out of budget" after microsecond scraps, and the
//! goal reported a 0.5 s "timeout" of a 30 s budget), and nothing stopped
//! a rung from overshooting the deadline inside a long SMT call.
//!
//! The ledger instead tracks **consumption**: each rung attempt is
//! charged exactly the wall time it measured, and a rung may only claim a
//! bounded *slice* of what is left — on first attempt an even share,
//! `remaining / pending rungs` (the whole remainder for the last pending
//! rung), so an unknown-doomed shallow rung cannot eat the deeper rungs'
//! first chance. Slices are *reserved* while a rung runs so concurrent
//! attempts cannot overcommit the budget. A rung cut off at its slice is
//! not finished — it is re-queued and re-lent whatever budget its
//! *shallower* siblings leave behind ([`Portfolio::slice_for`]): once
//! everything shallower is settled, the lowest unfinished rung is the
//! sequential ladder's current position and inherits the remainder
//! outright (repeated attempts are cheap because the enumeration memo
//! and the shared validity cache are warm, but fewer, larger slices
//! still beat thrashing). A rung that finishes under its slice refunds
//! the rest by construction. Rungs that a completed failure *proves
//! equivalent* (see [`Portfolio::skippable`]) are skipped outright and
//! refund their whole slice.
//!
//! The outcome report is honest: a goal is `timed_out` only if some rung
//! actually ran out of the goal's budget, and the reported time is the
//! goal's total consumption — never a scrap measured by the last
//! unluckiest rung.

use std::time::Duration;
use synquid_core::{CancellationToken, SynthesisStats};
use synquid_lang::runner::RunResult;

/// The default exploration-bound ladder `(application depth, match
/// depth)`, shallowest first — the same rungs the sequential CLI used.
pub const DEFAULT_RUNGS: &[(usize, usize)] = &[(1, 0), (1, 1), (2, 1), (3, 1), (3, 2)];

/// How one rung of a goal's portfolio ended.
#[derive(Debug, Clone)]
pub enum RungOutcome {
    /// The rung ran to completion (solved or exhausted its search space);
    /// the result is the single-rung [`RunResult`] (boxed: the other
    /// variants are unit-sized and outcome vectors are long-lived).
    Finished(Box<RunResult>),
    /// The rung was cancelled before or while running because a
    /// shallower sibling won.
    Cancelled,
    /// A completed sibling failure proved this rung's search would be
    /// identical (see [`Portfolio::skippable`]); its slice was refunded.
    Skipped,
    /// The goal's budget was consumed before the rung could finish
    /// (pure budget exhaustion, no winner involved).
    OutOfBudget,
}

impl RungOutcome {
    /// Boxes a completed run into the [`RungOutcome::Finished`] variant.
    pub fn finished(result: RunResult) -> RungOutcome {
        RungOutcome::Finished(Box::new(result))
    }
}

/// Equivalence evidence extracted from a completed, genuinely failed
/// rung: its bounds plus the two "could a bigger bound matter?" flags the
/// synthesizer measured during the run.
#[derive(Debug, Clone, Copy)]
struct FailureEvidence {
    bounds: (usize, usize),
    /// The candidate universe was still growing at the run's maximum
    /// application depth.
    frontier_open: bool,
    /// A pattern match was declined because the match-depth bound ran
    /// out.
    match_bound_hit: bool,
}

/// Book-keeping for the portfolio of one goal: one slot and one
/// cancellation token per rung, plus the budget ledger.
#[derive(Debug)]
pub struct Portfolio {
    /// The exploration bounds of each rung, shallowest first.
    pub rungs: Vec<(usize, usize)>,
    /// Per-rung cancellation tokens (shared with the running worker).
    pub tokens: Vec<CancellationToken>,
    outcomes: Vec<Option<RungOutcome>>,
    in_flight: Vec<bool>,
    /// How many attempts each rung has started (a truncated rung is
    /// re-queued, so counts above one mean re-lent budget).
    attempts: Vec<usize>,
    budget: Duration,
    /// Wall time charged by completed (and truncated) rung attempts.
    consumed: Duration,
    /// Slices reserved by attempts currently running.
    reserved: Duration,
    /// Evidence from completed genuine failures, for skip decisions.
    failures: Vec<FailureEvidence>,
    /// When false, every claim gets the full remaining budget and no
    /// rung is ever skipped — the pre-ledger behaviour, kept for the
    /// shaping-parity regression tests.
    shaping: bool,
}

impl Portfolio {
    /// Creates the portfolio state for one goal.
    pub fn new(rungs: Vec<(usize, usize)>, budget: Duration) -> Portfolio {
        Portfolio::with_shaping(rungs, budget, true)
    }

    /// Creates the portfolio state, optionally with budget shaping
    /// (slicing + equivalence skipping) disabled.
    pub fn with_shaping(rungs: Vec<(usize, usize)>, budget: Duration, shaping: bool) -> Portfolio {
        let n = rungs.len();
        Portfolio {
            rungs,
            tokens: (0..n).map(|_| CancellationToken::new()).collect(),
            outcomes: vec![None; n],
            in_flight: vec![false; n],
            attempts: vec![0; n],
            budget,
            consumed: Duration::ZERO,
            reserved: Duration::ZERO,
            failures: Vec::new(),
            shaping,
        }
    }

    /// Total wall time charged to this goal so far.
    pub fn consumed(&self) -> Duration {
        self.consumed
    }

    /// Budget not yet consumed and not reserved by running attempts.
    pub fn available(&self) -> Duration {
        self.budget
            .saturating_sub(self.consumed)
            .saturating_sub(self.reserved)
    }

    /// The smallest slice worth starting a rung attempt for: below this,
    /// a claim is treated as budget exhaustion rather than thrashing
    /// through micro-slices.
    pub fn min_slice(&self) -> Duration {
        (self.budget / 16).min(Duration::from_millis(250))
    }

    /// Rungs with no final outcome that are not currently running.
    fn pending(&self) -> usize {
        self.outcomes
            .iter()
            .zip(&self.in_flight)
            .filter(|(o, f)| o.is_none() && !**f)
            .count()
    }

    /// True if any sibling attempt is currently running.
    pub fn any_in_flight(&self) -> bool {
        self.in_flight.iter().any(|f| *f)
    }

    /// The slice the next claim may reserve: an even share of the
    /// available budget across pending rungs, the whole remainder for the
    /// last one. Without shaping, always the whole remainder.
    pub fn slice(&self) -> Duration {
        let available = self.available();
        if !self.shaping {
            return available;
        }
        let pending = self.pending().max(1) as u32;
        if pending == 1 {
            available
        } else {
            available / pending
        }
    }

    /// The slice a claim on `rung` may reserve.
    ///
    /// A rung's *first* attempt gets the fair share of [`Portfolio::slice`]
    /// — an even split over all pending rungs, so an unknown-doomed
    /// shallow rung cannot silently eat the deeper rungs' first chance.
    /// A *retried* rung (truncated at an earlier slice) instead shares
    /// only with pending rungs **shallower** than itself: once every
    /// shallower sibling is settled, the lowest unfinished rung is the
    /// sequential ladder's current position and inherits the whole
    /// remainder — this is the "unsolved goals re-lend unused budget to
    /// deeper rungs" rule, and it keeps a budget-bound rung from being
    /// thrashed through ever-smaller slices (each re-run replays its
    /// memoized prefix, so fewer, larger slices waste less).
    pub fn slice_for(&self, rung: usize) -> Duration {
        let available = self.available();
        if !self.shaping || self.attempts[rung] == 0 {
            return self.slice();
        }
        let shallower_pending = self.outcomes[..rung]
            .iter()
            .zip(&self.in_flight)
            .filter(|(o, f)| o.is_none() && !**f)
            .count() as u32;
        available / (1 + shallower_pending)
    }

    /// Reserves `slice` for a starting attempt on `rung`.
    pub fn start(&mut self, rung: usize, slice: Duration) {
        debug_assert!(!self.in_flight[rung]);
        self.in_flight[rung] = true;
        self.attempts[rung] += 1;
        self.reserved += slice;
    }

    /// Settles a finished or truncated attempt on `rung`: the reservation
    /// is released and the measured wall time is charged to the ledger.
    pub fn settle(&mut self, rung: usize, slice: Duration, elapsed: Duration) {
        debug_assert!(self.in_flight[rung]);
        self.in_flight[rung] = false;
        self.reserved = self.reserved.saturating_sub(slice);
        self.consumed += elapsed;
    }

    /// True if some already-finished rung shallower than `rung` solved —
    /// meaning `rung` cannot win and need not run.
    pub fn is_dominated(&self, rung: usize) -> bool {
        self.outcomes[..rung]
            .iter()
            .any(|o| matches!(o, Some(RungOutcome::Finished(r)) if r.solved))
    }

    /// True if a completed genuine failure proves `rung`'s search would
    /// be identical, so running it cannot change the goal's outcome.
    ///
    /// A failed run at bounds `(a, m)` reports two facts: whether the
    /// candidate universe was still growing at application depth `a`
    /// (`frontier_open`), and whether the match-depth bound `m` ever
    /// declined a possible match (`match_bound_hit`). Generation at depth
    /// `d` extends the depth `d − 1` sets, so a closed frontier means
    /// every deeper depth enumerates the very same candidates; an unhit
    /// match bound means a deeper match bound changes nothing either.
    /// A later rung `(a', m')` with `a' ≥ a`, `m' ≥ m` therefore re-runs
    /// the identical deterministic search — and must fail identically —
    /// whenever each bound that actually differs is one the failed run
    /// proved irrelevant.
    pub fn skippable(&self, rung: usize) -> bool {
        if !self.shaping {
            return false;
        }
        let (a_j, m_j) = self.rungs[rung];
        self.failures.iter().any(|f| {
            let (a_i, m_i) = f.bounds;
            a_j >= a_i
                && m_j >= m_i
                && (a_j == a_i || !f.frontier_open)
                && (m_j == m_i || !f.match_bound_hit)
        })
    }

    /// Records a rung's final outcome. If the rung solved, all deeper
    /// rungs are cancelled (shallower ones keep running: one of them
    /// could still produce the winning, lower-rung solution). If it
    /// failed genuinely, its equivalence evidence is kept for skip
    /// decisions.
    pub fn record(&mut self, rung: usize, outcome: RungOutcome) {
        if let RungOutcome::Finished(r) = &outcome {
            if r.solved {
                for token in &self.tokens[rung + 1..] {
                    token.cancel();
                }
            } else if !r.timed_out {
                let stats = r.stats.unwrap_or(SynthesisStats {
                    // Without stats we cannot prove anything: treat both
                    // bounds as binding so nothing is skipped.
                    frontier_open: true,
                    match_bound_hit: true,
                    ..SynthesisStats::default()
                });
                self.failures.push(FailureEvidence {
                    bounds: self.rungs[rung],
                    frontier_open: stats.frontier_open,
                    match_bound_hit: stats.match_bound_hit,
                });
            }
        }
        self.outcomes[rung] = Some(outcome);
    }

    /// True once every rung has an outcome.
    pub fn is_complete(&self) -> bool {
        self.outcomes.iter().all(|o| o.is_some())
    }

    /// True if some rung ran out of the goal's budget — the only
    /// condition under which the goal may report a timeout.
    pub fn ran_out_of_budget(&self) -> bool {
        self.outcomes
            .iter()
            .any(|o| matches!(o, Some(RungOutcome::OutOfBudget)))
    }

    /// The verdict of a complete portfolio: the result of the *lowest*
    /// rung that solved, or — mirroring the sequential ladder's
    /// reporting — the deepest finished failure otherwise.
    ///
    /// Returns the result together with the winning rung's bounds (for
    /// solved goals).
    pub fn verdict(&self) -> (Option<&RunResult>, Option<(usize, usize)>) {
        for (i, outcome) in self.outcomes.iter().enumerate() {
            if let Some(RungOutcome::Finished(r)) = outcome {
                if r.solved {
                    return (Some(r), Some(self.rungs[i]));
                }
            }
        }
        let last_failure = self.outcomes.iter().rev().find_map(|o| match o {
            Some(RungOutcome::Finished(r)) => Some(r.as_ref()),
            _ => None,
        });
        (last_failure, None)
    }

    /// Number of rungs that actually ran to completion.
    pub fn rungs_run(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, Some(RungOutcome::Finished(_))))
            .count()
    }

    /// Number of rungs cancelled because a shallower sibling won.
    pub fn rungs_cancelled(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, Some(RungOutcome::Cancelled)))
            .count()
    }

    /// Number of rungs skipped because a completed failure proved them
    /// equivalent.
    pub fn rungs_skipped(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, Some(RungOutcome::Skipped)))
            .count()
    }

    /// Number of rungs that never finished because the goal's budget was
    /// consumed.
    pub fn rungs_out_of_budget(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, Some(RungOutcome::OutOfBudget)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, solved: bool) -> RunResult {
        RunResult {
            name: name.into(),
            solved,
            timed_out: false,
            time_secs: 0.0,
            program: solved.then(|| format!("{name}-program")),
            ast: None,
            code_size: None,
            stats: None,
        }
    }

    fn failure_with_flags(name: &str, frontier_open: bool, match_bound_hit: bool) -> RunResult {
        RunResult {
            stats: Some(SynthesisStats {
                frontier_open,
                match_bound_hit,
                ..SynthesisStats::default()
            }),
            ..result(name, false)
        }
    }

    #[test]
    fn lowest_solved_rung_wins_regardless_of_finish_order() {
        let mut p = Portfolio::new(DEFAULT_RUNGS.to_vec(), Duration::from_secs(10));
        // Deep rung finishes first and solves; shallow rung solves later.
        p.record(3, RungOutcome::finished(result("deep", true)));
        assert!(!p.is_dominated(0), "shallower rungs must keep running");
        assert!(p.is_dominated(4), "deeper rungs are dominated");
        assert!(p.tokens[4].is_cancelled(), "deeper rungs get cancelled");
        assert!(!p.tokens[2].is_cancelled());
        p.record(1, RungOutcome::finished(result("shallow", true)));
        p.record(0, RungOutcome::finished(result("r0", false)));
        p.record(2, RungOutcome::Cancelled);
        p.record(4, RungOutcome::Cancelled);
        assert!(p.is_complete());
        let (winner, rung) = p.verdict();
        assert_eq!(winner.unwrap().program.as_deref(), Some("shallow-program"));
        assert_eq!(rung, Some((1, 1)));
        assert_eq!(p.rungs_run(), 3);
        assert_eq!(p.rungs_cancelled(), 2);
    }

    #[test]
    fn all_failures_report_the_deepest_finished_rung() {
        let mut p = Portfolio::new(vec![(1, 0), (2, 1)], Duration::from_secs(10));
        p.record(0, RungOutcome::finished(result("r0", false)));
        p.record(1, RungOutcome::finished(result("r1", false)));
        let (verdict, rung) = p.verdict();
        assert_eq!(verdict.unwrap().name, "r1");
        assert_eq!(rung, None);
        assert!(!p.ran_out_of_budget(), "exhaustion is not budget overrun");
    }

    #[test]
    fn the_ledger_charges_measured_time_and_refunds_reservations() {
        let mut p = Portfolio::new(DEFAULT_RUNGS.to_vec(), Duration::from_secs(30));
        // First claim: an even share of the full budget.
        assert_eq!(p.slice(), Duration::from_secs(6));
        p.start(0, Duration::from_secs(6));
        assert_eq!(p.available(), Duration::from_secs(24));
        // The rung fails fast: only the measured time is charged; the
        // rest of its reservation flows back to the pool.
        p.settle(0, Duration::from_secs(6), Duration::from_millis(100));
        p.record(0, RungOutcome::finished(result("r0", false)));
        assert_eq!(p.consumed(), Duration::from_millis(100));
        // Four rungs remain: each share grew beyond the original 6 s.
        assert!(p.slice() > Duration::from_secs(7));
        // The last pending rung gets everything that is left.
        for r in 1..4 {
            p.record(r, RungOutcome::finished(result("r", false)));
        }
        assert_eq!(p.slice(), p.available());
    }

    #[test]
    fn closed_frontier_failures_prove_deeper_rungs_equivalent() {
        let mut p = Portfolio::new(DEFAULT_RUNGS.to_vec(), Duration::from_secs(30));
        // Rung (1, 0) fails with a closed frontier and no declined match:
        // every deeper rung would rerun the identical search.
        p.record(
            0,
            RungOutcome::finished(failure_with_flags("r0", false, false)),
        );
        for rung in 1..DEFAULT_RUNGS.len() {
            assert!(p.skippable(rung), "rung {rung} must be skippable");
        }
    }

    #[test]
    fn binding_bounds_block_the_skip() {
        let mut p = Portfolio::new(DEFAULT_RUNGS.to_vec(), Duration::from_secs(30));
        // (1, 0) failed, but a match was declined: only rungs with the
        // same match depth may be skipped (none in the ladder), and once
        // the frontier is open too, nothing may be.
        p.record(
            0,
            RungOutcome::finished(failure_with_flags("r0", false, true)),
        );
        assert!(!p.skippable(1), "deeper match depth could matter");
        p.record(
            1,
            RungOutcome::finished(failure_with_flags("r1", true, false)),
        );
        // (2, 1) has a deeper app depth than (1, 1) whose frontier is
        // open — not skippable; (3, 1) likewise.
        assert!(!p.skippable(2));
        assert!(!p.skippable(3));
        // A failure without stats proves nothing.
        let mut q = Portfolio::new(DEFAULT_RUNGS.to_vec(), Duration::from_secs(30));
        q.record(0, RungOutcome::finished(result("r0", false)));
        assert!(!q.skippable(1));
    }

    #[test]
    fn retried_rungs_inherit_the_ladder_remainder() {
        let mut p = Portfolio::new(DEFAULT_RUNGS.to_vec(), Duration::from_secs(30));
        // First claims get the fair even share.
        assert_eq!(p.slice_for(2), Duration::from_secs(6));
        // Rungs 0–2 settle (0 and 1 finish, 2 is truncated at its slice).
        for rung in 0..2 {
            p.start(rung, Duration::from_secs(6));
            p.settle(rung, Duration::from_secs(6), Duration::from_millis(500));
            p.record(rung, RungOutcome::finished(result("r", false)));
        }
        p.start(2, Duration::from_secs(9));
        p.settle(2, Duration::from_secs(9), Duration::from_secs(9));
        // Rung 2's retry shares with no shallower pending rung: the whole
        // 20 s remainder is re-lent to it, not split with rungs 3 and 4
        // (which still get their fair first share if rung 2 exhausts).
        assert_eq!(p.slice_for(2), Duration::from_secs(20));
        // Rungs 3 and 4 have not started: their first claim stays fair.
        assert_eq!(p.slice_for(3), Duration::from_secs(20) / 3);
    }

    #[test]
    fn shaping_off_disables_slices_and_skips() {
        let mut p = Portfolio::with_shaping(DEFAULT_RUNGS.to_vec(), Duration::from_secs(30), false);
        assert_eq!(p.slice(), Duration::from_secs(30), "full remainder");
        p.record(
            0,
            RungOutcome::finished(failure_with_flags("r0", false, false)),
        );
        assert!(!p.skippable(1));
    }

    #[test]
    fn out_of_budget_is_distinct_from_cancellation() {
        let mut p = Portfolio::new(vec![(1, 0), (2, 1), (3, 2)], Duration::from_secs(10));
        // Rung 0 burned the whole budget; the rest never ran. No winner
        // was involved, so nothing counts as "cancelled".
        p.start(0, Duration::from_secs(10));
        p.settle(0, Duration::from_secs(10), Duration::from_secs(10));
        p.record(0, RungOutcome::finished(result("r0", false)));
        p.record(1, RungOutcome::OutOfBudget);
        p.record(2, RungOutcome::OutOfBudget);
        assert!(p.is_complete());
        assert_eq!(p.rungs_run(), 1);
        assert_eq!(p.rungs_cancelled(), 0);
        assert_eq!(p.rungs_out_of_budget(), 2);
        assert!(p.ran_out_of_budget());
        let (verdict, rung) = p.verdict();
        assert_eq!(verdict.unwrap().name, "r0");
        assert_eq!(rung, None);
    }
}
