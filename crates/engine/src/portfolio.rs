//! Portfolio search over iterative-deepening rungs.
//!
//! The CLI used to walk the exploration-bound ladder sequentially:
//! shallow searches that exhaust their space hand the remaining budget to
//! the next rung. The engine turns the rungs of one goal into *competing
//! jobs* under a shared per-goal time budget: every rung runs the same
//! deterministic single-rung search it would have run sequentially, and
//! the **lowest rung that solves wins** — so the chosen program is the
//! one the sequential ladder would have reported, regardless of how many
//! workers raced. When a rung wins, every deeper sibling is cancelled
//! through its [`CancellationToken`]; shallower siblings are left to
//! finish, because one of them could still produce a better (lower-rung)
//! winner.

use std::time::{Duration, Instant};
use synquid_core::CancellationToken;
use synquid_lang::runner::RunResult;

/// The default exploration-bound ladder `(application depth, match
/// depth)`, shallowest first — the same rungs the sequential CLI used.
pub const DEFAULT_RUNGS: &[(usize, usize)] = &[(1, 0), (1, 1), (2, 1), (3, 1), (3, 2)];

/// How one rung of a goal's portfolio ended.
#[derive(Debug, Clone)]
pub enum RungOutcome {
    /// The rung ran to completion (solved or failed); the result is the
    /// single-rung [`RunResult`].
    Finished(RunResult),
    /// The rung was cancelled before or while running because a
    /// shallower sibling won.
    Cancelled,
    /// The goal's budget was already exhausted when the rung came up, so
    /// it never ran (pure budget exhaustion, no winner involved).
    OutOfBudget,
}

/// Book-keeping for the portfolio of one goal: one slot and one
/// cancellation token per rung.
#[derive(Debug)]
pub struct Portfolio {
    /// The exploration bounds of each rung, shallowest first.
    pub rungs: Vec<(usize, usize)>,
    /// Per-rung cancellation tokens (shared with the running worker).
    pub tokens: Vec<CancellationToken>,
    outcomes: Vec<Option<RungOutcome>>,
    /// The per-goal deadline, armed when the first rung starts.
    deadline: Option<Instant>,
    budget: Duration,
}

impl Portfolio {
    /// Creates the portfolio state for one goal.
    pub fn new(rungs: Vec<(usize, usize)>, budget: Duration) -> Portfolio {
        let n = rungs.len();
        Portfolio {
            rungs,
            tokens: (0..n).map(|_| CancellationToken::new()).collect(),
            outcomes: vec![None; n],
            deadline: None,
            budget,
        }
    }

    /// Arms (on first use) and returns the per-goal deadline. The budget
    /// starts counting when the goal first gets a worker, not when the
    /// batch was submitted, so late goals in a long queue are not dead on
    /// arrival.
    pub fn deadline(&mut self, now: Instant) -> Instant {
        *self.deadline.get_or_insert(now + self.budget)
    }

    /// True if some already-finished rung shallower than `rung` solved —
    /// meaning `rung` cannot win and need not run.
    pub fn is_dominated(&self, rung: usize) -> bool {
        self.outcomes[..rung]
            .iter()
            .any(|o| matches!(o, Some(RungOutcome::Finished(r)) if r.solved))
    }

    /// Records a rung outcome. If the rung solved, all deeper rungs are
    /// cancelled (shallower ones keep running: one of them could still
    /// produce the winning, lower-rung solution).
    pub fn record(&mut self, rung: usize, outcome: RungOutcome) {
        let solved = matches!(&outcome, RungOutcome::Finished(r) if r.solved);
        self.outcomes[rung] = Some(outcome);
        if solved {
            for token in &self.tokens[rung + 1..] {
                token.cancel();
            }
        }
    }

    /// True once every rung has an outcome.
    pub fn is_complete(&self) -> bool {
        self.outcomes.iter().all(|o| o.is_some())
    }

    /// The verdict of a complete portfolio: the result of the *lowest*
    /// rung that solved, or — mirroring the sequential ladder's
    /// reporting — the deepest finished failure otherwise.
    ///
    /// Returns the result together with the winning rung's bounds (for
    /// solved goals).
    pub fn verdict(&self) -> (Option<&RunResult>, Option<(usize, usize)>) {
        for (i, outcome) in self.outcomes.iter().enumerate() {
            if let Some(RungOutcome::Finished(r)) = outcome {
                if r.solved {
                    return (Some(r), Some(self.rungs[i]));
                }
            }
        }
        let last_failure = self.outcomes.iter().rev().find_map(|o| match o {
            Some(RungOutcome::Finished(r)) => Some(r),
            _ => None,
        });
        (last_failure, None)
    }

    /// Number of rungs that actually ran to completion.
    pub fn rungs_run(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, Some(RungOutcome::Finished(_))))
            .count()
    }

    /// Number of rungs cancelled because a shallower sibling won.
    pub fn rungs_cancelled(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, Some(RungOutcome::Cancelled)))
            .count()
    }

    /// Number of rungs that never ran because the goal's budget was
    /// already exhausted.
    pub fn rungs_out_of_budget(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, Some(RungOutcome::OutOfBudget)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, solved: bool) -> RunResult {
        RunResult {
            name: name.into(),
            solved,
            timed_out: false,
            time_secs: 0.0,
            program: solved.then(|| format!("{name}-program")),
            code_size: None,
            stats: None,
        }
    }

    #[test]
    fn lowest_solved_rung_wins_regardless_of_finish_order() {
        let mut p = Portfolio::new(DEFAULT_RUNGS.to_vec(), Duration::from_secs(10));
        // Deep rung finishes first and solves; shallow rung solves later.
        p.record(3, RungOutcome::Finished(result("deep", true)));
        assert!(!p.is_dominated(0), "shallower rungs must keep running");
        assert!(p.is_dominated(4), "deeper rungs are dominated");
        assert!(p.tokens[4].is_cancelled(), "deeper rungs get cancelled");
        assert!(!p.tokens[2].is_cancelled());
        p.record(1, RungOutcome::Finished(result("shallow", true)));
        p.record(0, RungOutcome::Finished(result("r0", false)));
        p.record(2, RungOutcome::Cancelled);
        p.record(4, RungOutcome::Cancelled);
        assert!(p.is_complete());
        let (winner, rung) = p.verdict();
        assert_eq!(winner.unwrap().program.as_deref(), Some("shallow-program"));
        assert_eq!(rung, Some((1, 1)));
        assert_eq!(p.rungs_run(), 3);
        assert_eq!(p.rungs_cancelled(), 2);
    }

    #[test]
    fn all_failures_report_the_deepest_finished_rung() {
        let mut p = Portfolio::new(vec![(1, 0), (2, 1)], Duration::from_secs(10));
        p.record(0, RungOutcome::Finished(result("r0", false)));
        p.record(1, RungOutcome::Finished(result("r1", false)));
        let (verdict, rung) = p.verdict();
        assert_eq!(verdict.unwrap().name, "r1");
        assert_eq!(rung, None);
    }

    #[test]
    fn out_of_budget_is_distinct_from_cancellation() {
        let mut p = Portfolio::new(vec![(1, 0), (2, 1), (3, 2)], Duration::from_secs(10));
        // Rung 0 burned the whole budget; the rest never ran. No winner
        // was involved, so nothing counts as "cancelled".
        p.record(0, RungOutcome::Finished(result("r0", false)));
        p.record(1, RungOutcome::OutOfBudget);
        p.record(2, RungOutcome::OutOfBudget);
        assert!(p.is_complete());
        assert_eq!(p.rungs_run(), 1);
        assert_eq!(p.rungs_cancelled(), 0);
        assert_eq!(p.rungs_out_of_budget(), 2);
        let (verdict, rung) = p.verdict();
        assert_eq!(verdict.unwrap().name, "r0");
        assert_eq!(rung, None);
    }

    #[test]
    fn deadline_is_armed_on_first_use() {
        let mut p = Portfolio::new(vec![(1, 0)], Duration::from_secs(5));
        let now = Instant::now();
        let d1 = p.deadline(now);
        let d2 = p.deadline(now + Duration::from_secs(3));
        assert_eq!(d1, d2, "the deadline must not move once armed");
    }
}
