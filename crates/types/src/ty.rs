//! Refinement types, schemas, and contextual types (Fig. 2 of the paper).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use synquid_logic::{Sort, Substitution, Term, VALUE_VAR};

/// A base type `B`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseType {
    /// Primitive booleans.
    Bool,
    /// Primitive integers.
    Int,
    /// A datatype `D T₁ … Tₙ` with (possibly refined) type arguments.
    Data(String, Vec<RType>),
    /// A type variable `α` (either a rigid variable bound by the goal
    /// schema or a free unification variable introduced by the constraint
    /// solver — free variables are distinguished by their name prefix, see
    /// [`is_free_type_var`]).
    TypeVar(String),
}

/// Prefix of free (unification) type variables.
pub const FREE_TYPE_VAR_PREFIX: &str = "'";

/// True if the name denotes a free unification type variable.
pub fn is_free_type_var(name: &str) -> bool {
    name.starts_with(FREE_TYPE_VAR_PREFIX)
}

impl BaseType {
    /// The logical sort corresponding to values of this base type.
    pub fn sort(&self) -> Sort {
        match self {
            BaseType::Bool => Sort::Bool,
            BaseType::Int => Sort::Int,
            BaseType::Data(name, args) => {
                Sort::Data(name.clone(), args.iter().map(|a| a.sort()).collect())
            }
            BaseType::TypeVar(name) => Sort::Var(name.clone()),
        }
    }
}

/// A refinement type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RType {
    /// A scalar type `{B | ψ}`.
    Scalar {
        /// The base type.
        base: BaseType,
        /// The refinement over `ν` and program variables.
        refinement: Term,
    },
    /// A dependent function type `x:T → T'` (`T'` may mention `x` only if
    /// `T` is scalar).
    Function {
        /// Formal argument name.
        arg_name: String,
        /// Argument type.
        arg: Box<RType>,
        /// Result type.
        ret: Box<RType>,
    },
    /// The `top` type: a supertype of every type (used for goals with an
    /// underspecified shape, e.g. match scrutinees).
    Any,
    /// The `bot` type: a subtype of every type (used for the left-hand
    /// side of higher-order application goals).
    Bot,
}

impl RType {
    /// An unrefined scalar of the given base type (refinement `true`).
    pub fn base(base: BaseType) -> RType {
        RType::Scalar {
            base,
            refinement: Term::tt(),
        }
    }

    /// A refined scalar type.
    pub fn refined(base: BaseType, refinement: Term) -> RType {
        RType::Scalar { base, refinement }
    }

    /// The `Int` type.
    pub fn int() -> RType {
        RType::base(BaseType::Int)
    }

    /// The `Bool` type.
    pub fn bool() -> RType {
        RType::base(BaseType::Bool)
    }

    /// `{Int | ν ≥ 0}` (the `Nat` abbreviation of the paper).
    pub fn nat() -> RType {
        RType::refined(BaseType::Int, Term::value_var(Sort::Int).ge(Term::int(0)))
    }

    /// `{Int | ν > 0}` (the `Pos` abbreviation).
    pub fn pos() -> RType {
        RType::refined(BaseType::Int, Term::value_var(Sort::Int).gt(Term::int(0)))
    }

    /// An unrefined type variable.
    pub fn tyvar(name: impl Into<String>) -> RType {
        RType::base(BaseType::TypeVar(name.into()))
    }

    /// A function type.
    pub fn fun(arg_name: impl Into<String>, arg: RType, ret: RType) -> RType {
        RType::Function {
            arg_name: arg_name.into(),
            arg: Box::new(arg),
            ret: Box::new(ret),
        }
    }

    /// Builds a curried function type from argument bindings and a result.
    pub fn fun_n(args: Vec<(String, RType)>, ret: RType) -> RType {
        args.into_iter()
            .rev()
            .fold(ret, |acc, (name, arg)| RType::fun(name, arg, acc))
    }

    /// True if this is a scalar type.
    pub fn is_scalar(&self) -> bool {
        matches!(self, RType::Scalar { .. })
    }

    /// True if this is a function type.
    pub fn is_function(&self) -> bool {
        matches!(self, RType::Function { .. })
    }

    /// The refinement of a scalar type (`true` for non-scalars).
    pub fn refinement(&self) -> Term {
        match self {
            RType::Scalar { refinement, .. } => refinement.clone(),
            _ => Term::tt(),
        }
    }

    /// The base type of a scalar type.
    pub fn base_type(&self) -> Option<&BaseType> {
        match self {
            RType::Scalar { base, .. } => Some(base),
            _ => None,
        }
    }

    /// The logical sort of values of this type (`None` for functions and
    /// top/bot).
    pub fn sort(&self) -> Sort {
        match self {
            RType::Scalar { base, .. } => base.sort(),
            RType::Any | RType::Bot => Sort::Unknown,
            RType::Function { .. } => Sort::Unknown,
        }
    }

    /// The *shape* of the type: the same type with all refinements erased.
    pub fn shape(&self) -> RType {
        match self {
            RType::Scalar { base, .. } => RType::Scalar {
                base: match base {
                    BaseType::Data(n, args) => {
                        BaseType::Data(n.clone(), args.iter().map(|a| a.shape()).collect())
                    }
                    other => other.clone(),
                },
                refinement: Term::tt(),
            },
            RType::Function { arg_name, arg, ret } => RType::Function {
                arg_name: arg_name.clone(),
                arg: Box::new(arg.shape()),
                ret: Box::new(ret.shape()),
            },
            RType::Any => RType::Any,
            RType::Bot => RType::Bot,
        }
    }

    /// Conjoins an additional refinement onto a scalar type (the `Refine`
    /// operation of Fig. 6). Non-scalar types are returned unchanged.
    pub fn refine_with(&self, extra: &Term) -> RType {
        match self {
            RType::Scalar { base, refinement } => RType::Scalar {
                base: base.clone(),
                refinement: refinement.clone().and(extra.clone()),
            },
            _ => self.clone(),
        }
    }

    /// The argument types and final result of a curried function type.
    pub fn uncurry(&self) -> (Vec<(String, RType)>, RType) {
        let mut args = Vec::new();
        let mut current = self.clone();
        while let RType::Function { arg_name, arg, ret } = current {
            args.push((arg_name, *arg));
            current = *ret;
        }
        (args, current)
    }

    /// Substitutes terms for program variables inside all refinements.
    pub fn substitute(&self, subst: &Substitution) -> RType {
        match self {
            RType::Scalar { base, refinement } => RType::Scalar {
                base: base.substitute(subst),
                refinement: refinement.substitute(subst),
            },
            RType::Function { arg_name, arg, ret } => {
                // The formal argument shadows any outer binding.
                let mut inner = subst.clone();
                inner.remove(arg_name);
                RType::Function {
                    arg_name: arg_name.clone(),
                    arg: Box::new(arg.substitute(subst)),
                    ret: Box::new(ret.substitute(&inner)),
                }
            }
            RType::Any => RType::Any,
            RType::Bot => RType::Bot,
        }
    }

    /// Substitutes a single program variable.
    pub fn substitute_var(&self, name: &str, replacement: &Term) -> RType {
        let mut subst = Substitution::new();
        subst.insert(name.to_string(), replacement.clone());
        self.substitute(&subst)
    }

    /// Substitutes types for type variables. Substituting a scalar
    /// `{B | ψ}` for `α` inside `{α | φ}` produces `{B | ψ ∧ φ}` (the
    /// refinements are conjoined), which is how polymorphic instantiation
    /// refines occurrences of the type variable.
    pub fn substitute_type_vars(&self, map: &BTreeMap<String, RType>) -> RType {
        match self {
            RType::Scalar { base, refinement } => match base {
                BaseType::TypeVar(name) => match map.get(name) {
                    Some(replacement) => replacement.refine_with(refinement),
                    None => self.clone(),
                },
                BaseType::Data(n, args) => RType::Scalar {
                    base: BaseType::Data(
                        n.clone(),
                        args.iter().map(|a| a.substitute_type_vars(map)).collect(),
                    ),
                    refinement: refinement.clone(),
                },
                _ => self.clone(),
            },
            RType::Function { arg_name, arg, ret } => RType::Function {
                arg_name: arg_name.clone(),
                arg: Box::new(arg.substitute_type_vars(map)),
                ret: Box::new(ret.substitute_type_vars(map)),
            },
            RType::Any => RType::Any,
            RType::Bot => RType::Bot,
        }
    }

    /// The free type variables occurring in this type.
    pub fn type_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_type_vars(&mut out);
        out
    }

    fn collect_type_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            RType::Scalar { base, .. } => match base {
                BaseType::TypeVar(name) => {
                    out.insert(name.clone());
                }
                BaseType::Data(_, args) => {
                    for a in args {
                        a.collect_type_vars(out);
                    }
                }
                _ => {}
            },
            RType::Function { arg, ret, .. } => {
                arg.collect_type_vars(out);
                ret.collect_type_vars(out);
            }
            _ => {}
        }
    }

    /// Renames the value variable of a scalar type to a program variable:
    /// the refinement of `{B | ψ}` becomes `[x/ν]ψ`.
    pub fn refinement_for(&self, var_name: &str) -> Term {
        match self {
            RType::Scalar { base, refinement } => {
                refinement.substitute_value(&Term::var(var_name, base.sort()))
            }
            _ => Term::tt(),
        }
    }

    /// The "singleton strengthening" of a scalar variable lookup (rule
    /// VarSC): `{B | ν = x}`, with datatype equalities expanded into
    /// measure equalities by the caller.
    pub fn singleton(base: BaseType, var_name: &str) -> RType {
        let sort = base.sort();
        RType::Scalar {
            base,
            refinement: Term::value_var(sort.clone()).eq(Term::var(var_name, sort)),
        }
    }

    /// True if the refinement is syntactically `false` (the vacuous type
    /// used by round-trip application goals).
    pub fn is_vacuous(&self) -> bool {
        matches!(self, RType::Scalar { refinement, .. } if refinement.is_false())
    }
}

impl BaseType {
    fn substitute(&self, subst: &Substitution) -> BaseType {
        match self {
            BaseType::Data(n, args) => BaseType::Data(
                n.clone(),
                args.iter().map(|a| a.substitute(subst)).collect(),
            ),
            _ => self.clone(),
        }
    }
}

/// A type schema `∀ α₁ … αₙ . T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// The bound type variables.
    pub type_vars: Vec<String>,
    /// The body type.
    pub ty: RType,
}

impl Schema {
    /// A monomorphic schema.
    pub fn monotype(ty: RType) -> Schema {
        Schema {
            type_vars: Vec::new(),
            ty,
        }
    }

    /// A polymorphic schema.
    pub fn forall(type_vars: Vec<String>, ty: RType) -> Schema {
        Schema { type_vars, ty }
    }

    /// True if the schema binds no type variables.
    pub fn is_monomorphic(&self) -> bool {
        self.type_vars.is_empty()
    }

    /// Instantiates the schema by substituting the given types for its
    /// bound variables (positionally).
    pub fn instantiate(&self, args: &[RType]) -> RType {
        let map: BTreeMap<String, RType> = self
            .type_vars
            .iter()
            .cloned()
            .zip(args.iter().cloned())
            .collect();
        self.ty.substitute_type_vars(&map)
    }
}

impl From<RType> for Schema {
    fn from(ty: RType) -> Schema {
        Schema::monotype(ty)
    }
}

/// A contextual type `let C in T`: a type that may mention the variables
/// bound (with their precise types) in the context `C`. Contextual types
/// let the application rule name the argument of an application without
/// requiring the argument term to have a logical counterpart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextualType {
    /// Context bindings, innermost last.
    pub context: Vec<(String, RType)>,
    /// The underlying type.
    pub ty: RType,
}

impl ContextualType {
    /// A contextual type with an empty context.
    pub fn plain(ty: RType) -> ContextualType {
        ContextualType {
            context: Vec::new(),
            ty,
        }
    }

    /// Adds a binding to the context.
    pub fn bind(mut self, name: impl Into<String>, ty: RType) -> ContextualType {
        self.context.push((name.into(), ty));
        self
    }
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseType::Bool => write!(f, "Bool"),
            BaseType::Int => write!(f, "Int"),
            BaseType::TypeVar(a) => write!(f, "{a}"),
            BaseType::Data(n, args) => {
                write!(f, "{n}")?;
                for a in args {
                    write!(f, " ({a})")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for RType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RType::Scalar { base, refinement } => {
                if refinement.is_true() {
                    write!(f, "{base}")
                } else {
                    write!(f, "{{{base} | {refinement}}}")
                }
            }
            RType::Function { arg_name, arg, ret } => {
                write!(f, "{arg_name}:({arg}) -> {ret}")
            }
            RType::Any => write!(f, "top"),
            RType::Bot => write!(f, "bot"),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.type_vars.is_empty() {
            write!(f, "<{}> . ", self.type_vars.join(", "))?;
        }
        write!(f, "{}", self.ty)
    }
}

/// A convenience constructor for the `ν` term at a given base type.
pub fn value_of(base: &BaseType) -> Term {
    Term::var(VALUE_VAR, base.sort())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_of(t: RType) -> RType {
        RType::base(BaseType::Data("List".into(), vec![t]))
    }

    #[test]
    fn nat_and_pos_abbreviations() {
        assert_eq!(
            RType::nat().refinement(),
            Term::value_var(Sort::Int).ge(Term::int(0))
        );
        assert!(RType::pos().is_scalar());
    }

    #[test]
    fn uncurry_roundtrips_fun_n() {
        let ty = RType::fun_n(
            vec![
                ("n".to_string(), RType::nat()),
                ("x".to_string(), RType::tyvar("a")),
            ],
            list_of(RType::tyvar("a")),
        );
        let (args, ret) = ty.uncurry();
        assert_eq!(args.len(), 2);
        assert_eq!(args[0].0, "n");
        assert_eq!(ret, list_of(RType::tyvar("a")));
    }

    #[test]
    fn shape_erases_refinements_deeply() {
        let ty = RType::fun(
            "n",
            RType::nat(),
            RType::refined(
                BaseType::Data("List".into(), vec![RType::pos()]),
                Term::value_var(Sort::Int).eq(Term::int(3)),
            ),
        );
        let shape = ty.shape();
        let (args, ret) = shape.uncurry();
        assert!(args[0].1.refinement().is_true());
        assert!(ret.refinement().is_true());
        match ret.base_type().unwrap() {
            BaseType::Data(_, params) => assert!(params[0].refinement().is_true()),
            _ => panic!("expected datatype"),
        }
    }

    #[test]
    fn type_var_substitution_conjoins_refinements() {
        // {α | ν ≠ x} with α := {Int | ν ≥ 0} gives {Int | ν ≥ 0 ∧ ν ≠ x}.
        let alpha = RType::refined(
            BaseType::TypeVar("a".into()),
            Term::value_var(Sort::var("a")).neq(Term::var("x", Sort::var("a"))),
        );
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), RType::nat());
        let result = alpha.substitute_type_vars(&map);
        match &result {
            RType::Scalar { base, refinement } => {
                assert_eq!(*base, BaseType::Int);
                // Both conjuncts present.
                let s = refinement.to_string();
                assert!(s.contains(">="), "missing nat refinement: {s}");
                assert!(s.contains("!="), "missing original refinement: {s}");
            }
            other => panic!("expected scalar, got {other:?}"),
        }
    }

    #[test]
    fn program_var_substitution_respects_shadowing() {
        // In n:Int → {Int | ν = n}, substituting n should do nothing to the
        // return type because the formal argument shadows it.
        let ty = RType::fun(
            "n",
            RType::int(),
            RType::refined(
                BaseType::Int,
                Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int)),
            ),
        );
        let substituted = ty.substitute_var("n", &Term::int(5));
        assert_eq!(substituted, ty);
    }

    #[test]
    fn refinement_for_renames_value_var() {
        let t = RType::nat();
        assert_eq!(
            t.refinement_for("n"),
            Term::var("n", Sort::Int).ge(Term::int(0))
        );
    }

    #[test]
    fn schema_instantiation_is_positional() {
        let schema = Schema::forall(
            vec!["a".to_string()],
            RType::fun("x", RType::tyvar("a"), list_of(RType::tyvar("a"))),
        );
        let inst = schema.instantiate(&[RType::int()]);
        let (args, ret) = inst.uncurry();
        assert_eq!(args[0].1, RType::int());
        match ret.base_type().unwrap() {
            BaseType::Data(_, params) => assert_eq!(params[0], RType::int()),
            _ => panic!("expected list"),
        }
    }

    #[test]
    fn display_is_readable() {
        let ty = RType::fun("n", RType::nat(), list_of(RType::tyvar("a")));
        let s = ty.to_string();
        assert!(s.contains("n:"));
        assert!(s.contains("List"));
    }

    #[test]
    fn free_type_var_prefix_is_detected() {
        assert!(is_free_type_var("'t0"));
        assert!(!is_free_type_var("a"));
    }

    #[test]
    fn type_vars_are_collected_from_nested_positions() {
        let ty = RType::fun(
            "f",
            RType::fun("x", RType::tyvar("a"), RType::tyvar("b")),
            list_of(RType::tyvar("a")),
        );
        let vars = ty.type_vars();
        assert!(vars.contains("a"));
        assert!(vars.contains("b"));
        assert_eq!(vars.len(), 2);
    }
}
