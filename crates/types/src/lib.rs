//! # synquid-types
//!
//! The polymorphic refinement type system of the Synquid reproduction:
//! types and schemas (Fig. 2), datatypes and measures, typing environments
//! with the assumption extractor `⟦Γ⟧ψ`, the incremental subtyping
//! constraint solver (`Solve`, Fig. 6), type consistency (Fig. 5), and
//! termination weakening for recursive bindings.
//!
//! The actual round-trip *checking rules* over program terms (Fig. 4) and
//! the synthesis procedure built on them live in `synquid-core`; this
//! crate provides everything those rules need to manipulate types.
//!
//! ## Example
//!
//! ```
//! use synquid_types::{ConstraintSolver, Environment, RType};
//! use synquid_solver::Smt;
//!
//! let env = Environment::new();
//! let mut solver = ConstraintSolver::default();
//! let mut smt = Smt::new();
//! // {Int | ν > 0} <: {Int | ν ≥ 0}
//! assert!(solver.subtype(&env, &RType::pos(), &RType::nat(), &mut smt, "pos<:nat").is_ok());
//! ```

pub mod data;
pub mod env;
pub mod solve;
pub mod termination;
pub mod ty;

pub use data::{
    bst_datatype, increasing_list_datatype, list_datatype, Constructor, Datatype, Datatypes,
    Measure,
};
pub use env::Environment;
pub use solve::{ConstraintSolver, TypeError};
pub use termination::{terminating_argument, termination_metric, weaken_for_recursion};
pub use ty::{is_free_type_var, BaseType, ContextualType, RType, Schema};
