//! Typing environments `Γ` and the assumption extractor `⟦Γ⟧ψ`.

use crate::data::{Datatype, Datatypes, Measure};
use crate::ty::{BaseType, RType, Schema};
use std::collections::{BTreeMap, BTreeSet};
use synquid_logic::{QSpace, Qualifier, Sort, Term};

/// A typing environment: variable bindings, path conditions, datatype
/// declarations, and the logical qualifiers `Q` available for unknown
/// refinements and branch conditions.
#[derive(Debug, Clone, Default)]
pub struct Environment {
    vars: BTreeMap<String, Schema>,
    var_order: Vec<String>,
    path_conditions: Vec<Term>,
    datatypes: Datatypes,
    constructors: BTreeMap<String, String>, // constructor name -> datatype name
    measures: BTreeMap<String, Measure>,
    qualifiers: Vec<Qualifier>,
}

impl Environment {
    /// An empty environment.
    pub fn new() -> Environment {
        Environment::default()
    }

    // -----------------------------------------------------------------
    // Construction
    // -----------------------------------------------------------------

    /// Registers a datatype: its constructors become components (bound as
    /// ordinary variables) and its measures become known uninterpreted
    /// functions.
    pub fn add_datatype(&mut self, dt: Datatype) {
        for c in &dt.constructors {
            self.constructors.insert(c.name.clone(), dt.name.clone());
            self.add_var(c.name.clone(), c.schema.clone());
        }
        for m in &dt.measures {
            self.measures.insert(m.name.clone(), m.clone());
        }
        self.datatypes.insert(dt.name.clone(), dt);
    }

    /// Binds a variable (or component) with the given schema.
    pub fn add_var(&mut self, name: impl Into<String>, schema: impl Into<Schema>) {
        let name = name.into();
        if !self.vars.contains_key(&name) {
            self.var_order.push(name.clone());
        }
        self.vars.insert(name, schema.into());
    }

    /// Adds a path condition (which may contain predicate unknowns).
    pub fn add_path_condition(&mut self, cond: Term) {
        if !cond.is_true() {
            self.path_conditions.push(cond);
        }
    }

    /// Adds logical qualifiers to `Q`.
    pub fn add_qualifiers(&mut self, qs: impl IntoIterator<Item = Qualifier>) {
        self.qualifiers.extend(qs);
    }

    // -----------------------------------------------------------------
    // Lookup
    // -----------------------------------------------------------------

    /// Looks up a variable's schema.
    pub fn lookup(&self, name: &str) -> Option<&Schema> {
        self.vars.get(name)
    }

    /// True if the name is a datatype constructor.
    pub fn is_constructor(&self, name: &str) -> bool {
        self.constructors.contains_key(name)
    }

    /// The datatype a constructor belongs to.
    pub fn constructor_datatype(&self, name: &str) -> Option<&Datatype> {
        self.constructors
            .get(name)
            .and_then(|dt| self.datatypes.get(dt))
    }

    /// Looks up a datatype declaration.
    pub fn datatype(&self, name: &str) -> Option<&Datatype> {
        self.datatypes.get(name)
    }

    /// All registered datatypes.
    pub fn datatypes(&self) -> &Datatypes {
        &self.datatypes
    }

    /// Looks up a measure by name.
    pub fn measure(&self, name: &str) -> Option<&Measure> {
        self.measures.get(name)
    }

    /// The measures defined on a datatype.
    pub fn measures_of(&self, datatype: &str) -> Vec<&Measure> {
        self.measures
            .values()
            .filter(|m| m.datatype == datatype)
            .collect()
    }

    /// The logical qualifiers `Q`.
    pub fn qualifiers(&self) -> &[Qualifier] {
        &self.qualifiers
    }

    /// Variable names in insertion order (components first, then locals).
    pub fn var_names(&self) -> &[String] {
        &self.var_order
    }

    /// The path conditions currently in force.
    pub fn path_conditions(&self) -> &[Term] {
        &self.path_conditions
    }

    /// All variables bound to scalar types, with their sorts.
    pub fn scalar_vars(&self) -> Vec<(String, Sort)> {
        self.var_order
            .iter()
            .filter_map(|name| {
                let schema = &self.vars[name];
                if !schema.is_monomorphic() {
                    return None;
                }
                match &schema.ty {
                    RType::Scalar { base, .. } => Some((name.clone(), base.sort())),
                    _ => None,
                }
            })
            .collect()
    }

    // -----------------------------------------------------------------
    // Logical content
    // -----------------------------------------------------------------

    /// The conjunction of all path conditions, `P(Γ)`.
    pub fn path_condition(&self) -> Term {
        Term::conjunction(self.path_conditions.iter().cloned())
    }

    /// The assumption extractor `⟦Γ⟧ψ` of the paper: the conjunction of all
    /// path conditions and of the refinements of every scalar variable
    /// that is (transitively) mentioned by the path conditions or by `ψ`.
    ///
    /// The result is deduplicated: see [`Environment::assumptions_counted`].
    pub fn assumptions(&self, relevant_to: &Term) -> Term {
        self.assumptions_counted(relevant_to).0
    }

    /// Like [`Environment::assumptions`], and additionally reports how
    /// many duplicate conjuncts were dropped.
    ///
    /// Transitive refinement collection re-derives the same atoms many
    /// times over: a variable's refinement is pulled in once per
    /// *mention*, nested match arms re-state the scrutinee facts their
    /// enclosing environment already carries, and measure non-negativity
    /// facts repeat per occurrence. Every duplicate conjunct inflates the
    /// SMT encoding (more atoms, quadratically more ordering axioms), so
    /// the extractor flattens all facts into atomic conjuncts and keeps
    /// only the first occurrence of each, in derivation order — the
    /// conjunction is logically unchanged.
    pub fn assumptions_counted(&self, relevant_to: &Term) -> (Term, usize) {
        let mut relevant: BTreeSet<String> = relevant_to.free_vars().keys().cloned().collect();
        for pc in &self.path_conditions {
            relevant.extend(pc.free_vars().keys().cloned());
        }
        let mut dedup = DedupConjunction::new();
        for pc in &self.path_conditions {
            dedup.push(pc);
        }
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut worklist: Vec<String> = relevant.into_iter().collect();
        while let Some(name) = worklist.pop() {
            if !seen.insert(name.clone()) {
                continue;
            }
            let Some(schema) = self.vars.get(&name) else {
                continue;
            };
            if !schema.is_monomorphic() {
                continue;
            }
            if let RType::Scalar { .. } = &schema.ty {
                let fact = schema.ty.refinement_for(&name);
                if !fact.is_true() {
                    worklist.extend(fact.free_vars().keys().cloned());
                    dedup.push(&fact);
                }
            }
        }
        let body = Term::conjunction(dedup.conjuncts.iter().cloned());
        let nonneg = self.nonneg_measure_facts(&body.and(relevant_to.clone()));
        dedup.push(&nonneg);
        let dropped = dedup.dropped;
        (Term::conjunction(dedup.conjuncts), dropped)
    }

    /// All assumptions regardless of relevance (used as the environment
    /// assumption for liquid abduction consistency checks), deduplicated
    /// like [`Environment::assumptions_counted`].
    pub fn all_assumptions(&self) -> Term {
        let mut dedup = DedupConjunction::new();
        for pc in &self.path_conditions {
            dedup.push(pc);
        }
        for name in &self.var_order {
            let schema = &self.vars[name];
            if schema.is_monomorphic() && schema.ty.is_scalar() {
                let fact = schema.ty.refinement_for(name);
                if !fact.is_true() {
                    dedup.push(&fact);
                }
            }
        }
        Term::conjunction(dedup.conjuncts)
    }

    /// Non-negativity facts for termination measures: for every application
    /// `m t` occurring in `term` where `m` is declared non-negative, the
    /// fact `m t ≥ 0`.
    pub fn nonneg_measure_facts(&self, term: &Term) -> Term {
        let mut facts = Vec::new();
        let mut seen = BTreeSet::new();
        term.walk(&mut |t| {
            if let Term::App(name, _, Sort::Int) = t {
                if let Some(m) = self.measures.get(name) {
                    if m.non_negative && seen.insert(t.clone()) {
                        facts.push(t.clone().ge(Term::int(0)));
                    }
                }
            }
        });
        Term::conjunction(facts)
    }

    /// Equality of two datatype-sorted terms, expanded into measure
    /// equalities (datatype values are only observable through measures in
    /// the refinement logic).
    pub fn datatype_equality(&self, datatype: &str, lhs: Term, rhs: Term) -> Term {
        let mut eqs = vec![];
        for m in self.measures_of(datatype) {
            eqs.push(m.apply(lhs.clone()).eq(m.apply(rhs.clone())));
        }
        if eqs.is_empty() {
            lhs.eq(rhs)
        } else {
            Term::conjunction(eqs)
        }
    }

    /// The singleton type `{B | ν = x}` of a scalar variable lookup (rule
    /// VarSC), with datatype equalities expanded through measures.
    ///
    /// The variable's own refinement is retained in the result. For
    /// ordinary (monomorphic) variables this is redundant — their
    /// refinements are re-derivable through [`Environment::assumptions`] —
    /// but for instantiations of polymorphic bindings (most importantly
    /// nullary constructors such as `Nil`, whose type carries `len ν = 0`)
    /// the refinement exists only in the instantiated type, so dropping it
    /// here would lose the constructor's defining facts.
    pub fn singleton_type(&self, name: &str, ty: &RType) -> RType {
        match ty {
            RType::Scalar { base, refinement } => {
                let sort = base.sort();
                let equality = match base {
                    BaseType::Data(dt, _) => self.datatype_equality(
                        dt,
                        Term::value_var(sort.clone()),
                        Term::var(name, sort.clone()),
                    ),
                    _ => Term::value_var(sort.clone()).eq(Term::var(name, sort.clone())),
                };
                RType::Scalar {
                    base: base.clone(),
                    refinement: equality.and(refinement.clone()),
                }
            }
            other => other.clone(),
        }
    }

    /// Builds the qualifier space for a fresh predicate unknown whose value
    /// variable has the given sort (or no value variable for path
    /// conditions): every qualifier in `Q` instantiated with the scalar
    /// variables in scope (plus `ν` when a value sort is given, plus the
    /// literal `0`, which the paper's examples obtain from the `0`
    /// component).
    pub fn build_qspace(&self, value_sort: Option<Sort>) -> QSpace {
        let mut candidates: Vec<Term> = Vec::new();
        let has_value = value_sort.is_some();
        if let Some(s) = value_sort {
            candidates.push(Term::value_var(s));
        }
        for (name, sort) in self.scalar_vars() {
            // Skip function components bound in the environment (handled by
            // scalar_vars) and avoid duplicating ν.
            candidates.push(Term::var(name, sort));
        }
        candidates.push(Term::int(0));
        let mut space = QSpace::build(&self.qualifiers, &candidates);
        if !has_value {
            // Path conditions (liquid abduction) must not mention the value
            // variable; drop any atom that does.
            space = QSpace::from_atoms(
                space
                    .atoms()
                    .iter()
                    .filter(|a| !a.free_vars().contains_key(synquid_logic::VALUE_VAR))
                    .cloned()
                    .collect(),
            );
        }
        space
    }

    /// A copy of this environment with every path condition mapped
    /// through `f` (conditions that map to `true` are dropped). The
    /// synthesizer uses this to *concretize* an environment before
    /// memoized enumeration: path conditions containing predicate
    /// unknowns are replaced by their current valuations, so enumeration
    /// keys and generation-time checks never see another solver's
    /// unknowns.
    pub fn map_path_conditions(&self, f: impl Fn(&Term) -> Term) -> Environment {
        let mut out = self.clone();
        out.path_conditions = self
            .path_conditions
            .iter()
            .map(f)
            .filter(|t| !t.is_true())
            .collect();
        out
    }

    /// A canonical textual fingerprint of everything that can influence
    /// E-term enumeration in this environment: variable bindings (in
    /// order, with their full schemas), path conditions, qualifiers, and
    /// measure declarations. Two environments with equal fingerprints
    /// produce identical candidate sets, which is what makes the
    /// enumeration memo (`synquid-core`'s `EnumerationCache`) sound — the
    /// fingerprint is the cache key, so it must be collision-free, not
    /// merely collision-resistant; hence a full string rather than a
    /// hash.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(1024);
        for name in &self.var_order {
            let _ = write!(out, "v {name}:{};", self.vars[name]);
        }
        for pc in &self.path_conditions {
            let _ = write!(out, "p {pc};");
        }
        for q in &self.qualifiers {
            let _ = write!(out, "q {q:?};");
        }
        for (name, m) in &self.measures {
            let _ = write!(
                out,
                "m {name}:{}:{:?}:{};",
                m.datatype, m.result, m.non_negative
            );
        }
        out
    }

    /// Extracts additional qualifiers from a refinement type: every atomic
    /// conjunct of every refinement in the type becomes a qualifier in
    /// which program variables other than `ν` are abstracted into
    /// placeholders. This mirrors the paper's automatic extraction of
    /// qualifiers from the goal type and the component signatures.
    pub fn add_qualifiers_from_type(&mut self, ty: &RType) {
        let mut refinements = Vec::new();
        collect_refinements(ty, &mut refinements);
        for refinement in refinements {
            for atom in synquid_logic::simplify::conjuncts(&refinement) {
                if let Some(q) = abstract_atom(&atom) {
                    if !self.qualifiers.contains(&q) {
                        self.qualifiers.push(q);
                    }
                }
            }
        }
    }
}

/// An order-preserving conjunct accumulator: facts are flattened into
/// atomic conjuncts and only the first occurrence of each is kept.
struct DedupConjunction {
    conjuncts: Vec<Term>,
    seen: BTreeSet<Term>,
    dropped: usize,
}

impl DedupConjunction {
    fn new() -> DedupConjunction {
        DedupConjunction {
            conjuncts: Vec::new(),
            seen: BTreeSet::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, fact: &Term) {
        for atom in synquid_logic::simplify::conjuncts(fact) {
            if atom.is_true() {
                continue;
            }
            if self.seen.insert(atom.clone()) {
                self.conjuncts.push(atom);
            } else {
                self.dropped += 1;
            }
        }
    }
}

fn collect_refinements(ty: &RType, out: &mut Vec<Term>) {
    match ty {
        RType::Scalar { base, refinement } => {
            if !refinement.is_true() {
                out.push(refinement.clone());
            }
            if let BaseType::Data(_, args) = base {
                for a in args {
                    collect_refinements(a, out);
                }
            }
        }
        RType::Function { arg, ret, .. } => {
            collect_refinements(arg, out);
            collect_refinements(ret, out);
        }
        _ => {}
    }
}

/// Abstracts an atomic refinement into a qualifier: free program variables
/// other than `ν` become placeholders (consistently per variable). Atoms
/// containing predicate unknowns are skipped.
fn abstract_atom(atom: &Term) -> Option<Qualifier> {
    if atom.has_unknowns() || atom.is_true() || atom.is_false() {
        return None;
    }
    let mut subst = synquid_logic::Substitution::new();
    let mut next = 0usize;
    for (name, sort) in atom.free_vars() {
        if name == synquid_logic::VALUE_VAR {
            continue;
        }
        subst.insert(name, Qualifier::hole(next, sort));
        next += 1;
    }
    Some(Qualifier::new(atom.substitute(&subst)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::list_datatype;

    fn int_var(name: &str) -> Term {
        Term::var(name, Sort::Int)
    }

    #[test]
    fn add_datatype_registers_constructors_and_measures() {
        let mut env = Environment::new();
        env.add_datatype(list_datatype());
        assert!(env.lookup("Nil").is_some());
        assert!(env.lookup("Cons").is_some());
        assert!(env.is_constructor("Nil"));
        assert!(env.measure("len").is_some());
        assert_eq!(env.measures_of("List").len(), 2);
    }

    #[test]
    fn assumptions_collect_transitive_refinements() {
        let mut env = Environment::new();
        env.add_var("n", RType::nat());
        env.add_var(
            "m",
            RType::refined(BaseType::Int, Term::value_var(Sort::Int).lt(int_var("n"))),
        );
        env.add_var("unrelated", RType::pos());
        // ψ mentions only m, but n's refinement is pulled in because m's
        // refinement mentions n; `unrelated` stays out.
        let psi = int_var("m").ge(Term::int(0));
        let assumptions = env.assumptions(&psi);
        let s = assumptions.to_string();
        assert!(s.contains("m < n"));
        assert!(s.contains("n >= 0"));
        assert!(!s.contains("unrelated"));
    }

    #[test]
    fn assumptions_deduplicate_conjuncts_of_a_nested_match_environment() {
        // The shape a nested match produces: the scrutinee's refinement is
        // re-stated as a path fact at every level, and the inner arm's
        // fact conjoins what the outer arm already established.
        let mut env = Environment::new();
        env.add_datatype(list_datatype());
        let list_sort = Sort::data("List", vec![Sort::Int]);
        let list_base = BaseType::Data("List".into(), vec![RType::int()]);
        let len = |t: Term| Term::app("len", vec![t], Sort::Int);
        let xs = Term::var("xs", list_sort.clone());
        let t = Term::var("t", list_sort.clone());
        env.add_var(
            "xs",
            RType::refined(
                list_base.clone(),
                len(Term::value_var(list_sort.clone())).ge(Term::int(1)),
            ),
        );
        env.add_var(
            "t",
            RType::refined(
                list_base,
                len(Term::value_var(list_sort.clone())).eq(len(xs.clone()).minus(Term::int(1))),
            ),
        );
        // Outer arm re-derives the scrutinee refinement; the inner arm
        // re-states it again together with its own fact.
        env.add_path_condition(len(xs.clone()).ge(Term::int(1)));
        env.add_path_condition(
            len(xs.clone())
                .ge(Term::int(1))
                .and(len(t.clone()).ge(Term::int(0))),
        );
        let (assumptions, dropped) = env.assumptions_counted(&len(t).ge(Term::int(0)));
        assert!(
            dropped >= 2,
            "the re-derived scrutinee facts must be dropped, got {dropped}"
        );
        let atoms = synquid_logic::simplify::conjuncts(&assumptions);
        let distinct: BTreeSet<&Term> = atoms.iter().collect();
        assert_eq!(
            atoms.len(),
            distinct.len(),
            "assumption conjuncts must be pairwise distinct: {assumptions}"
        );
    }

    #[test]
    fn path_conditions_are_always_included() {
        let mut env = Environment::new();
        env.add_var("n", RType::int());
        env.add_path_condition(int_var("n").le(Term::int(0)));
        let assumptions = env.assumptions(&Term::tt());
        assert!(assumptions.to_string().contains("n <= 0"));
    }

    #[test]
    fn nonneg_facts_for_termination_measures() {
        let mut env = Environment::new();
        env.add_datatype(list_datatype());
        let xs = Term::var("xs", Sort::data("List", vec![Sort::Int]));
        let t = Term::app("len", vec![xs], Sort::Int).eq(Term::int(0));
        let facts = env.nonneg_measure_facts(&t);
        assert!(facts.to_string().contains(">= 0"));
    }

    #[test]
    fn datatype_equality_expands_measures() {
        let mut env = Environment::new();
        env.add_datatype(list_datatype());
        let sort = Sort::data("List", vec![Sort::Int]);
        let eq = env.datatype_equality("List", Term::var("a", sort.clone()), Term::var("b", sort));
        let s = eq.to_string();
        assert!(s.contains("len a"));
        assert!(s.contains("elems b"));
    }

    #[test]
    fn qspace_uses_scalar_vars_and_value() {
        let mut env = Environment::new();
        env.add_qualifiers(Qualifier::standard(Sort::Int));
        env.add_var("n", RType::nat());
        env.add_var("f", RType::fun("x", RType::int(), RType::int()));
        let space = env.build_qspace(Some(Sort::Int));
        // Atoms relate ν and n; the function f contributes nothing.
        assert!(!space.is_empty());
        for atom in space.atoms() {
            assert!(!atom.to_string().contains('f'));
        }
    }

    #[test]
    fn singleton_type_for_datatype_uses_measures() {
        let mut env = Environment::new();
        env.add_datatype(list_datatype());
        let list_ty = RType::base(BaseType::Data("List".into(), vec![RType::int()]));
        let s = env.singleton_type("xs", &list_ty);
        let r = s.refinement().to_string();
        assert!(r.contains("len"), "expected measure equality, got {r}");
        assert!(r.contains("elems"), "expected measure equality, got {r}");
    }
}
