//! Datatypes, constructors, and measures.
//!
//! A datatype declaration introduces constructors (functions whose result
//! type is the datatype, refined with measure information) and measures
//! (uninterpreted functions from the datatype into a logical sort, e.g.
//! `len : List α → Int`, `elems : List α → Set α`). One measure may be
//! declared as the *termination metric*, enabling the termination check of
//! the FIX rule.

use crate::ty::{BaseType, RType, Schema};
use std::collections::BTreeMap;
use synquid_logic::{Sort, Term};

/// A measure signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measure {
    /// Measure name (also the uninterpreted function symbol in refinements).
    pub name: String,
    /// The datatype the measure is defined on.
    pub datatype: String,
    /// The logical sort of the measure's result.
    pub result: Sort,
    /// True if results of this measure are known to be non-negative
    /// (declared `termination measure … :: D → Nat` in the paper); this
    /// fact is added to environment assumptions for applications of the
    /// measure.
    pub non_negative: bool,
}

impl Measure {
    /// Applies the measure to a term.
    pub fn apply(&self, arg: Term) -> Term {
        Term::app(self.name.clone(), vec![arg], self.result.clone())
    }
}

/// A datatype constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constructor {
    /// Constructor name (e.g. `Cons`).
    pub name: String,
    /// The constructor's type schema
    /// (`∀ α. T₁ → … → Tₖ → {D α | ψ}`).
    pub schema: Schema,
}

impl Constructor {
    /// Number of arguments the constructor takes.
    pub fn arity(&self) -> usize {
        self.schema.ty.uncurry().0.len()
    }

    /// True if the constructor takes no arguments (a *scalar* constructor
    /// such as `Nil`, required for match abduction).
    pub fn is_scalar(&self) -> bool {
        self.arity() == 0
    }
}

/// A datatype declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datatype {
    /// Datatype name (e.g. `List`).
    pub name: String,
    /// Type parameter names.
    pub type_params: Vec<String>,
    /// The constructors, in declaration order.
    pub constructors: Vec<Constructor>,
    /// Measures defined on this datatype.
    pub measures: Vec<Measure>,
    /// Name of the termination measure, if any.
    pub termination_measure: Option<String>,
}

impl Datatype {
    /// The base type `D α₁ … αₙ` with unrefined type-variable arguments.
    pub fn applied_to_params(&self) -> BaseType {
        BaseType::Data(
            self.name.clone(),
            self.type_params.iter().map(RType::tyvar).collect(),
        )
    }

    /// Looks up a constructor by name.
    pub fn constructor(&self, name: &str) -> Option<&Constructor> {
        self.constructors.iter().find(|c| c.name == name)
    }

    /// Looks up a measure by name.
    pub fn measure(&self, name: &str) -> Option<&Measure> {
        self.measures.iter().find(|m| m.name == name)
    }

    /// The termination measure, if declared.
    pub fn termination(&self) -> Option<&Measure> {
        self.termination_measure
            .as_deref()
            .and_then(|n| self.measure(n))
    }

    /// True if at least one constructor is scalar (no arguments), which is
    /// the precondition for match abduction in the paper.
    pub fn has_scalar_constructor(&self) -> bool {
        self.constructors.iter().any(Constructor::is_scalar)
    }
}

/// Builds the standard `List` datatype of the paper:
///
/// ```text
/// termination measure len :: List β → Nat
/// measure elems :: List β → Set β
/// data List β where
///   Nil  :: {List β | len ν = 0 ∧ elems ν = []}
///   Cons :: x: β → xs: List β →
///           {List β | len ν = len xs + 1 ∧ elems ν = elems xs + [x]}
/// ```
pub fn list_datatype() -> Datatype {
    let beta = "b".to_string();
    let list_base = BaseType::Data("List".into(), vec![RType::tyvar(beta.clone())]);
    let list_sort = list_base.sort();
    let elem_sort = Sort::var(beta.clone());
    let len = |t: Term| Term::app("len", vec![t], Sort::Int);
    let elems = |t: Term| Term::app("elems", vec![t], Sort::set(elem_sort.clone()));
    let nu = || Term::value_var(list_sort.clone());

    let nil_refinement = len(nu())
        .eq(Term::int(0))
        .and(elems(nu()).eq(Term::empty_set(elem_sort.clone())));
    let nil = Constructor {
        name: "Nil".into(),
        schema: Schema::forall(
            vec![beta.clone()],
            RType::refined(list_base.clone(), nil_refinement),
        ),
    };

    let xs = Term::var("xs", list_sort.clone());
    let x = Term::var("x", elem_sort.clone());
    let cons_refinement = len(nu())
        .eq(len(xs.clone()).plus(Term::int(1)))
        .and(elems(nu()).eq(elems(xs).union(Term::singleton(elem_sort.clone(), x))));
    let cons = Constructor {
        name: "Cons".into(),
        schema: Schema::forall(
            vec![beta.clone()],
            RType::fun_n(
                vec![
                    ("x".to_string(), RType::tyvar(beta.clone())),
                    (
                        "xs".to_string(),
                        RType::base(BaseType::Data(
                            "List".into(),
                            vec![RType::tyvar(beta.clone())],
                        )),
                    ),
                ],
                RType::refined(list_base.clone(), cons_refinement),
            ),
        ),
    };

    Datatype {
        name: "List".into(),
        type_params: vec![beta],
        constructors: vec![nil, cons],
        measures: vec![
            Measure {
                name: "len".into(),
                datatype: "List".into(),
                result: Sort::Int,
                non_negative: true,
            },
            Measure {
                name: "elems".into(),
                datatype: "List".into(),
                result: Sort::set(elem_sort),
                non_negative: false,
            },
        ],
        termination_measure: Some("len".into()),
    }
}

/// Builds the binary-search-tree datatype of Sec. 2 (Example 2), with the
/// `size` termination measure and the `keys` set measure. The BST ordering
/// invariant is encoded in the constructor argument types.
pub fn bst_datatype() -> Datatype {
    let alpha = "a".to_string();
    let elem_sort = Sort::var(alpha.clone());
    let bst_base = BaseType::Data("BST".into(), vec![RType::tyvar(alpha.clone())]);
    let bst_sort = bst_base.sort();
    let size = |t: Term| Term::app("size", vec![t], Sort::Int);
    let keys = |t: Term| Term::app("keys", vec![t], Sort::set(elem_sort.clone()));
    let nu = || Term::value_var(bst_sort.clone());

    let empty_refinement = size(nu())
        .eq(Term::int(0))
        .and(keys(nu()).eq(Term::empty_set(elem_sort.clone())));
    let empty = Constructor {
        name: "Empty".into(),
        schema: Schema::forall(
            vec![alpha.clone()],
            RType::refined(bst_base.clone(), empty_refinement),
        ),
    };

    let x = Term::var("x", elem_sort.clone());
    let l = Term::var("l", bst_sort.clone());
    let r = Term::var("r", bst_sort.clone());
    // l : BST {α | ν < x}, r : BST {α | x < ν}
    let left_elem = RType::refined(
        BaseType::TypeVar(alpha.clone()),
        Term::value_var(elem_sort.clone()).lt(x.clone()),
    );
    let right_elem = RType::refined(
        BaseType::TypeVar(alpha.clone()),
        x.clone().lt(Term::value_var(elem_sort.clone())),
    );
    let node_refinement = size(nu())
        .eq(size(l.clone()).plus(size(r.clone())).plus(Term::int(1)))
        .and(
            keys(nu()).eq(keys(l)
                .union(keys(r))
                .union(Term::singleton(elem_sort.clone(), x))),
        );
    let node = Constructor {
        name: "Node".into(),
        schema: Schema::forall(
            vec![alpha.clone()],
            RType::fun_n(
                vec![
                    ("x".to_string(), RType::tyvar(alpha.clone())),
                    (
                        "l".to_string(),
                        RType::base(BaseType::Data("BST".into(), vec![left_elem])),
                    ),
                    (
                        "r".to_string(),
                        RType::base(BaseType::Data("BST".into(), vec![right_elem])),
                    ),
                ],
                RType::refined(bst_base.clone(), node_refinement),
            ),
        ),
    };

    Datatype {
        name: "BST".into(),
        type_params: vec![alpha],
        constructors: vec![empty, node],
        measures: vec![
            Measure {
                name: "size".into(),
                datatype: "BST".into(),
                result: Sort::Int,
                non_negative: true,
            },
            Measure {
                name: "keys".into(),
                datatype: "BST".into(),
                result: Sort::set(elem_sort),
                non_negative: false,
            },
        ],
        termination_measure: Some("size".into()),
    }
}

/// Builds an increasing-list datatype (`IList` in the paper's Example 4):
/// the `Cons` constructor requires the head to be no greater than every
/// element of the tail, expressed through the element type of the tail.
pub fn increasing_list_datatype() -> Datatype {
    let alpha = "a".to_string();
    let elem_sort = Sort::var(alpha.clone());
    let ilist_base = BaseType::Data("IList".into(), vec![RType::tyvar(alpha.clone())]);
    let ilist_sort = ilist_base.sort();
    let ilen = |t: Term| Term::app("ilen", vec![t], Sort::Int);
    let ielems = |t: Term| Term::app("ielems", vec![t], Sort::set(elem_sort.clone()));
    let nu = || Term::value_var(ilist_sort.clone());

    let nil_refinement = ilen(nu())
        .eq(Term::int(0))
        .and(ielems(nu()).eq(Term::empty_set(elem_sort.clone())));
    let inil = Constructor {
        name: "INil".into(),
        schema: Schema::forall(
            vec![alpha.clone()],
            RType::refined(ilist_base.clone(), nil_refinement),
        ),
    };

    let x = Term::var("x", elem_sort.clone());
    let xs = Term::var("xs", ilist_sort.clone());
    // xs : IList {α | x ≤ ν}
    let tail_elem = RType::refined(
        BaseType::TypeVar(alpha.clone()),
        x.clone().le(Term::value_var(elem_sort.clone())),
    );
    let cons_refinement = ilen(nu())
        .eq(ilen(xs.clone()).plus(Term::int(1)))
        .and(ielems(nu()).eq(ielems(xs).union(Term::singleton(elem_sort.clone(), x))));
    let icons = Constructor {
        name: "ICons".into(),
        schema: Schema::forall(
            vec![alpha.clone()],
            RType::fun_n(
                vec![
                    ("x".to_string(), RType::tyvar(alpha.clone())),
                    (
                        "xs".to_string(),
                        RType::base(BaseType::Data("IList".into(), vec![tail_elem])),
                    ),
                ],
                RType::refined(ilist_base.clone(), cons_refinement),
            ),
        ),
    };

    Datatype {
        name: "IList".into(),
        type_params: vec![alpha],
        constructors: vec![inil, icons],
        measures: vec![
            Measure {
                name: "ilen".into(),
                datatype: "IList".into(),
                result: Sort::Int,
                non_negative: true,
            },
            Measure {
                name: "ielems".into(),
                datatype: "IList".into(),
                result: Sort::set(elem_sort),
                non_negative: false,
            },
        ],
        termination_measure: Some("ilen".into()),
    }
}

/// A registry of datatype declarations keyed by name.
pub type Datatypes = BTreeMap<String, Datatype>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_datatype_has_expected_structure() {
        let list = list_datatype();
        assert_eq!(list.constructors.len(), 2);
        assert!(list.constructor("Nil").unwrap().is_scalar());
        assert_eq!(list.constructor("Cons").unwrap().arity(), 2);
        assert!(list.has_scalar_constructor());
        assert_eq!(list.termination().unwrap().name, "len");
    }

    #[test]
    fn bst_node_encodes_ordering_in_argument_types() {
        let bst = bst_datatype();
        let node = bst.constructor("Node").unwrap();
        let (args, _) = node.schema.ty.uncurry();
        assert_eq!(args.len(), 3);
        // The left subtree's element type is refined with ν < x.
        let left = &args[1].1;
        match left.base_type().unwrap() {
            BaseType::Data(_, params) => {
                assert!(params[0].refinement().to_string().contains("<"));
            }
            _ => panic!("expected datatype"),
        }
    }

    #[test]
    fn measure_application_builds_terms() {
        let list = list_datatype();
        let len = list.measure("len").unwrap();
        let t = len.apply(Term::var("xs", Sort::data("List", vec![Sort::Int])));
        assert_eq!(t.to_string(), "len xs");
        assert!(len.non_negative);
    }

    #[test]
    fn increasing_list_tail_requires_ordering() {
        let ilist = increasing_list_datatype();
        let icons = ilist.constructor("ICons").unwrap();
        let (args, _) = icons.schema.ty.uncurry();
        match args[1].1.base_type().unwrap() {
            BaseType::Data(_, params) => {
                assert!(params[0].refinement().to_string().contains("<="));
            }
            _ => panic!("expected datatype"),
        }
    }
}
