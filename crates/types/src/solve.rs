//! The incremental subtyping-constraint solver (the `Solve` procedure of
//! Fig. 6) and type-consistency checking (Fig. 5).
//!
//! Local liquid type checking issues subtyping constraints one at a time,
//! *before* the whole program is known. The solver therefore interleaves
//! shape unification (assigning liquid types to free type variables) with
//! refinement discovery (delegated to the Horn fixpoint solver): this is
//! the paper's *incremental unification*, which existing refinement type
//! checkers cannot do because they run Hindley–Milner to completion first.

use crate::env::Environment;
use crate::ty::{is_free_type_var, BaseType, RType, FREE_TYPE_VAR_PREFIX};
use std::collections::BTreeMap;
use synquid_horn::{FixpointConfig, FixpointSolver, HornConstraint};
use synquid_logic::{Sort, Term};
use synquid_solver::{Smt, SmtResult};

/// A type error detected while solving constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Human-readable description.
    pub message: String,
}

impl TypeError {
    /// Creates a type error.
    pub fn new(message: impl Into<String>) -> TypeError {
        TypeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl std::error::Error for TypeError {}

/// The incremental constraint solver. It owns the liquid fixpoint solver
/// (whose assignment is part of the search state) and the type assignment
/// `T` mapping free type variables to liquid types. The SMT solver is
/// passed in externally so its statistics survive backtracking.
#[derive(Debug, Clone)]
pub struct ConstraintSolver {
    /// The Horn-constraint fixpoint solver (assignments to predicate
    /// unknowns).
    pub fixpoint: FixpointSolver,
    type_assignment: BTreeMap<String, RType>,
    fresh_tyvar_counter: usize,
    /// Enable type-consistency checks (Sec. 3.4); disabled for the T-ncc
    /// ablation.
    pub consistency_enabled: bool,
}

impl Default for ConstraintSolver {
    fn default() -> Self {
        ConstraintSolver::new(FixpointConfig::default())
    }
}

impl ConstraintSolver {
    /// Creates a solver with the given fixpoint configuration.
    pub fn new(config: FixpointConfig) -> ConstraintSolver {
        ConstraintSolver {
            fixpoint: FixpointSolver::new(config),
            type_assignment: BTreeMap::new(),
            fresh_tyvar_counter: 0,
            consistency_enabled: true,
        }
    }

    // -----------------------------------------------------------------
    // Fresh names
    // -----------------------------------------------------------------

    /// Allocates a fresh free type variable.
    pub fn fresh_type_var(&mut self) -> String {
        let name = format!("{FREE_TYPE_VAR_PREFIX}t{}", self.fresh_tyvar_counter);
        self.fresh_tyvar_counter += 1;
        name
    }

    /// Allocates a fresh predicate unknown whose valuations are liquid
    /// formulas over the environment (and `ν` at the given sort).
    pub fn fresh_unknown(
        &mut self,
        env: &Environment,
        value_sort: Option<Sort>,
        provenance: &str,
    ) -> Term {
        let qspace = env.build_qspace(value_sort);
        let assumption = env.all_assumptions();
        let assumption = self
            .fixpoint
            .assignment()
            .apply(&self.fixpoint.registry, &assumption);
        let id = self.fixpoint.fresh_unknown(provenance, qspace, assumption);
        Term::unknown(id)
    }

    /// Instantiates a schema with fresh free type variables and returns the
    /// instantiated type (rule VAR∀ / the type-checking algorithm's
    /// treatment of polymorphic components).
    pub fn instantiate_schema(&mut self, schema: &crate::ty::Schema) -> RType {
        if schema.is_monomorphic() {
            return schema.ty.clone();
        }
        let args: Vec<RType> = schema
            .type_vars
            .iter()
            .map(|_| RType::tyvar(self.fresh_type_var()))
            .collect();
        schema.instantiate(&args)
    }

    // -----------------------------------------------------------------
    // Type assignment
    // -----------------------------------------------------------------

    /// The current assignment of a free type variable, if any.
    pub fn lookup_type_var(&self, name: &str) -> Option<&RType> {
        self.type_assignment.get(name)
    }

    /// Fully resolves a type: free type variables with assignments are
    /// substituted (recursively), and predicate unknowns are left in place.
    pub fn resolve(&self, ty: &RType) -> RType {
        self.resolve_guarded(ty, 0)
    }

    fn resolve_guarded(&self, ty: &RType, depth: usize) -> RType {
        assert!(
            depth < 10_000,
            "type-assignment cycle while resolving {ty} (assignment: {:?})",
            self.type_assignment.keys().collect::<Vec<_>>()
        );
        match ty {
            RType::Scalar { base, refinement } => match base {
                BaseType::TypeVar(name) => match self.type_assignment.get(name) {
                    Some(assigned) => {
                        self.resolve_guarded(&assigned.refine_with(refinement), depth + 1)
                    }
                    None => ty.clone(),
                },
                BaseType::Data(n, args) => RType::Scalar {
                    base: BaseType::Data(
                        n.clone(),
                        args.iter()
                            .map(|a| self.resolve_guarded(a, depth + 1))
                            .collect(),
                    ),
                    refinement: refinement.clone(),
                },
                _ => ty.clone(),
            },
            RType::Function { arg_name, arg, ret } => RType::Function {
                arg_name: arg_name.clone(),
                arg: Box::new(self.resolve_guarded(arg, depth + 1)),
                ret: Box::new(self.resolve_guarded(ret, depth + 1)),
            },
            RType::Any => RType::Any,
            RType::Bot => RType::Bot,
        }
    }

    /// Fully resolves a type and substitutes predicate-unknown valuations
    /// from the current liquid assignment (used when reporting final types
    /// and when rendering abduced conditions).
    pub fn finalize(&self, ty: &RType) -> RType {
        let resolved = self.resolve(ty);
        self.map_refinements(&resolved, &|t| {
            self.fixpoint.assignment().apply(&self.fixpoint.registry, t)
        })
    }

    /// Applies the current liquid assignment to a term.
    pub fn apply_assignment(&self, t: &Term) -> Term {
        self.fixpoint.assignment().apply(&self.fixpoint.registry, t)
    }

    fn map_refinements(&self, ty: &RType, f: &impl Fn(&Term) -> Term) -> RType {
        match ty {
            RType::Scalar { base, refinement } => RType::Scalar {
                base: match base {
                    BaseType::Data(n, args) => BaseType::Data(
                        n.clone(),
                        args.iter().map(|a| self.map_refinements(a, f)).collect(),
                    ),
                    other => other.clone(),
                },
                refinement: f(refinement),
            },
            RType::Function { arg_name, arg, ret } => RType::Function {
                arg_name: arg_name.clone(),
                arg: Box::new(self.map_refinements(arg, f)),
                ret: Box::new(self.map_refinements(ret, f)),
            },
            other => other.clone(),
        }
    }

    /// The `Fresh` operation of Fig. 6: a type with the same shape as the
    /// input but all refinements replaced by fresh predicate unknowns (and
    /// nested free type variables replaced by fresh free type variables).
    pub fn fresh_shape(&mut self, env: &Environment, ty: &RType, provenance: &str) -> RType {
        match ty {
            RType::Scalar { base, .. } => match base {
                BaseType::TypeVar(name) if is_free_type_var(name) => {
                    RType::tyvar(self.fresh_type_var())
                }
                BaseType::TypeVar(_) => {
                    let sort = base.sort();
                    let unknown = self.fresh_unknown(env, Some(sort), provenance);
                    RType::refined(base.clone(), unknown)
                }
                BaseType::Data(n, args) => {
                    let fresh_args: Vec<RType> = args
                        .iter()
                        .map(|a| self.fresh_shape(env, a, provenance))
                        .collect();
                    let base = BaseType::Data(n.clone(), fresh_args);
                    let unknown = self.fresh_unknown(env, Some(base.sort()), provenance);
                    RType::refined(base, unknown)
                }
                BaseType::Bool | BaseType::Int => {
                    let unknown = self.fresh_unknown(env, Some(base.sort()), provenance);
                    RType::refined(base.clone(), unknown)
                }
            },
            RType::Function { arg_name, arg, ret } => RType::Function {
                arg_name: arg_name.clone(),
                arg: Box::new(self.fresh_shape(env, arg, provenance)),
                ret: Box::new(self.fresh_shape(env, ret, provenance)),
            },
            RType::Any => RType::Any,
            RType::Bot => RType::Bot,
        }
    }

    /// Imports a type that was produced by a *different* solver instance
    /// (e.g. a memoized enumeration result): every free unification type
    /// variable is renamed to a fresh variable of this solver's
    /// namespace, consistently across calls that share `map`, so cached
    /// types can never alias this solver's own unification variables.
    pub fn import_type(&mut self, ty: &RType, map: &mut BTreeMap<String, RType>) -> RType {
        for v in ty.type_vars() {
            if is_free_type_var(&v) && !map.contains_key(&v) {
                map.insert(v, RType::tyvar(self.fresh_type_var()));
            }
        }
        ty.substitute_type_vars(map)
    }

    /// Adds and solves the plain logical obligation `⟦Γ⟧ ⇒ fact`.
    /// Predicate unknowns among the environment's path conditions (most
    /// importantly the branch-condition unknown of liquid abduction) may
    /// be strengthened to validate the obligation, exactly as for
    /// subtyping constraints. The synthesizer uses this to replay the
    /// argument-side conditions of memoized candidates under the current
    /// goal's abduction unknown.
    pub fn require(
        &mut self,
        env: &Environment,
        fact: &Term,
        smt: &mut Smt,
        label: &str,
    ) -> Result<(), TypeError> {
        if fact.is_true() {
            return Ok(());
        }
        let (assumptions, dropped) = env.assumptions_counted(fact);
        smt.add_assumptions_dropped(dropped);
        let constraint = HornConstraint::new(assumptions, fact.clone(), label);
        self.fixpoint
            .add_constraint(constraint, smt)
            .map_err(|e| TypeError::new(format!("{label}: {e}")))
    }

    // -----------------------------------------------------------------
    // Subtyping
    // -----------------------------------------------------------------

    /// Adds and solves the subtyping constraint `Γ ⊢ lhs <: rhs`.
    pub fn subtype(
        &mut self,
        env: &Environment,
        lhs: &RType,
        rhs: &RType,
        smt: &mut Smt,
        label: &str,
    ) -> Result<(), TypeError> {
        let lhs = self.resolve(lhs);
        let rhs = self.resolve(rhs);
        match (&lhs, &rhs) {
            (RType::Bot, _) | (_, RType::Any) => Ok(()),
            (RType::Any, _) => Err(TypeError::new(format!(
                "{label}: top is only a supertype (cannot use it as a subtype of {rhs})"
            ))),
            (_, RType::Bot) => Err(TypeError::new(format!(
                "{label}: no type except bot is a subtype of bot (got {lhs})"
            ))),
            (
                RType::Function {
                    arg_name: x,
                    arg: tx,
                    ret: t1,
                },
                RType::Function {
                    arg_name: y,
                    arg: ty_,
                    ret: t2,
                },
            ) => {
                // Contravariant argument, covariant result with renaming.
                self.subtype(env, ty_, tx, smt, label)?;
                let mut inner_env = env.clone();
                inner_env.add_var(y.clone(), (**ty_).clone());
                let renamed_ret = t1.substitute_var(x, &Term::var(y.clone(), ty_.sort()));
                self.subtype(&inner_env, &renamed_ret, t2, smt, label)
            }
            (
                RType::Scalar {
                    base: bl,
                    refinement: rl,
                },
                RType::Scalar {
                    base: br,
                    refinement: rr,
                },
            ) => self.subtype_scalar(env, bl, rl, br, rr, smt, label),
            _ => Err(TypeError::new(format!(
                "{label}: shape mismatch between {lhs} and {rhs}"
            ))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn subtype_scalar(
        &mut self,
        env: &Environment,
        base_l: &BaseType,
        ref_l: &Term,
        base_r: &BaseType,
        ref_r: &Term,
        smt: &mut Smt,
        label: &str,
    ) -> Result<(), TypeError> {
        match (base_l, base_r) {
            // Two distinct free type variables: alias one to the other
            // (Eq. 3 of Fig. 6 retains such constraints; aliasing resolves
            // them eagerly, which is equivalent because any later
            // instantiation of either variable now instantiates both).
            // Creating a fresh shape here instead would loop forever, since
            // the fresh shape of a free variable is another free variable.
            (BaseType::TypeVar(a), BaseType::TypeVar(b))
                if is_free_type_var(a) && is_free_type_var(b) && a != b =>
            {
                self.type_assignment
                    .insert(a.clone(), RType::tyvar(b.clone()));
                let lhs = RType::Scalar {
                    base: base_l.clone(),
                    refinement: ref_l.clone(),
                };
                let rhs = RType::Scalar {
                    base: base_r.clone(),
                    refinement: ref_r.clone(),
                };
                self.subtype(env, &lhs, &rhs, smt, label)
            }
            // Unification cases (Eq. 4 and Eq. 5 of Fig. 6). Free type
            // variables are assigned a fresh liquid type of the other
            // side's shape, then the constraint is re-processed.
            (BaseType::TypeVar(a), _) if is_free_type_var(a) && base_l != base_r => {
                let target = RType::Scalar {
                    base: base_r.clone(),
                    refinement: ref_r.clone(),
                };
                self.unify(env, a, &target, label)?;
                let lhs = RType::Scalar {
                    base: base_l.clone(),
                    refinement: ref_l.clone(),
                };
                let rhs = RType::Scalar {
                    base: base_r.clone(),
                    refinement: ref_r.clone(),
                };
                self.subtype(env, &lhs, &rhs, smt, label)
            }
            (_, BaseType::TypeVar(a)) if is_free_type_var(a) && base_l != base_r => {
                let target = RType::Scalar {
                    base: base_l.clone(),
                    refinement: ref_l.clone(),
                };
                self.unify(env, a, &target, label)?;
                let lhs = RType::Scalar {
                    base: base_l.clone(),
                    refinement: ref_l.clone(),
                };
                let rhs = RType::Scalar {
                    base: base_r.clone(),
                    refinement: ref_r.clone(),
                };
                self.subtype(env, &lhs, &rhs, smt, label)
            }
            // Identical type variables (rigid or free): refinements only.
            (BaseType::TypeVar(a), BaseType::TypeVar(b)) if a == b => {
                self.emit_horn(env, ref_l, ref_r, smt, label)
            }
            (BaseType::TypeVar(a), BaseType::TypeVar(b)) => Err(TypeError::new(format!(
                "{label}: cannot unify distinct rigid type variables {a} and {b}"
            ))),
            // Datatypes: refinements plus covariant type arguments.
            (BaseType::Data(d1, args1), BaseType::Data(d2, args2)) => {
                if d1 != d2 || args1.len() != args2.len() {
                    return Err(TypeError::new(format!(
                        "{label}: datatype mismatch between {d1} and {d2}"
                    )));
                }
                self.emit_horn(env, ref_l, ref_r, smt, label)?;
                for (a1, a2) in args1.iter().zip(args2) {
                    self.subtype(env, a1, a2, smt, label)?;
                }
                Ok(())
            }
            (BaseType::Int, BaseType::Int) | (BaseType::Bool, BaseType::Bool) => {
                self.emit_horn(env, ref_l, ref_r, smt, label)
            }
            _ => Err(TypeError::new(format!(
                "{label}: base type mismatch between {base_l} and {base_r}"
            ))),
        }
    }

    /// Assigns a free type variable to a fresh liquid type with the shape
    /// of `target` (incremental unification).
    fn unify(
        &mut self,
        env: &Environment,
        var: &str,
        target: &RType,
        label: &str,
    ) -> Result<(), TypeError> {
        if self.type_assignment.contains_key(var) {
            return Ok(());
        }
        // Occurs check.
        let resolved_target = self.resolve(target);
        if resolved_target.type_vars().contains(var) {
            return Err(TypeError::new(format!(
                "{label}: occurs check failed unifying {var} with {resolved_target}"
            )));
        }
        let fresh = self.fresh_shape(env, &resolved_target, &format!("inst({var})"));
        self.type_assignment.insert(var.to_string(), fresh);
        Ok(())
    }

    /// Emits the Horn constraint for scalar subtyping (Eq. 8 of Fig. 6):
    /// `⟦Γ⟧ ∧ ψ ⇒ ψ'`, and solves it incrementally.
    fn emit_horn(
        &mut self,
        env: &Environment,
        ref_l: &Term,
        ref_r: &Term,
        smt: &mut Smt,
        label: &str,
    ) -> Result<(), TypeError> {
        if ref_r.is_true() {
            return Ok(());
        }
        let relevant = ref_l.clone().and(ref_r.clone());
        let (assumptions, dropped) = env.assumptions_counted(&relevant);
        smt.add_assumptions_dropped(dropped);
        let lhs = assumptions.and(ref_l.clone());
        let constraint = HornConstraint::new(lhs, ref_r.clone(), label);
        self.fixpoint
            .add_constraint(constraint, smt)
            .map_err(|e| TypeError::new(format!("{label}: {e}")))
    }

    // -----------------------------------------------------------------
    // Consistency (Fig. 5)
    // -----------------------------------------------------------------

    /// Checks that two types are *consistent*: they have a common
    /// inhabitant for some valuation of the environment variables. Used to
    /// prune partial applications early (Sec. 3.4). A disabled or
    /// inconclusive check succeeds.
    pub fn consistent(
        &mut self,
        env: &Environment,
        lhs: &RType,
        rhs: &RType,
        smt: &mut Smt,
        label: &str,
    ) -> Result<(), TypeError> {
        if !self.consistency_enabled {
            return Ok(());
        }
        let lhs = self.resolve(lhs);
        let rhs = self.resolve(rhs);
        match (&lhs, &rhs) {
            (
                RType::Function { arg_name, arg, ret },
                RType::Function {
                    arg_name: y,
                    ret: ret2,
                    ..
                },
            ) => {
                let mut inner = env.clone();
                inner.add_var(arg_name.clone(), (**arg).clone());
                let renamed = ret2.substitute_var(y, &Term::var(arg_name.clone(), arg.sort()));
                self.consistent(&inner, ret, &renamed, smt, label)
            }
            (
                RType::Scalar {
                    base: b1,
                    refinement: r1,
                },
                RType::Scalar {
                    base: b2,
                    refinement: r2,
                },
            ) => {
                // Shapes that are still being unified are vacuously
                // consistent: a free unification variable can still
                // become anything, so sorts mentioning one must not
                // prune (plain `Sort::compatible` treats distinct
                // variables as incompatible, which would discard every
                // not-yet-instantiated polymorphic candidate —
                // constructor applications above all).
                if !sorts_consistent(&b1.sort(), &b2.sort()) {
                    return Err(TypeError::new(format!(
                        "{label}: inconsistent base types {b1} and {b2}"
                    )));
                }
                let r1 = self.apply_assignment(r1);
                let r2 = self.apply_assignment(r2);
                let relevant = r1.clone().and(r2.clone());
                let (assumptions, dropped) = env.assumptions_counted(&relevant);
                smt.add_assumptions_dropped(dropped);
                let formula = assumptions.and(r1).and(r2);
                match smt.check_sat(&formula) {
                    SmtResult::Unsat => Err(TypeError::new(format!(
                        "{label}: types {lhs} and {rhs} are inconsistent"
                    ))),
                    _ => Ok(()),
                }
            }
            // Mixed shapes (e.g. still-unresolved type variables against
            // functions) and top/bot are treated as consistent.
            _ => Ok(()),
        }
    }
}

/// Sort compatibility for consistency checking: like
/// [`Sort::compatible`], but a *free* (unification) type-variable sort is
/// a wildcard — it can still be instantiated to anything, so pruning on
/// it would be unsound for the search.
fn sorts_consistent(a: &Sort, b: &Sort) -> bool {
    match (a, b) {
        (Sort::Var(n), _) | (_, Sort::Var(n)) if is_free_type_var(n) => true,
        (Sort::Unknown, _) | (_, Sort::Unknown) => true,
        (Sort::Set(x), Sort::Set(y)) => sorts_consistent(x, y),
        (Sort::Data(n1, a1), Sort::Data(n2, a2)) => {
            n1 == n2
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| sorts_consistent(x, y))
        }
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::list_datatype;
    use crate::ty::Schema;
    use synquid_logic::Qualifier;

    fn base_env() -> Environment {
        let mut env = Environment::new();
        env.add_datatype(list_datatype());
        env.add_qualifiers(Qualifier::standard(Sort::Int));
        env
    }

    fn list_of(t: RType) -> RType {
        RType::base(BaseType::Data("List".into(), vec![t]))
    }

    #[test]
    fn nat_is_subtype_of_int_but_not_conversely() {
        let env = base_env();
        let mut smt = Smt::new();
        let mut solver = ConstraintSolver::default();
        assert!(solver
            .subtype(&env, &RType::nat(), &RType::int(), &mut smt, "nat<:int")
            .is_ok());
        assert!(solver
            .subtype(&env, &RType::int(), &RType::nat(), &mut smt, "int<:nat")
            .is_err());
        assert!(solver
            .subtype(&env, &RType::pos(), &RType::nat(), &mut smt, "pos<:nat")
            .is_ok());
    }

    #[test]
    fn environment_assumptions_enable_subtyping() {
        // With n ≤ 0 and 0 ≤ n in scope, {Int | ν = 0} <: {Int | ν = n}.
        let mut env = base_env();
        env.add_var("n", RType::nat());
        env.add_path_condition(Term::var("n", Sort::Int).le(Term::int(0)));
        let mut smt = Smt::new();
        let mut solver = ConstraintSolver::default();
        let lhs = RType::refined(BaseType::Int, Term::value_var(Sort::Int).eq(Term::int(0)));
        let rhs = RType::refined(
            BaseType::Int,
            Term::value_var(Sort::Int).eq(Term::var("n", Sort::Int)),
        );
        assert!(solver
            .subtype(&env, &lhs, &rhs, &mut smt, "zero<:n")
            .is_ok());
    }

    #[test]
    fn function_subtyping_is_contravariant() {
        let env = base_env();
        let mut smt = Smt::new();
        let mut solver = ConstraintSolver::default();
        // (Int → Nat) <: (Nat → Int): argument contravariance, result covariance.
        let f1 = RType::fun("x", RType::int(), RType::nat());
        let f2 = RType::fun("y", RType::nat(), RType::int());
        assert!(solver.subtype(&env, &f1, &f2, &mut smt, "fun").is_ok());
        assert!(solver.subtype(&env, &f2, &f1, &mut smt, "fun-rev").is_err());
    }

    #[test]
    fn datatype_argument_covariance() {
        let env = base_env();
        let mut smt = Smt::new();
        let mut solver = ConstraintSolver::default();
        assert!(solver
            .subtype(
                &env,
                &list_of(RType::pos()),
                &list_of(RType::nat()),
                &mut smt,
                "list"
            )
            .is_ok());
        assert!(solver
            .subtype(
                &env,
                &list_of(RType::int()),
                &list_of(RType::nat()),
                &mut smt,
                "list-rev"
            )
            .is_err());
    }

    #[test]
    fn free_type_variable_unification_discovers_refinements() {
        // The append example of Sec. 3.2: List Nat <: List 'a and
        // List 'a <: List Pos cannot both hold.
        let env = base_env();
        let mut smt = Smt::new();
        let mut solver = ConstraintSolver::default();
        let a = solver.fresh_type_var();
        let list_a = list_of(RType::tyvar(a.clone()));
        assert!(solver
            .subtype(&env, &list_of(RType::nat()), &list_a, &mut smt, "arg")
            .is_ok());
        // Now 'a has been unified with a liquid type of shape Int; requiring
        // List 'a <: List Pos must fail because Nat values flowed into 'a.
        let result = solver.subtype(&env, &list_a, &list_of(RType::pos()), &mut smt, "ret");
        assert!(result.is_err(), "expected failure, got {result:?}");
    }

    #[test]
    fn free_type_variable_unification_succeeds_when_consistent() {
        let env = base_env();
        let mut smt = Smt::new();
        let mut solver = ConstraintSolver::default();
        let a = solver.fresh_type_var();
        let list_a = list_of(RType::tyvar(a.clone()));
        assert!(solver
            .subtype(&env, &list_of(RType::pos()), &list_a, &mut smt, "arg")
            .is_ok());
        assert!(solver
            .subtype(&env, &list_a, &list_of(RType::nat()), &mut smt, "ret")
            .is_ok());
        // The discovered instantiation must entail ν ≥ 0.
        let assigned = solver.finalize(&RType::tyvar(a));
        let refinement = assigned.refinement();
        assert!(smt.entails(&refinement, &Term::value_var(Sort::Int).ge(Term::int(0))));
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let env = base_env();
        let mut smt = Smt::new();
        let mut solver = ConstraintSolver::default();
        let err = solver
            .subtype(
                &env,
                &RType::int(),
                &RType::fun("x", RType::int(), RType::int()),
                &mut smt,
                "mismatch",
            )
            .unwrap_err();
        assert!(err.message.contains("shape mismatch"));
        assert!(solver
            .subtype(&env, &RType::int(), &RType::bool(), &mut smt, "prim")
            .is_err());
    }

    #[test]
    fn consistency_check_rejects_contradictory_scalars() {
        let mut env = base_env();
        env.add_var(
            "xs",
            RType::refined(
                BaseType::Data("List".into(), vec![RType::int()]),
                Term::app(
                    "len",
                    vec![Term::value_var(Sort::data("List", vec![Sort::Int]))],
                    Sort::Int,
                )
                .eq(Term::int(6)),
            ),
        );
        let mut smt = Smt::new();
        let mut solver = ConstraintSolver::default();
        // {Int | ν = 1} is consistent with {Int | ν ≥ 0} but not with {Int | ν < 0}.
        let one = RType::refined(BaseType::Int, Term::value_var(Sort::Int).eq(Term::int(1)));
        assert!(solver
            .consistent(&env, &one, &RType::nat(), &mut smt, "ok")
            .is_ok());
        let neg = RType::refined(BaseType::Int, Term::value_var(Sort::Int).lt(Term::int(0)));
        assert!(solver
            .consistent(&env, &one, &neg, &mut smt, "bad")
            .is_err());
        // Disabling the check (T-ncc ablation) accepts everything.
        solver.consistency_enabled = false;
        assert!(solver.consistent(&env, &one, &neg, &mut smt, "bad").is_ok());
    }

    #[test]
    fn top_and_bot_behave_as_extremes() {
        let env = base_env();
        let mut smt = Smt::new();
        let mut solver = ConstraintSolver::default();
        assert!(solver
            .subtype(&env, &RType::Bot, &RType::nat(), &mut smt, "bot")
            .is_ok());
        assert!(solver
            .subtype(&env, &RType::nat(), &RType::Any, &mut smt, "top")
            .is_ok());
        assert!(solver
            .subtype(&env, &RType::Any, &RType::nat(), &mut smt, "top-l")
            .is_err());
    }

    #[test]
    fn instantiate_schema_freshens_type_variables() {
        let mut solver = ConstraintSolver::default();
        let schema = Schema::forall(
            vec!["a".to_string()],
            RType::fun("x", RType::tyvar("a"), list_of(RType::tyvar("a"))),
        );
        let t1 = solver.instantiate_schema(&schema);
        let t2 = solver.instantiate_schema(&schema);
        assert_ne!(t1, t2, "each instantiation must use fresh type variables");
        for v in t1.type_vars() {
            assert!(is_free_type_var(&v));
        }
    }

    #[test]
    fn abduction_via_unknown_path_condition() {
        // Reproduces the replicate Nil-branch abduction end to end through
        // the constraint solver: with path condition P0, the subtyping
        // {List 'b | len ν = 0} <: {List a | len ν = n} forces P0 ⊑ n ≤ 0.
        let mut env = base_env();
        env.add_var("n", RType::nat());
        env.add_var("x", RType::tyvar("a"));
        let mut smt = Smt::new();
        let mut solver = ConstraintSolver::default();
        let p0 = solver.fresh_unknown(&env, None, "branch condition");
        env.add_path_condition(p0.clone());

        let list_sort = Sort::data("List", vec![Sort::var("a")]);
        let len_v = Term::app("len", vec![Term::value_var(list_sort.clone())], Sort::Int);
        let b = solver.fresh_type_var();
        let lhs = RType::refined(
            BaseType::Data("List".into(), vec![RType::tyvar(b)]),
            len_v.clone().eq(Term::int(0)),
        );
        let rhs = RType::refined(
            BaseType::Data("List".into(), vec![RType::tyvar("a")]),
            len_v.eq(Term::var("n", Sort::Int)),
        );
        solver
            .subtype(&env, &lhs, &rhs, &mut smt, "replicate-nil")
            .expect("abduction should succeed");
        let cond = solver.apply_assignment(&p0);
        assert!(
            smt.entails(&cond, &Term::var("n", Sort::Int).le(Term::int(0))),
            "expected abduced condition to entail n ≤ 0, got {cond}"
        );
    }
}
