//! Termination weakening (the `S≺` operation used by the FIX rule).
//!
//! When a recursive function is added to its own environment, its type is
//! weakened so that recursive calls are only possible on strictly smaller
//! arguments. Following the paper, the well-founded order is provided by
//! primitive base types (`Int` bounded below by the original argument and
//! above by it) and by user-declared *termination measures* on datatypes.
//!
//! This implementation weakens the *first* argument that has an associated
//! well-founded order, requiring it to decrease strictly while remaining
//! non-negative. (The paper uses the full lexicographic order over all
//! measured arguments; single-argument descent is sufficient for the
//! benchmark families reproduced here and the difference is documented in
//! DESIGN.md.)

use crate::env::Environment;
use crate::ty::{BaseType, RType, Schema};
use synquid_logic::Term;

/// Returns the termination metric of an argument type, as a function of a
/// term denoting the argument: `Some(metric)` if the type has an
/// associated well-founded order.
pub fn termination_metric(env: &Environment, ty: &RType) -> Option<Box<dyn Fn(Term) -> Term>> {
    match ty.base_type()? {
        BaseType::Int => Some(Box::new(|t| t)),
        BaseType::Data(name, _) => {
            let dt = env.datatype(name)?;
            let measure = dt.termination()?.clone();
            Some(Box::new(move |t| measure.apply(t)))
        }
        _ => None,
    }
}

/// The index of the first argument of the (uncurried) function type that
/// carries a termination metric.
pub fn terminating_argument(env: &Environment, ty: &RType) -> Option<usize> {
    let (args, _) = ty.uncurry();
    args.iter()
        .position(|(_, t)| termination_metric(env, t).is_some())
}

/// Produces the termination-weakened schema `S≺` for a recursive binding:
/// the first metric-carrying argument's type is strengthened with
/// `0 ≤ metric(ν) < metric(x₀)`, where `x₀` denotes the corresponding
/// argument of the *current* call (the formal parameter names are renamed
/// apart so that the weakened type can refer to them).
///
/// Returns `None` if no argument carries a metric (the function cannot be
/// recursive under the termination discipline).
pub fn weaken_for_recursion(
    env: &Environment,
    schema: &Schema,
    outer_arg_names: &[String],
) -> Option<Schema> {
    let (args, ret) = schema.ty.uncurry();
    let idx = args
        .iter()
        .position(|(_, t)| termination_metric(env, t).is_some())?;
    let mut new_args = Vec::with_capacity(args.len());
    for (i, (name, ty)) in args.iter().enumerate() {
        if i == idx {
            let metric = termination_metric(env, ty).expect("metric exists at idx");
            let sort = ty.sort();
            let nu = Term::value_var(sort.clone());
            let outer_name = outer_arg_names
                .get(i)
                .cloned()
                .unwrap_or_else(|| name.clone());
            let outer = Term::var(outer_name, sort);
            let decreasing = Term::int(0)
                .le(metric(nu.clone()))
                .and(metric(nu).lt(metric(outer)));
            new_args.push((name.clone(), ty.refine_with(&decreasing)));
        } else {
            new_args.push((name.clone(), ty.clone()));
        }
    }
    Some(Schema::forall(
        schema.type_vars.clone(),
        RType::fun_n(new_args, ret),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::list_datatype;
    use synquid_logic::Sort;

    fn env_with_list() -> Environment {
        let mut env = Environment::new();
        env.add_datatype(list_datatype());
        env
    }

    fn list_ty() -> RType {
        RType::base(BaseType::Data("List".into(), vec![RType::tyvar("a")]))
    }

    #[test]
    fn int_arguments_have_identity_metric() {
        let env = env_with_list();
        let metric = termination_metric(&env, &RType::nat()).expect("Int has a metric");
        let t = metric(Term::var("n", Sort::Int));
        assert_eq!(t.to_string(), "n");
    }

    #[test]
    fn datatype_arguments_use_the_termination_measure() {
        let env = env_with_list();
        let metric = termination_metric(&env, &list_ty()).expect("List has a metric");
        let t = metric(Term::var("xs", Sort::data("List", vec![Sort::var("a")])));
        assert_eq!(t.to_string(), "len xs");
    }

    #[test]
    fn booleans_have_no_metric() {
        let env = env_with_list();
        assert!(termination_metric(&env, &RType::bool()).is_none());
    }

    #[test]
    fn weakening_strengthens_the_first_measured_argument() {
        // replicate :: n: Nat → x: α → {List α | len ν = n}
        let env = env_with_list();
        let goal = Schema::forall(
            vec!["a".to_string()],
            RType::fun_n(
                vec![
                    ("n".to_string(), RType::nat()),
                    ("x".to_string(), RType::tyvar("a")),
                ],
                list_ty(),
            ),
        );
        let weakened =
            weaken_for_recursion(&env, &goal, &["n".to_string(), "x".to_string()]).unwrap();
        let (args, _) = weakened.ty.uncurry();
        let n_refinement = args[0].1.refinement().to_string();
        assert!(n_refinement.contains("< n"), "got {n_refinement}");
        assert!(n_refinement.contains("0 <="), "got {n_refinement}");
        // The second argument is untouched.
        assert!(args[1].1.refinement().is_true());
    }

    #[test]
    fn functions_without_metrics_cannot_recurse() {
        let env = env_with_list();
        let goal = Schema::monotype(RType::fun("b", RType::bool(), RType::bool()));
        assert!(weaken_for_recursion(&env, &goal, &["b".to_string()]).is_none());
        assert_eq!(terminating_argument(&env, &goal.ty), None);
    }

    #[test]
    fn first_measured_argument_is_selected() {
        let env = env_with_list();
        let ty = RType::fun_n(
            vec![
                ("f".to_string(), RType::fun("x", RType::int(), RType::int())),
                ("xs".to_string(), list_ty()),
                ("n".to_string(), RType::int()),
            ],
            RType::int(),
        );
        assert_eq!(terminating_argument(&env, &ty), Some(1));
    }
}
