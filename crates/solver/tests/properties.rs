//! Property-based tests for the SMT substrate: the solver's verdicts are
//! cross-checked against brute-force evaluation over a small integer
//! domain, and core algebraic laws of the decision procedures are checked.
//!
//! Gated behind the `proptest` feature: the external `proptest` crate is
//! not vendored, so these tests only compile where it can be fetched —
//! enabling the feature also requires uncommenting the `proptest`
//! dev-dependency in this crate's Cargo.toml.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use std::collections::BTreeMap;
use synquid_logic::{BinOp, Sort, Term, UnOp};
use synquid_solver::lia::{Constraint, LiaResult, LiaSolver, LinExpr};
use synquid_solver::{Lit, Rational, SatResult, SatSolver, Smt, SmtResult};

// ---------------------------------------------------------------------
// SAT solver vs. brute force
// ---------------------------------------------------------------------

fn arb_cnf(num_vars: usize) -> impl Strategy<Value = Vec<Vec<(usize, bool)>>> {
    prop::collection::vec(
        prop::collection::vec((0..num_vars, any::<bool>()), 1..4),
        0..12,
    )
}

fn brute_force_sat(num_vars: usize, cnf: &[Vec<(usize, bool)>]) -> bool {
    (0..(1u32 << num_vars)).any(|assignment| {
        cnf.iter().all(|clause| {
            clause
                .iter()
                .any(|(v, pos)| ((assignment >> v) & 1 == 1) == *pos)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The CDCL solver agrees with brute force on small CNFs.
    #[test]
    fn cdcl_agrees_with_brute_force(cnf in arb_cnf(5)) {
        let mut solver = SatSolver::new();
        solver.reserve_vars(5);
        for clause in &cnf {
            solver.add_clause(clause.iter().map(|(v, p)| Lit::new(*v, *p)).collect());
        }
        let expected = brute_force_sat(5, &cnf);
        match solver.solve() {
            SatResult::Sat(model) => {
                prop_assert!(expected, "solver said SAT on an UNSAT instance");
                // The model must satisfy every clause.
                for clause in &cnf {
                    prop_assert!(clause.iter().any(|(v, p)| model[*v] == *p));
                }
            }
            SatResult::Unsat(_) => prop_assert!(!expected, "solver said UNSAT on a SAT instance"),
        }
    }
}

// ---------------------------------------------------------------------
// LIA solver vs. brute force over a small box
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SmallConstraint {
    coeffs: Vec<i64>, // over three variables
    constant: i64,
    rel: u8, // 0: <=, 1: >=, 2: ==
}

fn arb_lia(num_constraints: usize) -> impl Strategy<Value = Vec<SmallConstraint>> {
    prop::collection::vec(
        (prop::collection::vec(-2i64..3, 3), -4i64..5, 0u8..3).prop_map(
            |(coeffs, constant, rel)| SmallConstraint {
                coeffs,
                constant,
                rel,
            },
        ),
        0..num_constraints,
    )
}

fn lia_brute_force(constraints: &[SmallConstraint]) -> bool {
    let range = -6i64..=6;
    for x in range.clone() {
        for y in range.clone() {
            for z in range.clone() {
                let point = [x, y, z];
                if constraints.iter().all(|c| {
                    let lhs: i64 = c
                        .coeffs
                        .iter()
                        .zip(point.iter())
                        .map(|(a, v)| a * v)
                        .sum::<i64>()
                        + c.constant;
                    match c.rel {
                        0 => lhs <= 0,
                        1 => lhs >= 0,
                        _ => lhs == 0,
                    }
                }) {
                    return true;
                }
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// If the brute-force search over a small box finds an integer model,
    /// the simplex + branch-and-bound solver must not report UNSAT (it
    /// searches the unbounded integer lattice, so the converse need not
    /// hold).
    #[test]
    fn lia_never_misses_box_solutions(constraints in arb_lia(5)) {
        let solver = LiaSolver::new();
        let lia_constraints: Vec<Constraint> = constraints
            .iter()
            .map(|c| {
                let mut expr = LinExpr::constant(Rational::from_int(c.constant));
                for (v, a) in c.coeffs.iter().enumerate() {
                    expr.add_scaled(&LinExpr::variable(v), Rational::from_int(*a));
                }
                match c.rel {
                    0 => Constraint { expr, rel: synquid_solver::lia::Rel::Le },
                    1 => Constraint { expr, rel: synquid_solver::lia::Rel::Ge },
                    _ => Constraint { expr, rel: synquid_solver::lia::Rel::Eq },
                }
            })
            .collect();
        let verdict = solver.check(3, &lia_constraints);
        if lia_brute_force(&constraints) {
            prop_assert!(verdict.possibly_sat(), "solver reported UNSAT but a model exists");
        }
        // When the solver returns a model, it must satisfy the constraints.
        if let LiaResult::Sat(model) = verdict {
            for (c, lc) in constraints.iter().zip(&lia_constraints) {
                let val = lc.expr.eval(&model);
                match c.rel {
                    0 => prop_assert!(val <= Rational::ZERO),
                    1 => prop_assert!(val >= Rational::ZERO),
                    _ => prop_assert!(val.is_zero()),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// End-to-end SMT properties
// ---------------------------------------------------------------------

fn arb_atom() -> impl Strategy<Value = Term> {
    let var = prop_oneof![
        Just(Term::var("x", Sort::Int)),
        Just(Term::var("y", Sort::Int)),
        (-3i64..4).prop_map(Term::int),
    ];
    (var.clone(), var, 0u8..4).prop_map(|(a, b, op)| match op {
        0 => a.le(b),
        1 => a.lt(b),
        2 => a.eq(b),
        _ => a.ge(b),
    })
}

fn arb_smt_formula() -> impl Strategy<Value = Term> {
    arb_atom().prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|a| a.not()),
        ]
    })
}

fn eval_formula(t: &Term, x: i64, y: i64) -> bool {
    fn eval_int(t: &Term, x: i64, y: i64) -> i64 {
        match t {
            Term::IntLit(n) => *n,
            Term::Var(n, _) if n == "x" => x,
            Term::Var(_, _) => y,
            _ => unreachable!(),
        }
    }
    match t {
        Term::BoolLit(b) => *b,
        Term::Unary(UnOp::Not, inner) => !eval_formula(inner, x, y),
        Term::Binary(op, a, b) => match op {
            BinOp::And => eval_formula(a, x, y) && eval_formula(b, x, y),
            BinOp::Or => eval_formula(a, x, y) || eval_formula(b, x, y),
            BinOp::Le => eval_int(a, x, y) <= eval_int(b, x, y),
            BinOp::Lt => eval_int(a, x, y) < eval_int(b, x, y),
            BinOp::Ge => eval_int(a, x, y) >= eval_int(b, x, y),
            BinOp::Gt => eval_int(a, x, y) > eval_int(b, x, y),
            BinOp::Eq => eval_int(a, x, y) == eval_int(b, x, y),
            BinOp::Neq => eval_int(a, x, y) != eval_int(b, x, y),
            _ => unreachable!(),
        },
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// If a small-domain model exists, the SMT facade must not report
    /// UNSAT; if it reports SAT for the negation, the formula is not
    /// valid, which must agree with a counterexample search.
    #[test]
    fn smt_verdicts_are_consistent_with_small_models(f in arb_smt_formula()) {
        let mut smt = Smt::new();
        let has_model = (-4i64..5).any(|x| (-4i64..5).any(|y| eval_formula(&f, x, y)));
        let verdict = smt.check_sat(&f);
        if has_model {
            prop_assert_ne!(verdict, SmtResult::Unsat, "missed a model of {}", f);
        }
        // Validity is dual: if every small assignment satisfies the
        // formula's negation, the formula cannot be valid.
        let negation_everywhere = (-4i64..5).all(|x| (-4i64..5).all(|y| !eval_formula(&f, x, y)));
        if negation_everywhere {
            prop_assert!(!smt.is_valid(&f));
        }
    }

    /// `entails` is reflexive and respects conjunction weakening.
    #[test]
    fn entailment_laws(f in arb_smt_formula(), g in arb_smt_formula()) {
        let mut smt = Smt::new();
        prop_assert!(smt.entails(&f, &f.clone()));
        prop_assert!(smt.entails(&f.clone().and(g.clone()), &f));
        prop_assert!(smt.entails(&f.clone(), &f.clone().or(g)));
    }
}
