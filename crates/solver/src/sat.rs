//! A CDCL SAT solver.
//!
//! This is the boolean engine of the SMT substrate: it is used both for the
//! propositional abstraction in the DPLL(T) loop and as the "map" solver of
//! the MARCO-style MUS enumerator. The implementation is a conventional
//! conflict-driven clause-learning solver with two-watched-literal
//! propagation, first-UIP clause learning, activity-based branching, and
//! solving under assumptions.

use std::collections::HashMap;

/// A boolean variable, numbered from 0.
pub type BVar = usize;

/// A literal: a variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    code: usize,
}

impl Lit {
    /// Positive literal of `v`.
    pub fn pos(v: BVar) -> Lit {
        Lit { code: v << 1 }
    }

    /// Negative literal of `v`.
    pub fn neg(v: BVar) -> Lit {
        Lit { code: (v << 1) | 1 }
    }

    /// Creates a literal with the given polarity.
    pub fn new(v: BVar, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> BVar {
        self.code >> 1
    }

    /// True if the literal is positive.
    pub fn is_pos(self) -> bool {
        self.code & 1 == 0
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit {
            code: self.code ^ 1,
        }
    }

    fn index(self) -> usize {
        self.code
    }
}

/// Result of a SAT call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; the model maps every variable to a boolean.
    Sat(Vec<bool>),
    /// Unsatisfiable. When solving under assumptions, contains the subset
    /// of assumption literals involved in the refutation (a "core").
    Unsat(Vec<Lit>),
}

impl SatResult {
    /// True if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    True,
    False,
    Unassigned,
}

/// The CDCL solver.
#[derive(Debug, Default)]
pub struct SatSolver {
    clauses: Vec<Vec<Lit>>,
    watches: HashMap<usize, Vec<usize>>, // literal index -> clause ids watching it
    assignment: Vec<Value>,
    level: Vec<usize>,
    reason: Vec<Option<usize>>, // clause id that implied the assignment
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    activity: Vec<f64>,
    var_inc: f64,
    propagate_head: usize,
    has_empty_clause: bool,
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            var_inc: 1.0,
            ..Default::default()
        }
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assignment.len()
    }

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> BVar {
        let v = self.assignment.len();
        self.assignment.push(Value::Unassigned);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Adds a clause (a disjunction of literals). The empty clause makes
    /// the instance trivially unsatisfiable.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) {
        lits.sort();
        lits.dedup();
        // A clause containing both x and ¬x is a tautology.
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return;
            }
        }
        if lits.is_empty() {
            self.has_empty_clause = true;
            return;
        }
        for l in &lits {
            self.reserve_vars(l.var() + 1);
        }
        let id = self.clauses.len();
        // Watch the first two literals (or duplicate the single literal).
        let w0 = lits[0];
        let w1 = *lits.get(1).unwrap_or(&lits[0]);
        self.clauses.push(lits);
        self.watches.entry(w0.index()).or_default().push(id);
        if w1 != w0 {
            self.watches.entry(w1.index()).or_default().push(id);
        }
    }

    fn value(&self, l: Lit) -> Value {
        match self.assignment[l.var()] {
            Value::Unassigned => Value::Unassigned,
            Value::True => {
                if l.is_pos() {
                    Value::True
                } else {
                    Value::False
                }
            }
            Value::False => {
                if l.is_pos() {
                    Value::False
                } else {
                    Value::True
                }
            }
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) -> bool {
        match self.value(l) {
            Value::False => false,
            Value::True => true,
            Value::Unassigned => {
                self.assignment[l.var()] = if l.is_pos() {
                    Value::True
                } else {
                    Value::False
                };
                self.level[l.var()] = self.decision_level();
                self.reason[l.var()] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns the id of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.propagate_head < self.trail.len() {
            let l = self.trail[self.propagate_head];
            self.propagate_head += 1;
            let falsified = l.negate();
            let watching = self
                .watches
                .get(&falsified.index())
                .cloned()
                .unwrap_or_default();
            let mut still_watching = Vec::with_capacity(watching.len());
            let mut conflict = None;
            let mut i = 0;
            while i < watching.len() {
                let cid = watching[i];
                i += 1;
                if conflict.is_some() {
                    still_watching.push(cid);
                    continue;
                }
                let clause = self.clauses[cid].clone();
                // Try to find a non-false literal other than `falsified` to watch.
                let mut satisfied = false;
                let mut new_watch = None;
                let mut unassigned = None;
                for &cl in &clause {
                    if cl == falsified {
                        continue;
                    }
                    match self.value(cl) {
                        Value::True => {
                            satisfied = true;
                            break;
                        }
                        Value::Unassigned => {
                            if unassigned.is_none() {
                                unassigned = Some(cl);
                            }
                            if new_watch.is_none() && !self.is_watched(cid, cl) {
                                new_watch = Some(cl);
                            }
                        }
                        Value::False => {
                            if new_watch.is_none() && !self.is_watched(cid, cl) {
                                // Could re-watch a false literal only as a
                                // last resort; skip.
                            }
                        }
                    }
                }
                if satisfied {
                    still_watching.push(cid);
                    continue;
                }
                if let Some(nw) = new_watch {
                    // Move the watch from `falsified` to `nw`.
                    self.watches.entry(nw.index()).or_default().push(cid);
                    continue;
                }
                match unassigned {
                    Some(unit) => {
                        // Clause is unit: propagate.
                        still_watching.push(cid);
                        if !self.enqueue(unit, Some(cid)) {
                            conflict = Some(cid);
                        }
                    }
                    None => {
                        // All literals false: conflict.
                        still_watching.push(cid);
                        conflict = Some(cid);
                    }
                }
            }
            self.watches.insert(falsified.index(), still_watching);
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn is_watched(&self, cid: usize, l: Lit) -> bool {
        self.watches
            .get(&l.index())
            .map(|v| v.contains(&cid))
            .unwrap_or(false)
    }

    fn bump(&mut self, v: BVar) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause and the
    /// backtrack level.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, usize) {
        let mut learned: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut clause_id = conflict;
        let mut trail_idx = self.trail.len();

        loop {
            let clause = self.clauses[clause_id].clone();
            for &q in &clause {
                if Some(q) == p {
                    continue;
                }
                let v = q.var();
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(v);
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Select next literal from the trail to resolve on.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if seen[l.var()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.unwrap().var();
            seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            clause_id = self.reason[pv].expect("non-decision literal must have a reason");
        }
        let uip = p.unwrap().negate();
        learned.push(uip);
        // Backtrack level: second-highest level in the learned clause.
        let mut bt = 0;
        for &l in &learned {
            if l != uip {
                bt = bt.max(self.level[l.var()]);
            }
        }
        // Put the UIP literal first so it is watched and immediately unit.
        let n = learned.len();
        learned.swap(0, n - 1);
        (learned, bt)
    }

    fn backtrack(&mut self, level: usize) {
        while let Some(&l) = self.trail.last() {
            if self.level[l.var()] <= level
                && self.reason[l.var()].is_none()
                && self.level[l.var()] != 0
            {
                // Decision at or below the target level stays only if below.
            }
            if self.level[l.var()] <= level {
                break;
            }
            self.assignment[l.var()] = Value::Unassigned;
            self.reason[l.var()] = None;
            self.trail.pop();
        }
        self.trail_lim.truncate(level);
        self.propagate_head = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<(f64, BVar)> = None;
        for v in 0..self.num_vars() {
            if matches!(self.assignment[v], Value::Unassigned) {
                let a = self.activity[v];
                if best.map(|(ba, _)| a > ba).unwrap_or(true) {
                    best = Some((a, v));
                }
            }
        }
        best.map(|(_, v)| Lit::neg(v))
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals. If the result is
    /// unsatisfiable, the returned core is a subset of the assumptions that
    /// suffices for unsatisfiability (not necessarily minimal).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        if self.has_empty_clause {
            return SatResult::Unsat(vec![]);
        }
        for l in assumptions {
            self.reserve_vars(l.var() + 1);
        }
        // Reset transient state.
        self.backtrack(0);
        for v in 0..self.num_vars() {
            if self.level[v] > 0 {
                self.assignment[v] = Value::Unassigned;
            }
        }
        self.trail.retain(|l| {
            matches!(
                (l.is_pos(), &self.assignment[l.var()]),
                (true, Value::True) | (false, Value::False)
            )
        });
        self.propagate_head = 0;

        if self.propagate().is_some() {
            return SatResult::Unsat(vec![]);
        }

        let mut conflicts = 0usize;
        loop {
            // Apply assumptions as pseudo-decisions first.
            let mut all_assumed = true;
            for &a in assumptions {
                match self.value(a) {
                    Value::True => continue,
                    Value::False => {
                        // Conflict with assumptions: collect involved assumptions.
                        let core = self.assumption_core(a, assumptions);
                        return SatResult::Unsat(core);
                    }
                    Value::Unassigned => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, None);
                        all_assumed = false;
                        break;
                    }
                }
            }
            if !all_assumed {
                if let Some(conflict) = self.propagate() {
                    if self.decision_level() <= assumptions.len() {
                        // Conflict among assumptions.
                        let core = self.conflict_assumptions(conflict, assumptions);
                        return SatResult::Unsat(core);
                    }
                    conflicts += 1;
                    let (learned, bt) = self.analyze(conflict);
                    self.backtrack(bt);
                    let unit = learned[0];
                    self.add_clause_runtime(learned);
                    self.enqueue_learned(unit);
                    let _ = conflicts;
                }
                continue;
            }

            match self.decide() {
                None => {
                    let model = self
                        .assignment
                        .iter()
                        .map(|v| matches!(v, Value::True))
                        .collect();
                    return SatResult::Sat(model);
                }
                Some(d) => {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(d, None);
                }
            }

            while let Some(conflict) = self.propagate() {
                if self.decision_level() == 0 {
                    return SatResult::Unsat(assumptions.to_vec());
                }
                if self.decision_level() <= assumptions.len() {
                    let core = self.conflict_assumptions(conflict, assumptions);
                    return SatResult::Unsat(core);
                }
                conflicts += 1;
                self.var_inc *= 1.05;
                let (learned, bt) = self.analyze(conflict);
                self.backtrack(bt.max(assumptions.len().min(self.decision_level())));
                let unit = learned[0];
                self.add_clause_runtime(learned);
                self.enqueue_learned(unit);
            }
        }
    }

    fn add_clause_runtime(&mut self, lits: Vec<Lit>) {
        if lits.is_empty() {
            self.has_empty_clause = true;
            return;
        }
        let id = self.clauses.len();
        let w0 = lits[0];
        let w1 = *lits.get(1).unwrap_or(&lits[0]);
        self.clauses.push(lits);
        self.watches.entry(w0.index()).or_default().push(id);
        if w1 != w0 {
            self.watches.entry(w1.index()).or_default().push(id);
        }
    }

    fn enqueue_learned(&mut self, unit: Lit) {
        if matches!(self.value(unit), Value::Unassigned) {
            let cid = self.clauses.len() - 1;
            self.enqueue(unit, Some(cid));
        }
    }

    fn assumption_core(&self, _failed: Lit, assumptions: &[Lit]) -> Vec<Lit> {
        // Conservative core: all assumptions assigned so far.
        assumptions
            .iter()
            .copied()
            .filter(|a| !matches!(self.value(*a), Value::Unassigned))
            .collect()
    }

    fn conflict_assumptions(&self, _conflict: usize, assumptions: &[Lit]) -> Vec<Lit> {
        assumptions
            .iter()
            .copied()
            .filter(|a| !matches!(self.value(*a), Value::Unassigned))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::new(v, pos)
    }

    #[test]
    fn empty_instance_is_sat() {
        let mut s = SatSolver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut s = SatSolver::new();
        s.add_clause(vec![lit(0, true)]);
        s.add_clause(vec![lit(0, false), lit(1, true)]);
        match s.solve() {
            SatResult::Sat(m) => {
                assert!(m[0]);
                assert!(m[1]);
            }
            _ => panic!("expected sat"),
        }
    }

    #[test]
    fn simple_unsat() {
        let mut s = SatSolver::new();
        s.add_clause(vec![lit(0, true)]);
        s.add_clause(vec![lit(0, false)]);
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn requires_search_and_learning() {
        // Pigeonhole-ish: (a∨b) ∧ (¬a∨c) ∧ (¬b∨c) ∧ ¬c is unsat.
        let mut s = SatSolver::new();
        s.add_clause(vec![lit(0, true), lit(1, true)]);
        s.add_clause(vec![lit(0, false), lit(2, true)]);
        s.add_clause(vec![lit(1, false), lit(2, true)]);
        s.add_clause(vec![lit(2, false)]);
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn satisfiable_3sat_instance() {
        let mut s = SatSolver::new();
        // (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ ¬x1) ∧ (¬x1 ∨ ¬x2) ∧ (¬x0 ∨ ¬x2)
        s.add_clause(vec![lit(0, true), lit(1, true), lit(2, true)]);
        s.add_clause(vec![lit(0, false), lit(1, false)]);
        s.add_clause(vec![lit(1, false), lit(2, false)]);
        s.add_clause(vec![lit(0, false), lit(2, false)]);
        match s.solve() {
            SatResult::Sat(m) => {
                let count = [m[0], m[1], m[2]].iter().filter(|b| **b).count();
                assert_eq!(count, 1, "exactly one variable should be true");
            }
            _ => panic!("expected sat"),
        }
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = SatSolver::new();
        s.add_clause(vec![lit(0, true), lit(1, true)]);
        // Assume both false: unsat under assumptions, sat without.
        assert!(s.solve().is_sat());
        let r = s.solve_with_assumptions(&[lit(0, false), lit(1, false)]);
        assert!(!r.is_sat());
        let r = s.solve_with_assumptions(&[lit(0, false)]);
        assert!(r.is_sat());
    }

    #[test]
    fn model_respects_assumptions() {
        let mut s = SatSolver::new();
        s.add_clause(vec![lit(0, true), lit(1, true), lit(2, true)]);
        match s.solve_with_assumptions(&[lit(0, false), lit(1, false)]) {
            SatResult::Sat(m) => {
                assert!(!m[0]);
                assert!(!m[1]);
                assert!(m[2]);
            }
            _ => panic!("expected sat"),
        }
    }

    #[test]
    fn tautological_clauses_are_ignored() {
        let mut s = SatSolver::new();
        s.add_clause(vec![lit(0, true), lit(0, false)]);
        s.add_clause(vec![lit(1, true)]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn larger_random_like_instance() {
        // A chain of implications x0 -> x1 -> ... -> x9 plus x0, ¬x9 is unsat.
        let mut s = SatSolver::new();
        for i in 0..9 {
            s.add_clause(vec![lit(i, false), lit(i + 1, true)]);
        }
        s.add_clause(vec![lit(0, true)]);
        s.add_clause(vec![lit(9, false)]);
        assert!(!s.solve().is_sat());

        let mut s = SatSolver::new();
        for i in 0..9 {
            s.add_clause(vec![lit(i, false), lit(i + 1, true)]);
        }
        s.add_clause(vec![lit(0, true)]);
        assert!(s.solve().is_sat());
    }
}
